//! ICMPv4: echo request/reply and destination unreachable.
//!
//! Two message types matter to this stack: *echo* (so hosts are
//! pingable, the universal liveness check of the era) and *destination
//! unreachable / port unreachable*, which RFC 1122 requires a host to
//! send when a UDP datagram arrives for a port with no listener — the
//! very packet Partridge & Pink's UDP work contends with.

use crate::checksum;
use crate::{Result, WireError};
use core::fmt;

/// Minimum ICMP header length (type, code, checksum, 4 bytes of
/// type-specific data).
pub const HEADER_LEN: usize = 8;

/// Parsed ICMP message kinds this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpRepr<'a> {
    /// Echo request (type 8): ping us.
    EchoRequest {
        /// Identifier (conventionally the pinger's pid).
        ident: u16,
        /// Sequence number within the ping run.
        seq: u16,
        /// Opaque payload to be echoed back.
        payload: &'a [u8],
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier echoed from the request.
        ident: u16,
        /// Sequence echoed from the request.
        seq: u16,
        /// Echoed payload.
        payload: &'a [u8],
    },
    /// Destination unreachable (type 3) carrying the offending packet's
    /// IP header + first 8 payload bytes, per RFC 792.
    DestinationUnreachable {
        /// The code (3 = port unreachable, the one this stack emits).
        code: u8,
        /// The quoted original datagram prefix.
        original: &'a [u8],
    },
    /// Anything else: preserved as (type, code) so it can be counted.
    Unknown {
        /// ICMP type byte.
        kind: u8,
        /// ICMP code byte.
        code: u8,
    },
}

/// The code for "port unreachable" within destination-unreachable.
pub const CODE_PORT_UNREACHABLE: u8 = 3;

impl fmt::Display for IcmpRepr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpRepr::EchoRequest { ident, seq, .. } => {
                write!(f, "echo-request id={ident} seq={seq}")
            }
            IcmpRepr::EchoReply { ident, seq, .. } => {
                write!(f, "echo-reply id={ident} seq={seq}")
            }
            IcmpRepr::DestinationUnreachable { code, .. } => {
                write!(f, "dest-unreachable code={code}")
            }
            IcmpRepr::Unknown { kind, code } => write!(f, "icmp type={kind} code={code}"),
        }
    }
}

impl<'a> IcmpRepr<'a> {
    /// Parse and checksum-verify an ICMP message.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if !checksum::verify(data) {
            return Err(WireError::BadChecksum);
        }
        let kind = data[0];
        let code = data[1];
        let word = |lo: usize| u16::from_be_bytes([data[lo], data[lo + 1]]);
        Ok(match (kind, code) {
            (8, 0) => IcmpRepr::EchoRequest {
                ident: word(4),
                seq: word(6),
                payload: &data[8..],
            },
            (0, 0) => IcmpRepr::EchoReply {
                ident: word(4),
                seq: word(6),
                payload: &data[8..],
            },
            (3, code) => IcmpRepr::DestinationUnreachable {
                code,
                original: &data[8..],
            },
            (kind, code) => IcmpRepr::Unknown { kind, code },
        })
    }

    /// Serialize the message (with checksum) into a fresh buffer.
    pub fn emit(&self) -> Vec<u8> {
        let (kind, code, word, payload): (u8, u8, [u8; 4], &[u8]) = match self {
            IcmpRepr::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                let mut w = [0u8; 4];
                w[0..2].copy_from_slice(&ident.to_be_bytes());
                w[2..4].copy_from_slice(&seq.to_be_bytes());
                (8, 0, w, payload)
            }
            IcmpRepr::EchoReply {
                ident,
                seq,
                payload,
            } => {
                let mut w = [0u8; 4];
                w[0..2].copy_from_slice(&ident.to_be_bytes());
                w[2..4].copy_from_slice(&seq.to_be_bytes());
                (0, 0, w, payload)
            }
            IcmpRepr::DestinationUnreachable { code, original } => (3, *code, [0u8; 4], original),
            IcmpRepr::Unknown { kind, code } => (*kind, *code, [0u8; 4], &[]),
        };
        let mut out = vec![0u8; HEADER_LEN + payload.len()];
        out[0] = kind;
        out[1] = code;
        out[4..8].copy_from_slice(&word);
        out[8..].copy_from_slice(payload);
        let sum = checksum::checksum(&out);
        out[2..4].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Build the port-unreachable message RFC 1122 mandates: quote the
    /// offending packet's IP header plus its first 8 transport bytes.
    pub fn port_unreachable(original_ip_packet: &'a [u8], ip_header_len: usize) -> Self {
        let quote_len = (ip_header_len + 8).min(original_ip_packet.len());
        IcmpRepr::DestinationUnreachable {
            code: CODE_PORT_UNREACHABLE,
            original: &original_ip_packet[..quote_len],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let request = IcmpRepr::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: b"ping payload",
        };
        let bytes = request.emit();
        let parsed = IcmpRepr::parse(&bytes).unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn reply_roundtrip() {
        let reply = IcmpRepr::EchoReply {
            ident: 1,
            seq: 2,
            payload: b"",
        };
        let bytes = reply.emit();
        assert_eq!(IcmpRepr::parse(&bytes).unwrap(), reply);
    }

    #[test]
    fn unreachable_quotes_original() {
        let original = [0x45u8; 40]; // 20-byte header + 20 more
        let msg = IcmpRepr::port_unreachable(&original, 20);
        let bytes = msg.emit();
        match IcmpRepr::parse(&bytes).unwrap() {
            IcmpRepr::DestinationUnreachable { code, original } => {
                assert_eq!(code, CODE_PORT_UNREACHABLE);
                assert_eq!(original.len(), 28, "header + 8 bytes");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unreachable_quote_truncates_to_packet() {
        let tiny = [0x45u8; 22];
        let msg = IcmpRepr::port_unreachable(&tiny, 20);
        let IcmpRepr::DestinationUnreachable { original, .. } = msg else {
            panic!();
        };
        assert_eq!(original.len(), 22);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut bytes = IcmpRepr::EchoRequest {
            ident: 9,
            seq: 9,
            payload: b"x",
        }
        .emit();
        bytes[8] ^= 0xff;
        assert_eq!(IcmpRepr::parse(&bytes).err(), Some(WireError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            IcmpRepr::parse(&[8, 0, 0]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn unknown_types_preserved() {
        let msg = IcmpRepr::Unknown { kind: 13, code: 0 }; // timestamp
        let bytes = msg.emit();
        assert_eq!(IcmpRepr::parse(&bytes).unwrap(), msg);
        assert_eq!(msg.to_string(), "icmp type=13 code=0");
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            IcmpRepr::EchoRequest {
                ident: 1,
                seq: 2,
                payload: b""
            }
            .to_string(),
            "echo-request id=1 seq=2"
        );
        assert!(IcmpRepr::port_unreachable(&[0u8; 28], 20)
            .to_string()
            .contains("code=3"));
    }
}
