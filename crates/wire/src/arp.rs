//! ARP (RFC 826) for Ethernet/IPv4.
//!
//! The LAN substrate's address-resolution side: hosts broadcast "who has
//! 10.0.0.1?" and the owner answers with its MAC. Only the
//! Ethernet+IPv4 flavor is implemented (htype 1, ptype 0x0800) — the
//! only one the paper's environment used.

use crate::ethernet::EthernetAddress;
use crate::{Result, WireError};
use core::fmt;
use std::net::Ipv4Addr;

/// Wire size of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOperation {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
}

/// A parsed Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpRepr {
    /// Request or reply.
    pub operation: ArpOperation,
    /// Sender hardware address.
    pub src_mac: EthernetAddress,
    /// Sender protocol address.
    pub src_ip: Ipv4Addr,
    /// Target hardware address (all-zero in requests).
    pub dst_mac: EthernetAddress,
    /// Target protocol address.
    pub dst_ip: Ipv4Addr,
}

impl fmt::Display for ArpRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operation {
            ArpOperation::Request => write!(f, "who-has {} tell {}", self.dst_ip, self.src_ip),
            ArpOperation::Reply => write!(f, "{} is-at {}", self.src_ip, self.src_mac),
        }
    }
}

impl ArpRepr {
    /// Build a who-has request.
    pub fn request(src_mac: EthernetAddress, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Self {
        Self {
            operation: ArpOperation::Request,
            src_mac,
            src_ip,
            dst_mac: EthernetAddress([0; 6]),
            dst_ip,
        }
    }

    /// Build the reply answering `request` on behalf of `our_mac`.
    pub fn reply_to(&self, our_mac: EthernetAddress) -> Self {
        Self {
            operation: ArpOperation::Reply,
            src_mac: our_mac,
            src_ip: self.dst_ip,
            dst_mac: self.src_mac,
            dst_ip: self.src_ip,
        }
    }

    /// Parse an ARP packet, rejecting non-Ethernet/IPv4 flavors.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < PACKET_LEN {
            return Err(WireError::Truncated);
        }
        let word = |i: usize| u16::from_be_bytes([data[i], data[i + 1]]);
        if word(0) != 1 || word(2) != 0x0800 || data[4] != 6 || data[5] != 4 {
            return Err(WireError::BadHeaderLen);
        }
        let operation = match word(6) {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            _ => return Err(WireError::BadOption),
        };
        let mac = |i: usize| {
            EthernetAddress([
                data[i],
                data[i + 1],
                data[i + 2],
                data[i + 3],
                data[i + 4],
                data[i + 5],
            ])
        };
        let ip = |i: usize| Ipv4Addr::new(data[i], data[i + 1], data[i + 2], data[i + 3]);
        Ok(Self {
            operation,
            src_mac: mac(8),
            src_ip: ip(14),
            dst_mac: mac(18),
            dst_ip: ip(24),
        })
    }

    /// Serialize to the 28-byte wire form.
    pub fn emit(&self) -> [u8; PACKET_LEN] {
        let mut out = [0u8; PACKET_LEN];
        out[0..2].copy_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        out[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        out[4] = 6;
        out[5] = 4;
        let oper: u16 = match self.operation {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
        };
        out[6..8].copy_from_slice(&oper.to_be_bytes());
        out[8..14].copy_from_slice(&self.src_mac.0);
        out[14..18].copy_from_slice(&self.src_ip.octets());
        out[18..24].copy_from_slice(&self.dst_mac.0);
        out[24..28].copy_from_slice(&self.dst_ip.octets());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> EthernetAddress {
        EthernetAddress([2, 0, 0, 0, 0, last])
    }

    #[test]
    fn request_roundtrip() {
        let req = ArpRepr::request(
            mac(1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let bytes = req.emit();
        assert_eq!(ArpRepr::parse(&bytes).unwrap(), req);
        assert_eq!(req.to_string(), "who-has 10.0.0.1 tell 10.0.0.2");
    }

    #[test]
    fn reply_answers_request() {
        let req = ArpRepr::request(
            mac(1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let reply = req.reply_to(mac(9));
        assert_eq!(reply.operation, ArpOperation::Reply);
        assert_eq!(reply.src_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(reply.src_mac, mac(9));
        assert_eq!(reply.dst_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(reply.dst_mac, mac(1));
        let bytes = reply.emit();
        assert_eq!(ArpRepr::parse(&bytes).unwrap(), reply);
        assert!(reply.to_string().contains("is-at"));
    }

    #[test]
    fn truncated_rejected() {
        let req = ArpRepr::request(mac(1), Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2));
        let bytes = req.emit();
        assert_eq!(
            ArpRepr::parse(&bytes[..20]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn wrong_flavor_rejected() {
        let req = ArpRepr::request(mac(1), Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2));
        let mut bytes = req.emit();
        bytes[1] = 6; // htype: IEEE 802
        assert_eq!(ArpRepr::parse(&bytes).err(), Some(WireError::BadHeaderLen));
        let mut bytes2 = req.emit();
        bytes2[7] = 9; // bogus operation
        assert_eq!(ArpRepr::parse(&bytes2).err(), Some(WireError::BadOption));
    }
}
