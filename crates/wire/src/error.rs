use core::fmt;

/// Errors produced while parsing or emitting wire-format packets.
///
/// Every variant corresponds to a concrete way an incoming buffer can fail
/// validation. The receive path in `tcpdemux-stack` counts these per variant,
/// so the set is intentionally fine-grained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer is shorter than the minimum (or declared) header length.
    Truncated,
    /// The IP version nibble is not 4.
    BadVersion,
    /// A header-length field is smaller than the fixed header or larger than
    /// the buffer.
    BadHeaderLen,
    /// The total-length field disagrees with the buffer in an unrecoverable
    /// way (smaller than the header, or larger than the buffer).
    BadTotalLen,
    /// A checksum (IPv4 header, TCP, or UDP) failed verification.
    BadChecksum,
    /// The packet is an IP fragment; reassembly is out of scope for this
    /// stack, so fragments are rejected rather than mis-parsed.
    Fragmented,
    /// A TCP option's length byte is inconsistent with the option area.
    BadOption,
    /// The payload handed to an emit routine does not fit the buffer or the
    /// 16-bit length fields of the protocol.
    PayloadTooLong,
    /// A source or destination port is zero where a real port is required.
    BadPort,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            WireError::Truncated => "buffer truncated",
            WireError::BadVersion => "IP version is not 4",
            WireError::BadHeaderLen => "header length field invalid",
            WireError::BadTotalLen => "total length field invalid",
            WireError::BadChecksum => "checksum verification failed",
            WireError::Fragmented => "IP fragment (reassembly unsupported)",
            WireError::BadOption => "malformed TCP option",
            WireError::PayloadTooLong => "payload too long",
            WireError::BadPort => "port must be nonzero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(WireError::Truncated.to_string(), "buffer truncated");
        assert_eq!(
            WireError::BadChecksum.to_string(),
            "checksum verification failed"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(WireError::BadVersion);
    }

    #[test]
    fn variants_are_distinguishable() {
        assert_ne!(WireError::Truncated, WireError::BadVersion);
        assert_ne!(WireError::BadHeaderLen, WireError::BadTotalLen);
    }
}
