//! Wire formats for the `tcpdemux` project.
//!
//! This crate provides typed, zero-copy views over raw packet bytes for the
//! protocols the demultiplexing paper operates on: IPv4, TCP, and UDP. It is
//! deliberately in the style of [smoltcp]: a `Packet`/`Segment` wrapper type
//! borrows a byte buffer and exposes checked field accessors, while a
//! higher-level `Repr` ("representation") struct holds a parsed, validated
//! summary of the header and can emit itself back into a buffer.
//!
//! The demultiplexing algorithms of McKenney & Dove (SIGCOMM 1992) consume
//! the four-tuple *(source address, source port, destination address,
//! destination port)* carried by these headers; this crate is the substrate
//! that produces those tuples from real packet bytes.
//!
//! # Design rules
//!
//! * No heap allocation anywhere on the parse path.
//! * Every accessor that could read out of bounds is only reachable after
//!   [`check_len`](Ipv4Packet::check_len)-style validation, or returns a
//!   [`WireError`].
//! * Checksums (RFC 1071 Internet checksum, including the TCP/UDP
//!   pseudo-header) are always verified on parse and generated on emit.
//!
//! # Example
//!
//! ```
//! use tcpdemux_wire::{Ipv4Repr, TcpRepr, TcpFlags, IpProtocol, build_tcp_frame};
//! use std::net::Ipv4Addr;
//!
//! let ip = Ipv4Repr::new(
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(10, 0, 0, 2),
//!     IpProtocol::Tcp,
//! );
//! let tcp = TcpRepr {
//!     src_port: 4096,
//!     dst_port: 80,
//!     seq: 1,
//!     ack: 0,
//!     flags: TcpFlags::SYN,
//!     window: 8760,
//!     ..TcpRepr::default()
//! };
//! let frame = build_tcp_frame(&ip, &tcp, b"");
//!
//! // Round-trip: parse what we emitted.
//! let packet = tcpdemux_wire::Ipv4Packet::new_checked(&frame[..]).unwrap();
//! let parsed_ip = Ipv4Repr::parse(&packet).unwrap();
//! assert_eq!(parsed_ip.src_addr, ip.src_addr);
//! let seg = tcpdemux_wire::TcpSegment::new_checked(packet.payload()).unwrap();
//! let parsed_tcp = TcpRepr::parse(&seg, ip.src_addr, ip.dst_addr).unwrap();
//! assert_eq!(parsed_tcp.dst_port, 80);
//! ```
//!
//! [smoltcp]: https://github.com/smoltcp-rs/smoltcp

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arp;
pub mod checksum;
mod error;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod pcap;
pub mod pretty;
pub mod tcp;
pub mod udp;

mod builder;

pub use arp::{ArpOperation, ArpRepr};
pub use builder::{
    build_tcp_frame, build_tcp_frame_into, build_udp_frame, build_udp_frame_into, FrameBuilder,
};
pub use error::WireError;
pub use ethernet::{EtherType, EthernetAddress, EthernetFrame, EthernetRepr};
pub use icmp::IcmpRepr;
pub use ipv4::{IpProtocol, Ipv4Packet, Ipv4Repr};
pub use tcp::{TcpFlags, TcpOption, TcpRepr, TcpSegment};
pub use udp::{UdpDatagram, UdpRepr};

/// Result alias used throughout the wire crate.
pub type Result<T> = core::result::Result<T, WireError>;
