//! Ethernet II framing.
//!
//! The demultiplexing paper's packets arrive over LANs ("thousands of
//! concurrent users connected by local-area networks", §1); this module
//! supplies the link layer so the stack can consume full frames. Only
//! Ethernet II (DIX) framing is implemented — no 802.1Q tags, no 802.3
//! length field — matching what a 1992 database server would see.

use crate::{Result, WireError};
use core::fmt;

/// Length of the Ethernet II header: destination + source + ethertype.
pub const HEADER_LEN: usize = 14;

/// Minimum payload to meet the 64-byte minimum frame size (without FCS:
/// 60 bytes total, 46 of payload). Short payloads are zero-padded.
pub const MIN_PAYLOAD: usize = 46;

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address, ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the group bit (I/G) is set — multicast or broadcast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is a normal unicast address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// A deterministic locally-administered unicast address derived from
    /// an IPv4 address — handy for simulations that need a MAC per host
    /// without ARP.
    pub fn from_ipv4(addr: std::net::Ipv4Addr) -> Self {
        let o = addr.octets();
        // 0x02 = locally administered, unicast.
        EthernetAddress([0x02, 0x00, o[0], o[1], o[2], o[3]])
    }
}

impl fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            a[0], a[1], a[2], a[3], a[4], a[5]
        )
    }
}

/// EtherType values this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — recognized so it can be counted, not processed.
    Arp,
    /// Anything else, kept verbatim.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> Self {
        match value {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(other) => other,
        }
    }
}

/// A typed view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating the minimum length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let frame = Self::new_unchecked(buffer);
        frame.check_len()?;
        Ok(frame)
    }

    /// Validate that the buffer holds at least a header.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Destination MAC.
    pub fn dst_addr(&self) -> EthernetAddress {
        let d = self.buffer.as_ref();
        EthernetAddress([d[0], d[1], d[2], d[3], d[4], d[5]])
    }

    /// Source MAC.
    pub fn src_addr(&self) -> EthernetAddress {
        let d = self.buffer.as_ref();
        EthernetAddress([d[6], d[7], d[8], d[9], d[10], d[11]])
    }

    /// EtherType.
    pub fn ethertype(&self) -> EtherType {
        let d = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([d[12], d[13]]))
    }

    /// The encapsulated payload (possibly including link-layer padding;
    /// the IPv4 total-length field bounds the real packet).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC.
    pub fn set_dst_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source MAC.
    pub fn set_src_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(ethertype).to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Parsed representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Source MAC.
    pub src_addr: EthernetAddress,
    /// Destination MAC.
    pub dst_addr: EthernetAddress,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> Result<Self> {
        frame.check_len()?;
        Ok(Self {
            src_addr: frame.src_addr(),
            dst_addr: frame.dst_addr(),
            ethertype: frame.ethertype(),
        })
    }

    /// Emit the header into the front of `frame`'s buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut EthernetFrame<T>) -> Result<()> {
        frame.check_len()?;
        frame.set_dst_addr(self.dst_addr);
        frame.set_src_addr(self.src_addr);
        frame.set_ethertype(self.ethertype);
        Ok(())
    }
}

/// Wrap an IPv4 packet in an Ethernet II frame, padding to the 60-byte
/// minimum.
pub fn encapsulate_ipv4(src: EthernetAddress, dst: EthernetAddress, ip_packet: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    encapsulate_ipv4_into(src, dst, ip_packet, &mut buf);
    buf
}

/// Like [`encapsulate_ipv4`], assembling into `out` (contents replaced) so
/// pooled transmit buffers avoid a per-frame allocation.
pub fn encapsulate_ipv4_into(
    src: EthernetAddress,
    dst: EthernetAddress,
    ip_packet: &[u8],
    out: &mut Vec<u8>,
) {
    let payload_len = ip_packet.len().max(MIN_PAYLOAD);
    out.clear();
    out.resize(HEADER_LEN + payload_len, 0);
    let mut frame = EthernetFrame::new_unchecked(&mut out[..]);
    EthernetRepr {
        src_addr: src,
        dst_addr: dst,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut frame)
    .expect("sized buffer");
    frame.payload_mut()[..ip_packet.len()].copy_from_slice(ip_packet);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tcpdemux_testprop::check;

    fn addr(last: u8) -> EthernetAddress {
        EthernetAddress([0x02, 0, 0, 0, 0, last])
    }

    #[test]
    fn roundtrip() {
        let repr = EthernetRepr {
            src_addr: addr(1),
            dst_addr: addr(2),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; HEADER_LEN + 4];
        let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame).unwrap();
        frame.payload_mut().copy_from_slice(b"abcd");
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(EthernetRepr::parse(&frame).unwrap(), repr);
        assert_eq!(frame.payload(), b"abcd");
    }

    #[test]
    fn truncated_rejected() {
        for len in 0..HEADER_LEN {
            let buf = vec![0u8; len];
            assert_eq!(
                EthernetFrame::new_checked(&buf[..]).err(),
                Some(WireError::Truncated)
            );
        }
    }

    #[test]
    fn address_classes() {
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        assert!(!EthernetAddress::BROADCAST.is_unicast());
        let mcast = EthernetAddress([0x01, 0, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast() && !mcast.is_broadcast());
        assert!(addr(9).is_unicast());
    }

    #[test]
    fn mac_from_ipv4_is_stable_unicast() {
        let a = EthernetAddress::from_ipv4(Ipv4Addr::new(10, 0, 0, 7));
        let b = EthernetAddress::from_ipv4(Ipv4Addr::new(10, 0, 0, 7));
        let c = EthernetAddress::from_ipv4(Ipv4Addr::new(10, 0, 0, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_unicast());
        assert_eq!(a.to_string(), "02:00:0a:00:00:07");
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Unknown(0x86dd));
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(u16::from(EtherType::Unknown(0x1234)), 0x1234);
    }

    #[test]
    fn encapsulation_pads_small_packets() {
        let framed = encapsulate_ipv4(addr(1), addr(2), &[0xaa; 20]);
        assert_eq!(framed.len(), HEADER_LEN + MIN_PAYLOAD);
        let frame = EthernetFrame::new_checked(&framed[..]).unwrap();
        assert_eq!(&frame.payload()[..20], &[0xaa; 20]);
        assert!(frame.payload()[20..].iter().all(|&b| b == 0));
        // Large packets are not padded.
        let big = encapsulate_ipv4(addr(1), addr(2), &[0xbb; 500]);
        assert_eq!(big.len(), HEADER_LEN + 500);
    }

    #[test]
    fn prop_roundtrip() {
        check("ethernet_prop_roundtrip", |rng| {
            let src: [u8; 6] = std::array::from_fn(|_| rng.u8());
            let dst: [u8; 6] = std::array::from_fn(|_| rng.u8());
            let ethertype = rng.u16();
            let payload = rng.bytes(0, 128);
            let repr = EthernetRepr {
                src_addr: EthernetAddress(src),
                dst_addr: EthernetAddress(dst),
                ethertype: EtherType::from(ethertype),
            };
            let mut buf = vec![0u8; HEADER_LEN + payload.len()];
            let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
            repr.emit(&mut frame).unwrap();
            frame.payload_mut().copy_from_slice(&payload);
            let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
            assert_eq!(EthernetRepr::parse(&frame).unwrap(), repr);
            assert_eq!(frame.payload(), &payload[..]);
        });
    }
}
