//! Classic libpcap capture files (the `.pcap` format, magic `0xa1b2c3d4`).
//!
//! Frames flowing through the in-memory fabric can be archived in the
//! exact format `tcpdump -w` produces, so Wireshark/tcpdump can open a
//! simulation run. Both the writer and a reader are implemented (the
//! reader exists mainly to round-trip-test the writer, but will read
//! real microsecond-resolution captures of the supported link types).
//!
//! Format reference: the 24-byte global header, then per-packet 16-byte
//! record headers, all little-endian here (writers may use either byte
//! order; the magic tells readers which).

use crate::{Result, WireError};

/// Magic for microsecond-resolution little-endian pcap.
pub const MAGIC: u32 = 0xa1b2_c3d4;

/// Link type: raw IPv4/IPv6 (no link header). `LINKTYPE_RAW`.
pub const LINKTYPE_RAW: u32 = 101;

/// Link type: Ethernet. `LINKTYPE_ETHERNET`.
pub const LINKTYPE_ETHERNET: u32 = 1;

const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;

/// An in-memory pcap capture being written.
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buffer: Vec<u8>,
    packets: usize,
    snaplen: u32,
}

impl PcapWriter {
    /// Start a capture with the given link type (use [`LINKTYPE_RAW`]
    /// for bare IPv4 packets, [`LINKTYPE_ETHERNET`] for full frames).
    pub fn new(linktype: u32) -> Self {
        let snaplen: u32 = 65_535;
        let mut buffer = Vec::with_capacity(4096);
        buffer.extend_from_slice(&MAGIC.to_le_bytes());
        buffer.extend_from_slice(&2u16.to_le_bytes()); // version major
        buffer.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buffer.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buffer.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buffer.extend_from_slice(&snaplen.to_le_bytes());
        buffer.extend_from_slice(&linktype.to_le_bytes());
        Self {
            buffer,
            packets: 0,
            snaplen,
        }
    }

    /// Append a packet captured at `micros` microseconds since the epoch
    /// (simulation time works fine — Wireshark shows 1970 dates).
    pub fn record(&mut self, micros: u64, frame: &[u8]) {
        let caplen = (frame.len() as u32).min(self.snaplen);
        self.buffer
            .extend_from_slice(&((micros / 1_000_000) as u32).to_le_bytes());
        self.buffer
            .extend_from_slice(&((micros % 1_000_000) as u32).to_le_bytes());
        self.buffer.extend_from_slice(&caplen.to_le_bytes());
        self.buffer
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buffer.extend_from_slice(&frame[..caplen as usize]);
        self.packets += 1;
    }

    /// Number of packets recorded.
    pub fn packet_count(&self) -> usize {
        self.packets
    }

    /// The complete capture file bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buffer
    }

    /// Consume the writer, returning the capture file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buffer
    }
}

/// A parsed pcap capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapReader {
    /// The capture's link type.
    pub linktype: u32,
    /// `(timestamp micros, frame bytes)` records in file order.
    pub packets: Vec<(u64, Vec<u8>)>,
}

impl PcapReader {
    /// Parse a little-endian microsecond pcap file.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < GLOBAL_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let u32_at =
            |i: usize| u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        if u32_at(0) != MAGIC {
            return Err(WireError::BadVersion);
        }
        let linktype = u32_at(20);
        let mut packets = Vec::new();
        let mut cursor = GLOBAL_HEADER_LEN;
        while cursor < data.len() {
            if data.len() - cursor < RECORD_HEADER_LEN {
                return Err(WireError::Truncated);
            }
            let secs = u64::from(u32_at(cursor));
            let micros = u64::from(u32_at(cursor + 4));
            let caplen = u32_at(cursor + 8) as usize;
            cursor += RECORD_HEADER_LEN;
            if data.len() - cursor < caplen {
                return Err(WireError::Truncated);
            }
            packets.push((
                secs * 1_000_000 + micros,
                data[cursor..cursor + caplen].to_vec(),
            ));
            cursor += caplen;
        }
        Ok(Self { linktype, packets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_canonical() {
        let writer = PcapWriter::new(LINKTYPE_RAW);
        let bytes = writer.as_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &[0xd4, 0xc3, 0xb2, 0xa1], "LE magic");
        assert_eq!(&bytes[4..6], &[2, 0], "major version 2");
        assert_eq!(&bytes[6..8], &[4, 0], "minor version 4");
        assert_eq!(bytes[20], 101, "linktype raw");
    }

    #[test]
    fn roundtrip() {
        let mut writer = PcapWriter::new(LINKTYPE_ETHERNET);
        writer.record(1_500_000, &[0xaa; 60]);
        writer.record(2_750_001, &[0xbb; 100]);
        assert_eq!(writer.packet_count(), 2);
        let parsed = PcapReader::parse(writer.as_bytes()).unwrap();
        assert_eq!(parsed.linktype, LINKTYPE_ETHERNET);
        assert_eq!(parsed.packets.len(), 2);
        assert_eq!(parsed.packets[0], (1_500_000, vec![0xaa; 60]));
        assert_eq!(parsed.packets[1], (2_750_001, vec![0xbb; 100]));
    }

    #[test]
    fn real_frames_roundtrip() {
        use crate::{build_tcp_frame, IpProtocol, Ipv4Repr, TcpFlags, TcpRepr};
        use std::net::Ipv4Addr;
        let ip = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            IpProtocol::Tcp,
        );
        let tcp = TcpRepr {
            src_port: 40_000,
            dst_port: 80,
            flags: TcpFlags::SYN,
            ..TcpRepr::default()
        };
        let frame = build_tcp_frame(&ip, &tcp, b"");
        let mut writer = PcapWriter::new(LINKTYPE_RAW);
        writer.record(0, &frame);
        let parsed = PcapReader::parse(&writer.into_bytes()).unwrap();
        assert_eq!(parsed.packets[0].1, frame);
        // And the archived frame still parses as a packet.
        assert!(crate::Ipv4Packet::new_checked(&parsed.packets[0].1[..]).is_ok());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut writer = PcapWriter::new(LINKTYPE_RAW);
        writer.record(0, &[1, 2, 3]);
        let mut bytes = writer.into_bytes();
        bytes[0] = 0;
        assert_eq!(PcapReader::parse(&bytes).err(), Some(WireError::BadVersion));
    }

    #[test]
    fn truncation_rejected() {
        let mut writer = PcapWriter::new(LINKTYPE_RAW);
        writer.record(0, &[9; 40]);
        let bytes = writer.into_bytes();
        // Cut mid-record-header and mid-payload.
        assert_eq!(
            PcapReader::parse(&bytes[..30]).err(),
            Some(WireError::Truncated)
        );
        assert_eq!(
            PcapReader::parse(&bytes[..bytes.len() - 5]).err(),
            Some(WireError::Truncated)
        );
        assert_eq!(
            PcapReader::parse(&bytes[..10]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn empty_capture_parses() {
        let writer = PcapWriter::new(LINKTYPE_RAW);
        let parsed = PcapReader::parse(writer.as_bytes()).unwrap();
        assert!(parsed.packets.is_empty());
    }

    #[test]
    fn timestamps_split_correctly() {
        let mut writer = PcapWriter::new(LINKTYPE_RAW);
        writer.record(3_000_000 + 123_456, &[1]);
        let bytes = writer.into_bytes();
        // secs = 3, usecs = 123456 at offsets 24 and 28.
        assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 3);
        assert_eq!(
            u32::from_le_bytes(bytes[28..32].try_into().unwrap()),
            123_456
        );
    }
}
