//! UDP datagram parsing and emission.
//!
//! Included because the paper's companion proposal (Partridge & Pink,
//! "A Faster UDP") applies the same last-sent/last-received caching idea to
//! UDP PCB lookup; the `tcpdemux-stack` crate demultiplexes UDP datagrams
//! through the same algorithms.

use crate::checksum;
use crate::{Result, WireError};
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram buffer (header + payload).
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating the length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let datagram = Self::new_unchecked(buffer);
        datagram.check_len()?;
        Ok(datagram)
    }

    /// Validate that the buffer holds a header and that the declared length
    /// lies within `[8, buffer len]`.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = self.len() as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::BadTotalLen);
        }
        Ok(())
    }

    /// Source port (may be zero for UDP: "no reply expected").
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::SRC_PORT.start], d[field::SRC_PORT.start + 1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::DST_PORT.start], d[field::DST_PORT.start + 1]])
    }

    /// Declared datagram length (header + payload).
    pub fn len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::LENGTH.start], d[field::LENGTH.start + 1]])
    }

    /// Whether the datagram is empty (header only).
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Stored checksum field (zero means "no checksum" in IPv4 UDP).
    pub fn checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// Payload bytes, bounded by the declared length.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len() as usize]
    }

    /// Verify the checksum including the pseudo-header. A stored checksum of
    /// zero means the sender did not compute one and is accepted (RFC 768).
    pub fn verify_checksum(&self, src_addr: Ipv4Addr, dst_addr: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let data = &self.buffer.as_ref()[..self.len() as usize];
        checksum::verify_transport(src_addr, dst_addr, 17, data)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Compute and store the checksum (always generated, as smoltcp does).
    /// If the computed checksum is zero it is stored as `0xffff` per RFC 768.
    pub fn fill_checksum(&mut self, src_addr: Ipv4Addr, dst_addr: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let len = self.len() as usize;
        let sum =
            checksum::transport_checksum(src_addr, dst_addr, 17, &self.buffer.as_ref()[..len]);
        let stored = if sum == 0 { 0xffff } else { sum };
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&stored.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

/// Parsed, validated representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parse and validate a datagram view.
    pub fn parse<T: AsRef<[u8]>>(
        datagram: &UdpDatagram<T>,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
    ) -> Result<Self> {
        datagram.check_len()?;
        if datagram.dst_port() == 0 {
            return Err(WireError::BadPort);
        }
        if !datagram.verify_checksum(src_addr, dst_addr) {
            return Err(WireError::BadChecksum);
        }
        Ok(Self {
            src_port: datagram.src_port(),
            dst_port: datagram.dst_port(),
        })
    }

    /// Emit the header for `payload_len` bytes of payload and fill the
    /// checksum. The caller must have already placed the payload.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        datagram: &mut UdpDatagram<T>,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
        payload_len: usize,
    ) -> Result<()> {
        if self.dst_port == 0 {
            return Err(WireError::BadPort);
        }
        let total = HEADER_LEN + payload_len;
        if total > u16::MAX as usize || datagram.buffer.as_ref().len() < total {
            return Err(WireError::PayloadTooLong);
        }
        datagram.set_src_port(self.src_port);
        datagram.set_dst_port(self.dst_port);
        datagram.set_len(total as u16);
        datagram.fill_checksum(src_addr, dst_addr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);

    fn emit_to_vec(repr: &UdpRepr, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut datagram = UdpDatagram::new_unchecked(&mut buf[..]);
        repr.emit(&mut datagram, SRC, DST, payload.len()).unwrap();
        buf
    }

    #[test]
    fn roundtrip() {
        let repr = UdpRepr {
            src_port: 5000,
            dst_port: 53,
        };
        let buf = emit_to_vec(&repr, b"query");
        let datagram = UdpDatagram::new_checked(&buf[..]).unwrap();
        let parsed = UdpRepr::parse(&datagram, SRC, DST).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(datagram.payload(), b"query");
        assert!(!datagram.is_empty());
    }

    #[test]
    fn zero_checksum_accepted() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = emit_to_vec(&repr, b"x");
        buf[6] = 0;
        buf[7] = 0;
        let datagram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(UdpRepr::parse(&datagram, SRC, DST).is_ok());
    }

    #[test]
    fn corrupt_payload_rejected() {
        let repr = UdpRepr {
            src_port: 9,
            dst_port: 10,
        };
        let mut buf = emit_to_vec(&repr, b"important");
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let datagram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(
            UdpRepr::parse(&datagram, SRC, DST).err(),
            Some(WireError::BadChecksum)
        );
    }

    #[test]
    fn zero_dst_port_rejected() {
        let repr = UdpRepr {
            src_port: 5,
            dst_port: 7,
        };
        let mut buf = emit_to_vec(&repr, b"");
        buf[2] = 0;
        buf[3] = 0;
        let mut datagram = UdpDatagram::new_unchecked(&mut buf[..]);
        datagram.fill_checksum(SRC, DST);
        let datagram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(
            UdpRepr::parse(&datagram, SRC, DST).err(),
            Some(WireError::BadPort)
        );
    }

    #[test]
    fn bad_length_rejected() {
        let repr = UdpRepr {
            src_port: 5,
            dst_port: 7,
        };
        let mut buf = emit_to_vec(&repr, b"abc");
        buf[4] = 0xff;
        buf[5] = 0xff;
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).err(),
            Some(WireError::BadTotalLen)
        );
        buf[4] = 0;
        buf[5] = 4; // < header
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).err(),
            Some(WireError::BadTotalLen)
        );
    }

    #[test]
    fn length_bounds_payload() {
        // Declared length shorter than buffer: payload must stop early.
        let repr = UdpRepr {
            src_port: 5,
            dst_port: 7,
        };
        let mut buf = emit_to_vec(&repr, b"abcdef");
        buf[4] = 0;
        buf[5] = (HEADER_LEN + 3) as u8;
        let mut datagram = UdpDatagram::new_unchecked(&mut buf[..]);
        datagram.fill_checksum(SRC, DST);
        let datagram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(datagram.payload(), b"abc");
    }

    #[test]
    fn prop_roundtrip() {
        check("udp_prop_roundtrip", |rng| {
            let src_port = rng.u16();
            let dst_port = rng.u64_in(1, 65_536) as u16; // [1, 65535]
            let payload = rng.bytes(0, 512);
            let repr = UdpRepr { src_port, dst_port };
            let buf = emit_to_vec(&repr, &payload);
            let datagram = UdpDatagram::new_checked(&buf[..]).unwrap();
            let parsed = UdpRepr::parse(&datagram, SRC, DST).unwrap();
            assert_eq!(parsed, repr);
            assert_eq!(datagram.payload(), &payload[..]);
        });
    }

    #[test]
    fn prop_no_panic_on_garbage() {
        check("udp_prop_no_panic_on_garbage", |rng| {
            let data = rng.bytes(0, 64);
            if let Ok(datagram) = UdpDatagram::new_checked(&data[..]) {
                let _ = UdpRepr::parse(&datagram, SRC, DST);
            }
        });
    }
}
