//! Human-readable one-line frame rendering, in `tcpdump`'s dialect.
//!
//! For debugging workloads and examples: takes raw frame bytes and
//! produces lines like
//!
//! ```text
//! IP 10.0.9.9.40001 > 10.0.0.1.1521: Flags [S], seq 268435456, win 8760, length 0
//! IP 10.0.0.1.1521 > 10.0.9.9.40001: Flags [S.], seq 805306368, ack 268435457, win 8760, length 0
//! ```
//!
//! Rendering never fails: malformed frames render as a diagnostic
//! (`malformed: <reason>`), mirroring how tcpdump degrades.

use crate::icmp::IcmpRepr;
use crate::ipv4::{IpProtocol, Ipv4Packet, Ipv4Repr};
use crate::tcp::{TcpFlags, TcpRepr, TcpSegment};
use crate::udp::{UdpDatagram, UdpRepr};
use core::fmt::Write as _;

/// Render an IPv4 frame as a one-line summary.
pub fn format_packet(frame: &[u8]) -> String {
    match try_format(frame) {
        Ok(line) => line,
        Err(e) => format!("malformed: {e}"),
    }
}

fn tcp_flag_string(flags: TcpFlags) -> String {
    // tcpdump's notation: S=SYN, F=FIN, R=RST, P=PSH, '.'=ACK, U=URG.
    let mut s = String::new();
    if flags.contains(TcpFlags::SYN) {
        s.push('S');
    }
    if flags.contains(TcpFlags::FIN) {
        s.push('F');
    }
    if flags.contains(TcpFlags::RST) {
        s.push('R');
    }
    if flags.contains(TcpFlags::PSH) {
        s.push('P');
    }
    if flags.contains(TcpFlags::URG) {
        s.push('U');
    }
    if flags.contains(TcpFlags::ACK) {
        s.push('.');
    }
    if s.is_empty() {
        s.push_str("none");
    }
    s
}

fn try_format(frame: &[u8]) -> crate::Result<String> {
    let packet = Ipv4Packet::new_checked(frame)?;
    let ip = Ipv4Repr::parse(&packet)?;
    let mut out = String::new();
    match ip.protocol {
        IpProtocol::Tcp => {
            let segment = TcpSegment::new_checked(packet.payload())?;
            let tcp = TcpRepr::parse(&segment, ip.src_addr, ip.dst_addr)?;
            let _ = write!(
                out,
                "IP {}.{} > {}.{}: Flags [{}], seq {}",
                ip.src_addr,
                tcp.src_port,
                ip.dst_addr,
                tcp.dst_port,
                tcp_flag_string(tcp.flags),
                tcp.seq,
            );
            if tcp.flags.contains(TcpFlags::ACK) {
                let _ = write!(out, ", ack {}", tcp.ack);
            }
            let _ = write!(
                out,
                ", win {}, length {}",
                tcp.window,
                segment.payload().len()
            );
            if let Some(mss) = tcp.mss {
                let _ = write!(out, ", options [mss {mss}]");
            }
        }
        IpProtocol::Udp => {
            let datagram = UdpDatagram::new_checked(packet.payload())?;
            let udp = UdpRepr::parse(&datagram, ip.src_addr, ip.dst_addr)?;
            let _ = write!(
                out,
                "IP {}.{} > {}.{}: UDP, length {}",
                ip.src_addr,
                udp.src_port,
                ip.dst_addr,
                udp.dst_port,
                datagram.payload().len()
            );
        }
        IpProtocol::Icmp => {
            let icmp = IcmpRepr::parse(packet.payload())?;
            let _ = write!(out, "IP {} > {}: ICMP {}", ip.src_addr, ip.dst_addr, icmp);
        }
        IpProtocol::Unknown(p) => {
            let _ = write!(
                out,
                "IP {} > {}: protocol {} length {}",
                ip.src_addr,
                ip.dst_addr,
                p,
                packet.payload().len()
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_tcp_frame, build_udp_frame};
    use std::net::Ipv4Addr;

    fn ip() -> Ipv4Repr {
        Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 9, 9),
            Ipv4Addr::new(10, 0, 0, 1),
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn syn_renders_like_tcpdump() {
        let tcp = TcpRepr {
            src_port: 40_001,
            dst_port: 1521,
            seq: 1000,
            flags: TcpFlags::SYN,
            window: 8760,
            mss: Some(1460),
            ..TcpRepr::default()
        };
        let line = format_packet(&build_tcp_frame(&ip(), &tcp, b""));
        assert_eq!(
            line,
            "IP 10.0.9.9.40001 > 10.0.0.1.1521: Flags [S], seq 1000, \
             win 8760, length 0, options [mss 1460]"
        );
    }

    #[test]
    fn data_segment_renders_ack_and_length() {
        let tcp = TcpRepr {
            src_port: 1,
            dst_port: 2,
            seq: 5,
            ack: 9,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 100,
            ..TcpRepr::default()
        };
        let line = format_packet(&build_tcp_frame(&ip(), &tcp, b"hello"));
        assert!(line.contains("Flags [P.]"), "{line}");
        assert!(line.contains("ack 9"), "{line}");
        assert!(line.contains("length 5"), "{line}");
    }

    #[test]
    fn rst_and_fin_flags() {
        let tcp = TcpRepr {
            src_port: 1,
            dst_port: 2,
            flags: TcpFlags::RST,
            ..TcpRepr::default()
        };
        assert!(format_packet(&build_tcp_frame(&ip(), &tcp, b"")).contains("Flags [R]"));
        let tcp = TcpRepr {
            src_port: 1,
            dst_port: 2,
            flags: TcpFlags::FIN | TcpFlags::ACK,
            ..TcpRepr::default()
        };
        assert!(format_packet(&build_tcp_frame(&ip(), &tcp, b"")).contains("Flags [F.]"));
    }

    #[test]
    fn udp_renders() {
        let udp = UdpRepr {
            src_port: 5353,
            dst_port: 53,
        };
        let ip = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 9, 9),
            Ipv4Addr::new(10, 0, 0, 1),
            IpProtocol::Udp,
        );
        let line = format_packet(&build_udp_frame(&ip, &udp, b"abc"));
        assert_eq!(line, "IP 10.0.9.9.5353 > 10.0.0.1.53: UDP, length 3");
    }

    #[test]
    fn malformed_renders_diagnostic() {
        assert_eq!(format_packet(&[0x45, 0x00]), "malformed: buffer truncated");
        let mut frame = build_tcp_frame(
            &ip(),
            &TcpRepr {
                src_port: 1,
                dst_port: 2,
                ..TcpRepr::default()
            },
            b"",
        );
        let last = frame.len() - 1;
        frame[last] ^= 1;
        assert!(format_packet(&frame).starts_with("malformed:"));
    }
}
