//! Convenience builders that assemble complete IPv4 frames.
//!
//! The simulator and the stack construct millions of packets; these helpers
//! centralize buffer sizing and checksum ordering (transport checksum first,
//! then the IP header checksum) so call sites cannot get it wrong.
//!
//! The `*_into` functions assemble directly into a caller-provided `Vec`,
//! which lets callers that pool their transmit buffers (see the stack's
//! `TxPool`) build frames without any intermediate copy. [`FrameBuilder`]
//! wraps them with an internal reusable buffer for callers that only need
//! a borrowed view of the frame.

use crate::ipv4::{self, IpProtocol, Ipv4Packet, Ipv4Repr};
use crate::tcp::{TcpRepr, TcpSegment};
use crate::udp::{self, UdpDatagram, UdpRepr};

/// Build a complete IPv4+TCP frame from representations and a payload.
///
/// Panics only if `payload` exceeds the 16-bit IPv4 length space, which the
/// callers in this workspace never do; use [`FrameBuilder`] for a fallible,
/// allocation-reusing interface.
pub fn build_tcp_frame(ip: &Ipv4Repr, tcp: &TcpRepr, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    build_tcp_frame_into(ip, tcp, payload, &mut out);
    out
}

/// Build a complete IPv4+UDP frame from representations and a payload.
pub fn build_udp_frame(ip: &Ipv4Repr, udp_repr: &UdpRepr, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    build_udp_frame_into(ip, udp_repr, payload, &mut out);
    out
}

/// Assemble an IPv4+TCP frame into `out`, replacing its contents.
///
/// `out`'s capacity is reused, so a caller that recycles its buffers pays
/// no allocation once the buffer has grown to the working frame size.
pub fn build_tcp_frame_into(ip: &Ipv4Repr, tcp: &TcpRepr, payload: &[u8], out: &mut Vec<u8>) {
    let tcp_len = tcp.header_len() + payload.len();
    let total = ipv4::HEADER_LEN + tcp_len;
    out.clear();
    out.resize(total, 0);

    out[ipv4::HEADER_LEN + tcp.header_len()..].copy_from_slice(payload);
    {
        let mut segment = TcpSegment::new_unchecked(&mut out[ipv4::HEADER_LEN..]);
        tcp.emit(&mut segment, ip.src_addr, ip.dst_addr)
            .expect("TCP emit into sized buffer cannot fail");
    }
    let ip = Ipv4Repr {
        payload_len: tcp_len,
        protocol: IpProtocol::Tcp,
        ..*ip
    };
    let mut packet = Ipv4Packet::new_unchecked(&mut out[..]);
    ip.emit(&mut packet)
        .expect("IPv4 emit into sized buffer cannot fail");
}

/// Assemble an IPv4+UDP frame into `out`, replacing its contents.
pub fn build_udp_frame_into(ip: &Ipv4Repr, udp_repr: &UdpRepr, payload: &[u8], out: &mut Vec<u8>) {
    let udp_len = udp::HEADER_LEN + payload.len();
    let total = ipv4::HEADER_LEN + udp_len;
    out.clear();
    out.resize(total, 0);

    out[ipv4::HEADER_LEN + udp::HEADER_LEN..].copy_from_slice(payload);
    {
        let mut datagram = UdpDatagram::new_unchecked(&mut out[ipv4::HEADER_LEN..]);
        udp_repr
            .emit(&mut datagram, ip.src_addr, ip.dst_addr, payload.len())
            .expect("UDP emit into sized buffer cannot fail");
    }
    let ip = Ipv4Repr {
        payload_len: udp_len,
        protocol: IpProtocol::Udp,
        ..*ip
    };
    let mut packet = Ipv4Packet::new_unchecked(&mut out[..]);
    ip.emit(&mut packet)
        .expect("IPv4 emit into sized buffer cannot fail");
}

/// A reusable frame assembly buffer.
///
/// Reusing one `FrameBuilder` across packets avoids per-packet allocation —
/// relevant when the benchmark harness generates traces of 10⁷ packets.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    buffer: Vec<u8>,
}

impl FrameBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble an IPv4+TCP frame in the internal buffer and return it.
    pub fn tcp(&mut self, ip: &Ipv4Repr, tcp: &TcpRepr, payload: &[u8]) -> &[u8] {
        build_tcp_frame_into(ip, tcp, payload, &mut self.buffer);
        &self.buffer
    }

    /// Assemble an IPv4+UDP frame in the internal buffer and return it.
    pub fn udp(&mut self, ip: &Ipv4Repr, udp_repr: &UdpRepr, payload: &[u8]) -> &[u8] {
        build_udp_frame_into(ip, udp_repr, payload, &mut self.buffer);
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn ip_repr() -> Ipv4Repr {
        Ipv4Repr::new(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 1, 2, 4),
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn tcp_frame_parses_end_to_end() {
        let tcp = TcpRepr {
            src_port: 33000,
            dst_port: 1521,
            seq: 7,
            ack: 11,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            ..TcpRepr::default()
        };
        let frame = build_tcp_frame(&ip_repr(), &tcp, b"SELECT 1");

        let packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        let ip = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(ip.protocol, IpProtocol::Tcp);
        let segment = TcpSegment::new_checked(packet.payload()).unwrap();
        let parsed = TcpRepr::parse(&segment, ip.src_addr, ip.dst_addr).unwrap();
        assert_eq!(parsed, tcp);
        assert_eq!(segment.payload(), b"SELECT 1");
    }

    #[test]
    fn udp_frame_parses_end_to_end() {
        let udp_repr = UdpRepr {
            src_port: 5353,
            dst_port: 53,
        };
        let frame = build_udp_frame(&ip_repr(), &udp_repr, b"dns");

        let packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        let ip = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(ip.protocol, IpProtocol::Udp);
        let datagram = UdpDatagram::new_checked(packet.payload()).unwrap();
        let parsed = UdpRepr::parse(&datagram, ip.src_addr, ip.dst_addr).unwrap();
        assert_eq!(parsed, udp_repr);
        assert_eq!(datagram.payload(), b"dns");
    }

    #[test]
    fn builder_reuse_produces_identical_frames() {
        let tcp = TcpRepr {
            src_port: 100,
            dst_port: 200,
            ..TcpRepr::default()
        };
        let mut builder = FrameBuilder::new();
        let first = builder.tcp(&ip_repr(), &tcp, b"abc").to_vec();
        // Interleave a different frame to dirty the buffer.
        let _ = builder.udp(
            &ip_repr(),
            &UdpRepr {
                src_port: 1,
                dst_port: 2,
            },
            b"zzzzzzzzzzzz",
        );
        let second = builder.tcp(&ip_repr(), &tcp, b"abc").to_vec();
        assert_eq!(first, second);
    }

    #[test]
    fn into_variants_match_owned_builders() {
        let tcp = TcpRepr {
            src_port: 4455,
            dst_port: 1521,
            seq: 99,
            flags: TcpFlags::ACK,
            ..TcpRepr::default()
        };
        // Start with dirty, oversized contents to show `_into` replaces them.
        let mut out = vec![0xAA; 512];
        build_tcp_frame_into(&ip_repr(), &tcp, b"payload", &mut out);
        assert_eq!(out, build_tcp_frame(&ip_repr(), &tcp, b"payload"));

        let udp_repr = UdpRepr {
            src_port: 9,
            dst_port: 10,
        };
        build_udp_frame_into(&ip_repr(), &udp_repr, b"x", &mut out);
        assert_eq!(out, build_udp_frame(&ip_repr(), &udp_repr, b"x"));
    }

    #[test]
    fn empty_payload_frames() {
        // A pure ACK: the most common packet in the paper's workload.
        let tcp = TcpRepr {
            src_port: 1,
            dst_port: 2,
            flags: TcpFlags::ACK,
            ..TcpRepr::default()
        };
        let frame = build_tcp_frame(&ip_repr(), &tcp, b"");
        assert_eq!(frame.len(), 40); // 20 IP + 20 TCP
        let packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        assert!(Ipv4Repr::parse(&packet).is_ok());
    }
}
