//! Convenience builders that assemble complete IPv4 frames.
//!
//! The simulator and the stack construct millions of packets; these helpers
//! centralize buffer sizing and checksum ordering (transport checksum first,
//! then the IP header checksum) so call sites cannot get it wrong.

use crate::ipv4::{self, IpProtocol, Ipv4Packet, Ipv4Repr};
use crate::tcp::{TcpRepr, TcpSegment};
use crate::udp::{self, UdpDatagram, UdpRepr};

/// Build a complete IPv4+TCP frame from representations and a payload.
///
/// Panics only if `payload` exceeds the 16-bit IPv4 length space, which the
/// callers in this workspace never do; use [`FrameBuilder`] for a fallible,
/// allocation-reusing interface.
pub fn build_tcp_frame(ip: &Ipv4Repr, tcp: &TcpRepr, payload: &[u8]) -> Vec<u8> {
    let mut builder = FrameBuilder::new();
    builder.tcp(ip, tcp, payload).to_vec()
}

/// Build a complete IPv4+UDP frame from representations and a payload.
pub fn build_udp_frame(ip: &Ipv4Repr, udp_repr: &UdpRepr, payload: &[u8]) -> Vec<u8> {
    let mut builder = FrameBuilder::new();
    builder.udp(ip, udp_repr, payload).to_vec()
}

/// A reusable frame assembly buffer.
///
/// Reusing one `FrameBuilder` across packets avoids per-packet allocation —
/// relevant when the benchmark harness generates traces of 10⁷ packets.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    buffer: Vec<u8>,
}

impl FrameBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble an IPv4+TCP frame in the internal buffer and return it.
    pub fn tcp(&mut self, ip: &Ipv4Repr, tcp: &TcpRepr, payload: &[u8]) -> &[u8] {
        let tcp_len = tcp.header_len() + payload.len();
        let total = ipv4::HEADER_LEN + tcp_len;
        self.buffer.clear();
        self.buffer.resize(total, 0);

        self.buffer[ipv4::HEADER_LEN + tcp.header_len()..].copy_from_slice(payload);
        {
            let mut segment = TcpSegment::new_unchecked(&mut self.buffer[ipv4::HEADER_LEN..]);
            tcp.emit(&mut segment, ip.src_addr, ip.dst_addr)
                .expect("TCP emit into sized buffer cannot fail");
        }
        let ip = Ipv4Repr {
            payload_len: tcp_len,
            protocol: IpProtocol::Tcp,
            ..*ip
        };
        let mut packet = Ipv4Packet::new_unchecked(&mut self.buffer[..]);
        ip.emit(&mut packet)
            .expect("IPv4 emit into sized buffer cannot fail");
        &self.buffer
    }

    /// Assemble an IPv4+UDP frame in the internal buffer and return it.
    pub fn udp(&mut self, ip: &Ipv4Repr, udp_repr: &UdpRepr, payload: &[u8]) -> &[u8] {
        let udp_len = udp::HEADER_LEN + payload.len();
        let total = ipv4::HEADER_LEN + udp_len;
        self.buffer.clear();
        self.buffer.resize(total, 0);

        self.buffer[ipv4::HEADER_LEN + udp::HEADER_LEN..].copy_from_slice(payload);
        {
            let mut datagram = UdpDatagram::new_unchecked(&mut self.buffer[ipv4::HEADER_LEN..]);
            udp_repr
                .emit(&mut datagram, ip.src_addr, ip.dst_addr, payload.len())
                .expect("UDP emit into sized buffer cannot fail");
        }
        let ip = Ipv4Repr {
            payload_len: udp_len,
            protocol: IpProtocol::Udp,
            ..*ip
        };
        let mut packet = Ipv4Packet::new_unchecked(&mut self.buffer[..]);
        ip.emit(&mut packet)
            .expect("IPv4 emit into sized buffer cannot fail");
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn ip_repr() -> Ipv4Repr {
        Ipv4Repr::new(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 1, 2, 4),
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn tcp_frame_parses_end_to_end() {
        let tcp = TcpRepr {
            src_port: 33000,
            dst_port: 1521,
            seq: 7,
            ack: 11,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            ..TcpRepr::default()
        };
        let frame = build_tcp_frame(&ip_repr(), &tcp, b"SELECT 1");

        let packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        let ip = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(ip.protocol, IpProtocol::Tcp);
        let segment = TcpSegment::new_checked(packet.payload()).unwrap();
        let parsed = TcpRepr::parse(&segment, ip.src_addr, ip.dst_addr).unwrap();
        assert_eq!(parsed, tcp);
        assert_eq!(segment.payload(), b"SELECT 1");
    }

    #[test]
    fn udp_frame_parses_end_to_end() {
        let udp_repr = UdpRepr {
            src_port: 5353,
            dst_port: 53,
        };
        let frame = build_udp_frame(&ip_repr(), &udp_repr, b"dns");

        let packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        let ip = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(ip.protocol, IpProtocol::Udp);
        let datagram = UdpDatagram::new_checked(packet.payload()).unwrap();
        let parsed = UdpRepr::parse(&datagram, ip.src_addr, ip.dst_addr).unwrap();
        assert_eq!(parsed, udp_repr);
        assert_eq!(datagram.payload(), b"dns");
    }

    #[test]
    fn builder_reuse_produces_identical_frames() {
        let tcp = TcpRepr {
            src_port: 100,
            dst_port: 200,
            ..TcpRepr::default()
        };
        let mut builder = FrameBuilder::new();
        let first = builder.tcp(&ip_repr(), &tcp, b"abc").to_vec();
        // Interleave a different frame to dirty the buffer.
        let _ = builder.udp(
            &ip_repr(),
            &UdpRepr {
                src_port: 1,
                dst_port: 2,
            },
            b"zzzzzzzzzzzz",
        );
        let second = builder.tcp(&ip_repr(), &tcp, b"abc").to_vec();
        assert_eq!(first, second);
    }

    #[test]
    fn empty_payload_frames() {
        // A pure ACK: the most common packet in the paper's workload.
        let tcp = TcpRepr {
            src_port: 1,
            dst_port: 2,
            flags: TcpFlags::ACK,
            ..TcpRepr::default()
        };
        let frame = build_tcp_frame(&ip_repr(), &tcp, b"");
        assert_eq!(frame.len(), 40); // 20 IP + 20 TCP
        let packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        assert!(Ipv4Repr::parse(&packet).is_ok());
    }
}
