//! IPv4 header parsing and emission.
//!
//! [`Ipv4Packet`] is a typed view over a byte buffer; [`Ipv4Repr`] is the
//! parsed, validated high-level representation. Options (IHL > 5) are
//! accepted and skipped on parse but never emitted — the paper's traffic
//! (TPC/A queries, responses, and pure ACKs) does not use IP options.

use crate::checksum;
use crate::{Result, WireError};
use core::fmt;
use std::net::Ipv4Addr;

/// Minimum (and, for everything we emit, actual) IPv4 header length.
pub const HEADER_LEN: usize = 20;

/// Default time-to-live for emitted packets, matching BSD-era stacks.
pub const DEFAULT_TTL: u8 = 64;

/// Transport protocol numbers this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// Internet Control Message Protocol (1).
    Icmp,
    /// Transmission Control Protocol (6).
    Tcp,
    /// User Datagram Protocol (17).
    Udp,
    /// Anything else, kept verbatim so it can be counted and dropped.
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(value: u8) -> Self {
        match value {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(value: IpProtocol) -> Self {
        match value {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(other) => other,
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Unknown(p) => write!(f, "proto({p})"),
        }
    }
}

/// A typed view over an IPv4 packet buffer.
///
/// Construct with [`new_checked`](Self::new_checked) to get a view whose
/// accessors are guaranteed in-bounds.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    //! Byte offsets of IPv4 header fields.
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const TOS: usize = 1;
    pub const TOTAL_LEN: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLAGS_FRAG: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC_ADDR: Range<usize> = 12..16;
    pub const DST_ADDR: Range<usize> = 16..20;
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation. Accessors may panic if the buffer
    /// is too short; prefer [`new_checked`](Self::new_checked).
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating length fields (but not the checksum; see
    /// [`verify_checksum`](Self::verify_checksum)).
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate that the version is 4 and all declared lengths fit the
    /// buffer: IHL >= 20, IHL <= total length <= buffer length.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[field::VER_IHL] >> 4 != 4 {
            return Err(WireError::BadVersion);
        }
        let header_len = self.header_len();
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(WireError::BadHeaderLen);
        }
        let total_len = self.total_len() as usize;
        if total_len < header_len || total_len > data.len() {
            return Err(WireError::BadTotalLen);
        }
        Ok(())
    }

    /// IP version (high nibble of the first byte).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// Type-of-service byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[field::TOS]
    }

    /// Total packet length (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::TOTAL_LEN.start], d[field::TOTAL_LEN.start + 1]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::IDENT.start], d[field::IDENT.start + 1]])
    }

    /// Whether the "don't fragment" flag is set.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG.start] & 0x40 != 0
    }

    /// Whether the "more fragments" flag is set.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS_FRAG.start] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::FLAGS_FRAG.start], d[field::FLAGS_FRAG.start + 1]]) & 0x1fff
    }

    /// True if this packet is any fragment other than a complete datagram.
    pub fn is_fragment(&self) -> bool {
        self.more_frags() || self.frag_offset() != 0
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field as stored.
    pub fn header_checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(
            d[field::SRC_ADDR.start],
            d[field::SRC_ADDR.start + 1],
            d[field::SRC_ADDR.start + 2],
            d[field::SRC_ADDR.start + 3],
        )
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(
            d[field::DST_ADDR.start],
            d[field::DST_ADDR.start + 1],
            d[field::DST_ADDR.start + 2],
            d[field::DST_ADDR.start + 3],
        )
    }

    /// Verify the header checksum over the full header (including options).
    pub fn verify_checksum(&self) -> bool {
        let data = self.buffer.as_ref();
        checksum::verify(&data[..self.header_len()])
    }

    /// The transport-layer payload, bounded by the total-length field.
    pub fn payload(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        &data[self.header_len()..self.total_len() as usize]
    }

    /// Consume the view and return the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set version 4 and header length (bytes, multiple of 4).
    pub fn set_version_and_header_len(&mut self, header_len: usize) {
        debug_assert!(header_len % 4 == 0 && (20..=60).contains(&header_len));
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (header_len / 4) as u8;
    }

    /// Set the type-of-service byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.buffer.as_mut()[field::TOS] = tos;
    }

    /// Set the total-length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::TOTAL_LEN].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, ident: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&ident.to_be_bytes());
    }

    /// Set flags (DF) and clear fragment offset.
    pub fn set_dont_frag(&mut self, df: bool) {
        let flags = if df { 0x40u8 } else { 0 };
        self.buffer.as_mut()[field::FLAGS_FRAG.start] = flags;
        self.buffer.as_mut()[field::FLAGS_FRAG.start + 1] = 0;
    }

    /// Set the time-to-live.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Set the transport protocol number.
    pub fn set_protocol(&mut self, protocol: IpProtocol) {
        self.buffer.as_mut()[field::PROTOCOL] = protocol.into();
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(&addr.octets());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(&addr.octets());
    }

    /// Zero the checksum field, compute the header checksum, and store it.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let header_len = self.header_len();
        let sum = checksum::checksum(&self.buffer.as_ref()[..header_len]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable access to the payload region (between header and total length).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = self.header_len();
        let total_len = self.total_len() as usize;
        &mut self.buffer.as_mut()[header_len..total_len]
    }
}

/// Parsed, validated representation of an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Payload (transport header + data) length in bytes.
    pub payload_len: usize,
    /// Time-to-live for emission; preserved on parse.
    pub ttl: u8,
}

impl Ipv4Repr {
    /// A representation with default TTL and zero payload length; the
    /// builder fills in `payload_len` when emitting.
    pub fn new(src_addr: Ipv4Addr, dst_addr: Ipv4Addr, protocol: IpProtocol) -> Self {
        Self {
            src_addr,
            dst_addr,
            protocol,
            payload_len: 0,
            ttl: DEFAULT_TTL,
        }
    }

    /// Parse and fully validate a packet view: lengths, version, checksum,
    /// and fragmentation.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Self> {
        packet.check_len()?;
        if !packet.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        if packet.is_fragment() {
            return Err(WireError::Fragmented);
        }
        Ok(Self {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - packet.header_len(),
            ttl: packet.ttl(),
        })
    }

    /// Length of the header this representation emits (no options).
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total length of the packet this representation emits.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header into the front of `packet`'s buffer and fill the
    /// checksum. The buffer must be at least [`total_len`](Self::total_len)
    /// bytes.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) -> Result<()> {
        if self.total_len() > u16::MAX as usize || packet.buffer.as_ref().len() < self.total_len() {
            return Err(WireError::PayloadTooLong);
        }
        packet.set_version_and_header_len(HEADER_LEN);
        packet.set_tos(0);
        packet.set_total_len(self.total_len() as u16);
        packet.set_ident(0);
        packet.set_dont_frag(true);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Addr::new(192, 0, 2, 1),
            dst_addr: Ipv4Addr::new(198, 51, 100, 7),
            protocol: IpProtocol::Tcp,
            payload_len: 8,
            ttl: 61,
        }
    }

    fn emit_to_vec(repr: &Ipv4Repr) -> Vec<u8> {
        let mut buf = vec![0u8; repr.total_len()];
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let repr = sample_repr();
        let buf = emit_to_vec(&repr);
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn emitted_checksum_verifies() {
        let buf = emit_to_vec(&sample_repr());
        let packet = Ipv4Packet::new_unchecked(&buf[..]);
        assert!(packet.verify_checksum());
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let buf = emit_to_vec(&sample_repr());
        for len in 0..HEADER_LEN {
            assert_eq!(
                Ipv4Packet::new_checked(&buf[..len]).err(),
                Some(WireError::Truncated),
                "length {len}"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = emit_to_vec(&sample_repr());
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).err(),
            Some(WireError::BadVersion)
        );
    }

    #[test]
    fn bad_ihl_is_rejected() {
        let mut buf = emit_to_vec(&sample_repr());
        buf[0] = 0x44; // IHL = 16 bytes < 20
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).err(),
            Some(WireError::BadHeaderLen)
        );
        let mut buf2 = emit_to_vec(&sample_repr());
        buf2[0] = 0x4f; // IHL = 60 > buffer
        assert_eq!(
            Ipv4Packet::new_checked(&buf2[..]).err(),
            Some(WireError::BadHeaderLen)
        );
    }

    #[test]
    fn bad_total_len_is_rejected() {
        let mut buf = emit_to_vec(&sample_repr());
        buf[2] = 0xff;
        buf[3] = 0xff; // total length far beyond buffer
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).err(),
            Some(WireError::BadTotalLen)
        );
        let mut buf2 = emit_to_vec(&sample_repr());
        buf2[2] = 0;
        buf2[3] = 10; // total length smaller than header
        assert_eq!(
            Ipv4Packet::new_checked(&buf2[..]).err(),
            Some(WireError::BadTotalLen)
        );
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut buf = emit_to_vec(&sample_repr());
        buf[8] ^= 0x01; // TTL bit flip
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Ipv4Repr::parse(&packet).err(), Some(WireError::BadChecksum));
    }

    #[test]
    fn fragments_are_rejected() {
        let mut buf = emit_to_vec(&sample_repr());
        buf[6] = 0x20; // more-fragments flag
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        packet.fill_checksum();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Ipv4Repr::parse(&packet).err(), Some(WireError::Fragmented));
    }

    #[test]
    fn payload_respects_total_len() {
        // Buffer longer than total_len: payload must stop at total_len.
        let repr = sample_repr();
        let mut buf = emit_to_vec(&repr);
        buf.extend_from_slice(&[0xde, 0xad]); // trailing garbage (e.g. Ethernet padding)
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload().len(), repr.payload_len);
    }

    #[test]
    fn protocol_conversions() {
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Unknown(89));
        assert_eq!(u8::from(IpProtocol::Icmp), 1);
        assert_eq!(u8::from(IpProtocol::Tcp), 6);
        assert_eq!(u8::from(IpProtocol::Unknown(89)), 89);
        assert_eq!(IpProtocol::Tcp.to_string(), "TCP");
        assert_eq!(IpProtocol::Icmp.to_string(), "ICMP");
    }

    #[test]
    fn options_are_skipped_on_parse() {
        // Hand-craft a header with IHL=6 (one option word of NOPs).
        let mut buf = [0u8; 24 + 4];
        buf[0] = 0x46; // version 4, IHL 6
        buf[2] = 0;
        buf[3] = 28; // total length
        buf[8] = 64;
        buf[9] = 6;
        buf[12..16].copy_from_slice(&[10, 0, 0, 1]);
        buf[16..20].copy_from_slice(&[10, 0, 0, 2]);
        buf[20..24].copy_from_slice(&[1, 1, 1, 1]); // NOP options
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        packet.fill_checksum();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        let parsed = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(parsed.payload_len, 4);
        assert_eq!(packet.payload().len(), 4);
    }

    #[test]
    fn prop_roundtrip() {
        check("ipv4_prop_roundtrip", |rng| {
            let repr = Ipv4Repr {
                src_addr: Ipv4Addr::from(rng.u32()),
                dst_addr: Ipv4Addr::from(rng.u32()),
                protocol: IpProtocol::from(rng.u8()),
                payload_len: rng.usize_in(0, 1480),
                ttl: 1 + rng.u8_in(0, 255), // [1, 255]
            };
            let buf = emit_to_vec(&repr);
            let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
            let parsed = Ipv4Repr::parse(&packet).unwrap();
            assert_eq!(parsed, repr);
        });
    }

    /// Arbitrary bytes never panic the parser: they either parse or
    /// produce a structured error.
    #[test]
    fn prop_no_panic_on_garbage() {
        check("ipv4_prop_no_panic_on_garbage", |rng| {
            let data = rng.bytes(0, 128);
            if let Ok(packet) = Ipv4Packet::new_checked(&data[..]) {
                let _ = Ipv4Repr::parse(&packet);
            }
        });
    }

    /// A corrupted byte anywhere in the emitted header is detected by
    /// length checks or the checksum.
    #[test]
    fn prop_header_corruption_detected() {
        check("ipv4_prop_header_corruption_detected", |rng| {
            let corrupt_at = rng.usize_in(0, HEADER_LEN);
            let xor = 1 + rng.u8_in(0, 255); // [1, 255]
            let repr = sample_repr();
            let mut buf = emit_to_vec(&repr);
            buf[corrupt_at] ^= xor;
            let parse_result = Ipv4Packet::new_checked(&buf[..]).and_then(|p| Ipv4Repr::parse(&p));
            // Corruption of TOS/ident/flags/ttl/protocol/addresses is caught
            // by the checksum; corruption of version/IHL/length by check_len.
            assert!(parse_result.is_err() || parse_result.unwrap() == repr);
            // The only way to "survive" is if the corruption produced an
            // equally-valid header describing identical fields, which a
            // single XOR cannot do — assert strictly:
            let reparsed = Ipv4Packet::new_checked(&buf[..]).and_then(|p| Ipv4Repr::parse(&p));
            assert!(reparsed.is_err());
        });
    }
}
