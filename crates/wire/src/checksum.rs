//! RFC 1071 Internet checksum.
//!
//! The Internet checksum is the ones'-complement of the ones'-complement sum
//! of the data interpreted as big-endian 16-bit words, with a trailing odd
//! byte padded on the right with zero. TCP and UDP additionally sum a
//! *pseudo-header* containing the IP source/destination addresses, the
//! protocol number, and the transport-layer length.
//!
//! The functions here operate on raw accumulators (`u32` partial sums) so a
//! checksum can be composed from several discontiguous pieces — exactly what
//! the pseudo-header requires — without copying.

use std::net::Ipv4Addr;

/// A running ones'-complement sum.
///
/// Accumulate pieces with [`Accumulator::add_bytes`] and friends, then
/// [`finish`](Accumulator::finish) to obtain the complemented 16-bit
/// checksum.
///
/// ```
/// use tcpdemux_wire::checksum::Accumulator;
/// let mut acc = Accumulator::new();
/// acc.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
/// // Classic RFC 1071 worked example: sum is 0xddf2, checksum 0x220d.
/// assert_eq!(acc.finish(), 0x220d);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    sum: u32,
}

impl Accumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self { sum: 0 }
    }

    /// Add a byte slice to the sum. A trailing odd byte is padded with zero,
    /// so this must only be used for the *final* piece of data or for pieces
    /// with even length (the pseudo-header and all fixed headers are even).
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add one big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add a 32-bit quantity as two 16-bit words (used for IPv4 addresses).
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Add the TCP/UDP pseudo-header for the given addresses, protocol
    /// number, and transport-layer length (header + payload, in bytes).
    pub fn add_pseudo_header(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: u8,
        transport_len: u16,
    ) {
        self.add_u32(u32::from(src));
        self.add_u32(u32::from(dst));
        self.add_u16(u16::from(protocol));
        self.add_u16(transport_len);
    }

    /// Fold the carries and return the ones'-complement checksum.
    pub fn finish(mut self) -> u16 {
        while self.sum > 0xffff {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Compute the Internet checksum of a single contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut acc = Accumulator::new();
    acc.add_bytes(data);
    acc.finish()
}

/// Verify a buffer whose checksum field is *included* in the data.
///
/// Per RFC 1071, summing data that already contains a correct checksum
/// yields `0xffff`, so the complemented result is zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Compute the TCP or UDP checksum over `transport` (header + payload, with
/// the checksum field zeroed or skipped by the caller) plus the pseudo-header.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, transport: &[u8]) -> u16 {
    let mut acc = Accumulator::new();
    acc.add_pseudo_header(src, dst, protocol, transport.len() as u16);
    acc.add_bytes(transport);
    acc.finish()
}

/// Verify a transport segment whose checksum field is included in the data.
pub fn verify_transport(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, transport: &[u8]) -> bool {
    transport_checksum(src, dst, protocol, transport) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn rfc1071_worked_example() {
        // From RFC 1071 section 3: bytes 00 01 f2 03 f4 f5 f6 f7
        // one's complement sum = ddf2, checksum = ~ddf2 = 220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [ab] is summed as the word 0xab00.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn empty_buffer_sums_to_zero() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_accepts_self_checksummed_data() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0, 0,
        ];
        let sum = checksum(&data);
        data[10] = (sum >> 8) as u8;
        data[11] = sum as u8;
        assert!(verify(&data));
    }

    #[test]
    fn all_ones_data() {
        // Sum of 0xffff + 0xffff folds to 0xffff; complement is 0.
        assert_eq!(checksum(&[0xff, 0xff, 0xff, 0xff]), 0);
    }

    #[test]
    fn accumulator_piecewise_equals_contiguous() {
        let data: Vec<u8> = (0u8..64).collect();
        let whole = checksum(&data);
        let mut acc = Accumulator::new();
        acc.add_bytes(&data[..10]);
        acc.add_bytes(&data[10..32]);
        acc.add_bytes(&data[32..]);
        assert_eq!(acc.finish(), whole);
    }

    #[test]
    fn pseudo_header_matches_manual_layout() {
        let src = Ipv4Addr::new(192, 0, 2, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 99);
        let mut via_helper = Accumulator::new();
        via_helper.add_pseudo_header(src, dst, 6, 20);

        let mut manual = Accumulator::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&src.octets());
        bytes.extend_from_slice(&dst.octets());
        bytes.extend_from_slice(&[0, 6]); // zero + protocol
        bytes.extend_from_slice(&20u16.to_be_bytes());
        manual.add_bytes(&bytes);

        assert_eq!(via_helper.finish(), manual.finish());
    }

    #[test]
    fn transport_checksum_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![0u8; 24];
        seg[0] = 0x12;
        seg[23] = 0x99;
        let sum = transport_checksum(src, dst, 6, &seg);
        seg[16] = (sum >> 8) as u8; // TCP checksum offset
        seg[17] = sum as u8;
        assert!(verify_transport(src, dst, 6, &seg));
    }

    /// Checksumming is invariant under where the buffer is split
    /// (for even-length prefixes, as required by the contract).
    #[test]
    fn prop_split_invariant() {
        check("prop_split_invariant", |rng| {
            let data = rng.bytes(0, 256);
            let split = (rng.usize_in(0, 128) * 2).min(data.len());
            let whole = checksum(&data);
            let mut acc = Accumulator::new();
            acc.add_bytes(&data[..split]);
            acc.add_bytes(&data[split..]);
            assert_eq!(acc.finish(), whole);
        });
    }

    /// Writing the computed checksum into any aligned position makes the
    /// buffer verify.
    #[test]
    fn prop_self_verifies() {
        check("prop_self_verifies", |rng| {
            let mut data = rng.bytes(2, 128);
            // The checksum slot must be word-aligned (even offset).
            let pos = (rng.usize_in(0, 63) * 2).min((data.len() - 2) & !1);
            data[pos] = 0;
            data[pos + 1] = 0;
            let sum = checksum(&data);
            data[pos] = (sum >> 8) as u8;
            data[pos + 1] = sum as u8;
            assert!(verify(&data));
        });
    }

    /// Flipping a single bit in a verifying buffer breaks verification.
    /// (True for the Internet checksum: a one-bit change alters the
    /// ones'-complement sum.)
    #[test]
    fn prop_detects_single_bit_flip() {
        check("prop_detects_single_bit_flip", |rng| {
            let mut data = rng.bytes(2, 128);
            let flip_byte = rng.usize_in(0, 128);
            let flip_bit = rng.u8_in(0, 8);
            // Make the buffer self-verifying first.
            data[0] = 0;
            data[1] = 0;
            let sum = checksum(&data);
            data[0] = (sum >> 8) as u8;
            data[1] = sum as u8;
            if !verify(&data) {
                return; // analogue of prop_assume!
            }
            let idx = flip_byte % data.len();
            data[idx] ^= 1 << flip_bit;
            assert!(!verify(&data));
        });
    }

    /// The accumulator's u32 cannot overflow for any realistic packet:
    /// even 2^16 bytes of 0xff only reach ~2^31. Check the sum is stable
    /// for large inputs.
    #[test]
    fn prop_large_input_no_panic() {
        check("prop_large_input_no_panic", |rng| {
            let _ = checksum(&rng.bytes(0, 4096));
        });
    }
}
