//! TCP segment parsing and emission.
//!
//! [`TcpSegment`] is a typed view over the TCP header and payload;
//! [`TcpRepr`] is the parsed representation. The checksum covers the
//! IPv4 pseudo-header, so parsing and emission take the source and
//! destination addresses as parameters.

use crate::checksum;
use crate::{Result, WireError};
use core::fmt;
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// Maximum TCP header length (data offset 15).
pub const MAX_HEADER_LEN: usize = 60;

/// TCP control flags.
///
/// A tiny hand-rolled bitflags type: the standard nine-bit flag field of
/// RFC 793 (plus ECN bits, which we preserve but do not interpret).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(u16);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN: sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x001);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x002);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x004);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x008);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x010);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x020);
    /// ECE: ECN echo.
    pub const ECE: TcpFlags = TcpFlags(0x040);
    /// CWR: congestion window reduced.
    pub const CWR: TcpFlags = TcpFlags(0x080);
    /// NS: ECN nonce (historic).
    pub const NS: TcpFlags = TcpFlags(0x100);

    /// Construct from the raw 9-bit field.
    pub const fn from_bits(bits: u16) -> Self {
        TcpFlags(bits & 0x1ff)
    }

    /// The raw bit representation.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Whether all flags in `other` are set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag in `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl core::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl core::ops::BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u16, &str); 9] = [
            (0x002, "SYN"),
            (0x010, "ACK"),
            (0x001, "FIN"),
            (0x004, "RST"),
            (0x008, "PSH"),
            (0x020, "URG"),
            (0x040, "ECE"),
            (0x080, "CWR"),
            (0x100, "NS"),
        ];
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End-of-option-list marker.
    EndOfList,
    /// Padding.
    NoOperation,
    /// Maximum segment size (SYN segments only).
    MaxSegmentSize(u16),
    /// Window scale shift (RFC 1323).
    WindowScale(u8),
    /// An option we do not interpret: (kind, length including kind+len bytes).
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Declared total option length.
        len: u8,
    },
}

/// A typed view over a TCP segment buffer (header + payload).
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ: Range<usize> = 4..8;
    pub const ACK: Range<usize> = 8..12;
    pub const OFFSET_FLAGS: Range<usize> = 12..14;
    pub const WINDOW: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
    pub const URGENT: Range<usize> = 18..20;
}

fn get_u16(data: &[u8], range: core::ops::Range<usize>) -> u16 {
    u16::from_be_bytes([data[range.start], data[range.start + 1]])
}

fn get_u32(data: &[u8], range: core::ops::Range<usize>) -> u32 {
    u32::from_be_bytes([
        data[range.start],
        data[range.start + 1],
        data[range.start + 2],
        data[range.start + 3],
    ])
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, validating the length fields.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let segment = Self::new_unchecked(buffer);
        segment.check_len()?;
        Ok(segment)
    }

    /// Validate that the buffer holds at least a fixed header and that the
    /// data offset is within `[20, buffer len]`.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let header_len = self.header_len();
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(WireError::BadHeaderLen);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        get_u32(self.buffer.as_ref(), field::SEQ)
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        get_u32(self.buffer.as_ref(), field::ACK)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::OFFSET_FLAGS.start] >> 4) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_bits(get_u16(self.buffer.as_ref(), field::OFFSET_FLAGS) & 0x1ff)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::WINDOW)
    }

    /// Stored checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Urgent pointer (carried, not interpreted — as in smoltcp).
    pub fn urgent_pointer(&self) -> u16 {
        get_u16(self.buffer.as_ref(), field::URGENT)
    }

    /// The option bytes between the fixed header and the payload.
    pub fn options_raw(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.header_len()]
    }

    /// Iterate over parsed options, stopping at end-of-list.
    pub fn options(&self) -> OptionIter<'_> {
        OptionIter {
            data: self.options_raw(),
        }
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the TCP checksum including the pseudo-header.
    pub fn verify_checksum(&self, src_addr: Ipv4Addr, dst_addr: Ipv4Addr) -> bool {
        checksum::verify_transport(src_addr, dst_addr, 6, self.buffer.as_ref())
    }

    /// Consume the view and return the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&seq.to_be_bytes());
    }

    /// Set the acknowledgment number.
    pub fn set_ack(&mut self, ack: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&ack.to_be_bytes());
    }

    /// Set the header length (bytes, multiple of 4) and flags together (they
    /// share a 16-bit field).
    pub fn set_header_len_and_flags(&mut self, header_len: usize, flags: TcpFlags) {
        debug_assert!(header_len % 4 == 0 && (HEADER_LEN..=MAX_HEADER_LEN).contains(&header_len));
        let word = ((header_len as u16 / 4) << 12) | flags.bits();
        self.buffer.as_mut()[field::OFFSET_FLAGS].copy_from_slice(&word.to_be_bytes());
    }

    /// Set the receive window.
    pub fn set_window(&mut self, window: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&window.to_be_bytes());
    }

    /// Set the urgent pointer.
    pub fn set_urgent_pointer(&mut self, urgent: u16) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&urgent.to_be_bytes());
    }

    /// Zero the checksum field, compute the checksum with the pseudo-header,
    /// and store it.
    pub fn fill_checksum(&mut self, src_addr: Ipv4Addr, dst_addr: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let sum = checksum::transport_checksum(src_addr, dst_addr, 6, self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = self.header_len();
        &mut self.buffer.as_mut()[header_len..]
    }
}

/// Iterator over TCP options in a header's option area.
#[derive(Debug, Clone)]
pub struct OptionIter<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for OptionIter<'a> {
    type Item = Result<TcpOption>;

    fn next(&mut self) -> Option<Self::Item> {
        let (&kind, rest) = self.data.split_first()?;
        match kind {
            0 => {
                self.data = &[];
                Some(Ok(TcpOption::EndOfList))
            }
            1 => {
                self.data = rest;
                Some(Ok(TcpOption::NoOperation))
            }
            _ => {
                let Some(&len) = rest.first() else {
                    self.data = &[];
                    return Some(Err(WireError::BadOption));
                };
                if len < 2 || usize::from(len) > self.data.len() {
                    self.data = &[];
                    return Some(Err(WireError::BadOption));
                }
                let body = &self.data[2..usize::from(len)];
                self.data = &self.data[usize::from(len)..];
                let option = match (kind, body.len()) {
                    (2, 2) => TcpOption::MaxSegmentSize(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    _ => TcpOption::Unknown { kind, len },
                };
                Some(Ok(option))
            }
        }
    }
}

/// Parsed, validated representation of a TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when `flags` contains ACK).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Maximum segment size option, if present (SYN segments).
    pub mss: Option<u16>,
    /// Window scale option, if present (SYN segments).
    pub window_scale: Option<u8>,
}

impl Default for TcpRepr {
    fn default() -> Self {
        Self {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::EMPTY,
            window: 8760,
            mss: None,
            window_scale: None,
        }
    }
}

impl TcpRepr {
    /// Parse and fully validate a segment view: lengths, ports, checksum,
    /// and the options we understand.
    pub fn parse<T: AsRef<[u8]>>(
        segment: &TcpSegment<T>,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
    ) -> Result<Self> {
        segment.check_len()?;
        if segment.src_port() == 0 || segment.dst_port() == 0 {
            return Err(WireError::BadPort);
        }
        if !segment.verify_checksum(src_addr, dst_addr) {
            return Err(WireError::BadChecksum);
        }
        let mut mss = None;
        let mut window_scale = None;
        for option in segment.options() {
            match option? {
                TcpOption::EndOfList => break,
                TcpOption::NoOperation | TcpOption::Unknown { .. } => {}
                TcpOption::MaxSegmentSize(value) => mss = Some(value),
                TcpOption::WindowScale(value) => window_scale = Some(value),
            }
        }
        Ok(Self {
            src_port: segment.src_port(),
            dst_port: segment.dst_port(),
            seq: segment.seq(),
            ack: segment.ack(),
            flags: segment.flags(),
            window: segment.window(),
            mss,
            window_scale,
        })
    }

    /// Length of the header this representation emits, including options
    /// padded to a 4-byte boundary.
    pub fn header_len(&self) -> usize {
        let mut options = 0usize;
        if self.mss.is_some() {
            options += 4;
        }
        if self.window_scale.is_some() {
            options += 3;
        }
        HEADER_LEN + options.div_ceil(4) * 4
    }

    /// Emit the header (and options) into the front of `segment`'s buffer
    /// and fill the checksum over the entire buffer. The caller must have
    /// already placed the payload after [`header_len`](Self::header_len)
    /// bytes.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        segment: &mut TcpSegment<T>,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
    ) -> Result<()> {
        if self.src_port == 0 || self.dst_port == 0 {
            return Err(WireError::BadPort);
        }
        let header_len = self.header_len();
        if segment.buffer.as_ref().len() < header_len {
            return Err(WireError::Truncated);
        }
        segment.set_src_port(self.src_port);
        segment.set_dst_port(self.dst_port);
        segment.set_seq(self.seq);
        segment.set_ack(self.ack);
        segment.set_header_len_and_flags(header_len, self.flags);
        segment.set_window(self.window);
        segment.set_urgent_pointer(0);

        // Emit options, padded with NOPs to the header length.
        let mut cursor = HEADER_LEN;
        let buf = segment.buffer.as_mut();
        if let Some(mss) = self.mss {
            buf[cursor] = 2;
            buf[cursor + 1] = 4;
            buf[cursor + 2..cursor + 4].copy_from_slice(&mss.to_be_bytes());
            cursor += 4;
        }
        if let Some(shift) = self.window_scale {
            buf[cursor] = 3;
            buf[cursor + 1] = 3;
            buf[cursor + 2] = shift;
            cursor += 3;
        }
        while cursor < header_len {
            buf[cursor] = 1; // NOP padding
            cursor += 1;
        }

        segment.fill_checksum(src_addr, dst_addr);
        Ok(())
    }

    /// The amount of sequence space this segment occupies: payload length
    /// plus one for SYN and one for FIN.
    pub fn segment_len(&self, payload_len: usize) -> u32 {
        let mut len = payload_len as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn sample_repr() -> TcpRepr {
        TcpRepr {
            src_port: 4096,
            dst_port: 1521,
            seq: 0x1234_5678,
            ack: 0x9abc_def0,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 4096,
            mss: None,
            window_scale: None,
        }
    }

    fn emit_to_vec(repr: &TcpRepr, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; repr.header_len() + payload.len()];
        buf[repr.header_len()..].copy_from_slice(payload);
        let mut segment = TcpSegment::new_unchecked(&mut buf[..]);
        repr.emit(&mut segment, SRC, DST).unwrap();
        buf
    }

    #[test]
    fn roundtrip_no_options() {
        let repr = sample_repr();
        let buf = emit_to_vec(&repr, b"hello");
        let segment = TcpSegment::new_checked(&buf[..]).unwrap();
        let parsed = TcpRepr::parse(&segment, SRC, DST).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(segment.payload(), b"hello");
    }

    #[test]
    fn roundtrip_with_options() {
        let repr = TcpRepr {
            flags: TcpFlags::SYN,
            mss: Some(1460),
            window_scale: Some(3),
            ..sample_repr()
        };
        // 4 (MSS) + 3 (WS) = 7 -> padded to 8; header = 28.
        assert_eq!(repr.header_len(), 28);
        let buf = emit_to_vec(&repr, b"");
        let segment = TcpSegment::new_checked(&buf[..]).unwrap();
        let parsed = TcpRepr::parse(&segment, SRC, DST).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(parsed.window_scale, Some(3));
    }

    #[test]
    fn checksum_depends_on_addresses() {
        let repr = sample_repr();
        let buf = emit_to_vec(&repr, b"data");
        let segment = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(segment.verify_checksum(SRC, DST));
        // Same bytes claimed to come from a different host must fail:
        // this is what prevents demux on a spoofed pseudo-header.
        assert!(!segment.verify_checksum(Ipv4Addr::new(10, 0, 0, 3), DST));
        assert_eq!(
            TcpRepr::parse(&segment, Ipv4Addr::new(10, 0, 0, 3), DST).err(),
            Some(WireError::BadChecksum)
        );
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let repr = sample_repr();
        let mut buf = emit_to_vec(&repr, b"payload-bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x80;
        let segment = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(
            TcpRepr::parse(&segment, SRC, DST).err(),
            Some(WireError::BadChecksum)
        );
    }

    #[test]
    fn zero_ports_rejected() {
        let mut repr = sample_repr();
        repr.src_port = 0;
        let mut buf = vec![0u8; repr.header_len()];
        assert_eq!(buf.len(), 20);
        let mut segment = TcpSegment::new_unchecked(&mut buf[..]);
        assert_eq!(
            repr.emit(&mut segment, SRC, DST).err(),
            Some(WireError::BadPort)
        );
    }

    #[test]
    fn truncated_rejected() {
        let buf = emit_to_vec(&sample_repr(), b"");
        for len in 0..HEADER_LEN {
            assert_eq!(
                TcpSegment::new_checked(&buf[..len]).err(),
                Some(WireError::Truncated)
            );
        }
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = emit_to_vec(&sample_repr(), b"");
        buf[12] = 0x40; // offset 4 words = 16 bytes < 20
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).err(),
            Some(WireError::BadHeaderLen)
        );
        let mut buf2 = emit_to_vec(&sample_repr(), b"");
        buf2[12] = 0xf0; // offset 60 > buffer
        assert_eq!(
            TcpSegment::new_checked(&buf2[..]).err(),
            Some(WireError::BadHeaderLen)
        );
    }

    #[test]
    fn malformed_option_rejected() {
        // Craft a header with a broken option: kind 2, len 0.
        let repr = TcpRepr {
            flags: TcpFlags::SYN,
            mss: Some(1460),
            ..sample_repr()
        };
        let mut buf = emit_to_vec(&repr, b"");
        buf[21] = 0; // MSS option length byte -> 0
        let mut segment = TcpSegment::new_unchecked(&mut buf[..]);
        segment.fill_checksum(SRC, DST);
        let segment = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(
            TcpRepr::parse(&segment, SRC, DST).err(),
            Some(WireError::BadOption)
        );
    }

    #[test]
    fn unknown_options_are_skipped() {
        // Timestamp option (kind 8, len 10) followed by NOPs.
        let repr = sample_repr();
        let mut buf = [0u8; 32];
        {
            let mut segment = TcpSegment::new_unchecked(&mut buf[..]);
            repr.emit(&mut segment, SRC, DST).unwrap();
        }
        buf[12] = 0x80; // data offset 8 words = 32 bytes
        buf[20] = 8; // kind: timestamp
        buf[21] = 10; // len
        buf[30] = 1; // NOP
        buf[31] = 1; // NOP
        let mut segment = TcpSegment::new_unchecked(&mut buf[..]);
        segment.fill_checksum(SRC, DST);
        let segment = TcpSegment::new_checked(&buf[..]).unwrap();
        let parsed = TcpRepr::parse(&segment, SRC, DST).unwrap();
        assert_eq!(parsed.mss, None);
        let opts: Vec<_> = segment.options().collect::<Result<_>>().unwrap();
        assert_eq!(opts[0], TcpOption::Unknown { kind: 8, len: 10 });
    }

    #[test]
    fn flags_display_and_ops() {
        let flags = TcpFlags::SYN | TcpFlags::ACK;
        assert!(flags.contains(TcpFlags::SYN));
        assert!(flags.contains(TcpFlags::ACK));
        assert!(!flags.contains(TcpFlags::FIN));
        assert!(flags.intersects(TcpFlags::SYN | TcpFlags::FIN));
        assert_eq!(flags.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn segment_len_counts_syn_fin() {
        let mut repr = sample_repr();
        assert_eq!(repr.segment_len(100), 100);
        repr.flags = TcpFlags::SYN;
        assert_eq!(repr.segment_len(0), 1);
        repr.flags = TcpFlags::FIN | TcpFlags::ACK;
        assert_eq!(repr.segment_len(5), 6);
        repr.flags = TcpFlags::SYN | TcpFlags::FIN;
        assert_eq!(repr.segment_len(0), 2);
    }

    #[test]
    fn prop_roundtrip() {
        check("tcp_prop_roundtrip", |rng| {
            let repr = TcpRepr {
                src_port: rng.u64_in(1, 65_536) as u16,
                dst_port: rng.u64_in(1, 65_536) as u16,
                seq: rng.u32(),
                ack: rng.u32(),
                flags: TcpFlags::from_bits(rng.u16_in(0, 0x200)),
                window: rng.u16(),
                mss: rng.option(|r| r.u16_in(536, 9000)),
                window_scale: rng.option(|r| r.u8_in(0, 15)),
            };
            let payload = rng.bytes(0, 256);
            let buf = emit_to_vec(&repr, &payload);
            let segment = TcpSegment::new_checked(&buf[..]).unwrap();
            let parsed = TcpRepr::parse(&segment, SRC, DST).unwrap();
            assert_eq!(parsed, repr);
            assert_eq!(segment.payload(), &payload[..]);
        });
    }

    #[test]
    fn prop_no_panic_on_garbage() {
        check("tcp_prop_no_panic_on_garbage", |rng| {
            let data = rng.bytes(0, 128);
            if let Ok(segment) = TcpSegment::new_checked(&data[..]) {
                let _ = TcpRepr::parse(&segment, SRC, DST);
                // Option iteration must terminate and never panic.
                for _ in segment.options().take(64) {}
            }
        });
    }

    /// Any single-bit corruption of an emitted segment is rejected.
    #[test]
    fn prop_bit_flip_detected() {
        check("tcp_prop_bit_flip_detected", |rng| {
            let payload = rng.bytes(0, 64);
            let byte = rng.usize_in(0, 64);
            let bit = rng.u8_in(0, 8);
            let repr = sample_repr();
            let mut buf = emit_to_vec(&repr, &payload);
            let idx = byte % buf.len();
            buf[idx] ^= 1 << bit;
            let result =
                TcpSegment::new_checked(&buf[..]).and_then(|s| TcpRepr::parse(&s, SRC, DST));
            assert!(result.is_err());
        });
    }
}
