//! §2 — The TPC/A benchmark's communications model.
//!
//! TPC/A simulates bank tellers entering transactions. What matters to the
//! demultiplexer is only the *traffic shape*, which the benchmark pins
//! down precisely:
//!
//! * at least **10 users per TPS** (a 200-TPS run has ≥ 2,000 users);
//! * each user cycles: enter transaction → wait for the response → think;
//! * think time is drawn from a truncated negative-exponential
//!   distribution with mean ≥ 10 s and truncation point ≥ 10× the mean;
//! * each transaction costs the server exactly **two received packets**
//!   (the query and the transport-level ack of the response) and two sent
//!   packets (the query's ack and the response).
//!
//! The paper models the think time as an untruncated exponential; this
//! module quantifies why that is safe (the neglected tail is 0.0045 % of
//! the values and < 0.05 % of the total think time).

/// Per-user transaction rate `a` implied by the 10-users-per-TPS scaling
/// rule: 0.1 transactions per second (one per 10 s think time).
pub const TXN_RATE_PER_USER: f64 = 0.1;

/// The TPC/A scaling minimum: users per TPS.
pub const USERS_PER_TPS: f64 = 10.0;

/// Default mean think time in seconds.
pub const MEAN_THINK_TIME: f64 = 10.0;

/// Truncation point of the think-time distribution, as a multiple of the
/// mean.
pub const TRUNCATION_MULTIPLE: f64 = 10.0;

/// Packets *received by the server* per transaction: the query and the
/// transport-level acknowledgement of the response.
pub const SERVER_RX_PACKETS_PER_TXN: f64 = 2.0;

/// A TPC/A benchmark configuration, from the demultiplexer's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpcaConfig {
    /// Number of simulated users (= TCP connections at the server).
    pub users: u32,
    /// Response time `R` in seconds (transaction entry to response).
    pub response_time: f64,
    /// Network round-trip time `D` in seconds.
    pub round_trip: f64,
}

impl TpcaConfig {
    /// The paper's running example: a 200-TPS benchmark — 2,000 users,
    /// 200 ms response time, 10 ms round trip.
    pub fn paper_default() -> Self {
        Self {
            users: 2000,
            response_time: 0.2,
            round_trip: 0.01,
        }
    }

    /// Construct from a transaction rate using the minimum-users rule.
    pub fn from_tps(tps: f64, response_time: f64, round_trip: f64) -> Self {
        Self {
            users: (tps * USERS_PER_TPS).ceil() as u32,
            response_time,
            round_trip,
        }
    }

    /// The transaction rate this configuration sustains (TPS).
    pub fn tps(&self) -> f64 {
        f64::from(self.users) / USERS_PER_TPS
    }

    /// Aggregate packet arrival rate at the server (packets/second).
    pub fn server_rx_rate(&self) -> f64 {
        self.tps() * SERVER_RX_PACKETS_PER_TXN
    }

    /// Whether the configuration satisfies the TPC/A validity rules used
    /// in the paper's analysis (≥ 10 users/TPS, response time ≤ 2 s).
    pub fn is_valid(&self) -> bool {
        self.response_time > 0.0 && self.response_time <= 2.0 && self.users >= 1
    }
}

/// Fraction of think-time draws that exceed the truncation point and are
/// therefore "neglected" by the untruncated model: `e^{−10}` ≈ 0.0045 %.
pub fn neglected_fraction() -> f64 {
    (-TRUNCATION_MULTIPLE).exp()
}

/// Fraction of the *total think time* carried by the neglected tail:
/// `∫_{10m}^∞ t·(1/m)e^{−t/m} dt / m = 11·e^{−10}` ≈ 0.05 %, comfortably
/// under the paper's "less than 0.4 %" bound.
pub fn neglected_time_fraction() -> f64 {
    (TRUNCATION_MULTIPLE + 1.0) * (-TRUNCATION_MULTIPLE).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_200_tps() {
        let cfg = TpcaConfig::paper_default();
        assert_eq!(cfg.users, 2000);
        assert!((cfg.tps() - 200.0).abs() < 1e-12);
        assert!((cfg.server_rx_rate() - 400.0).abs() < 1e-12);
        assert!(cfg.is_valid());
    }

    #[test]
    fn from_tps_applies_scaling_rule() {
        let cfg = TpcaConfig::from_tps(200.0, 0.2, 0.01);
        assert_eq!(cfg.users, 2000);
        let cfg = TpcaConfig::from_tps(12.5, 0.5, 0.001);
        assert_eq!(cfg.users, 125);
    }

    #[test]
    fn validity_rules() {
        let mut cfg = TpcaConfig::paper_default();
        cfg.response_time = 2.0;
        assert!(cfg.is_valid());
        cfg.response_time = 2.5; // over the 90th-percentile limit
        assert!(!cfg.is_valid());
        cfg.response_time = 0.0;
        assert!(!cfg.is_valid());
    }

    #[test]
    fn truncation_is_negligible_as_the_paper_claims() {
        // "only 0.004% of the values are neglected on average"
        let frac = neglected_fraction();
        assert!((3.0e-5..6.0e-5).contains(&frac), "{frac}");
        // "...and they sum to less than 0.4% of the total think time"
        let time_frac = neglected_time_fraction();
        assert!(time_frac < 0.004, "{time_frac}");
        assert!(time_frac > 0.0);
    }

    #[test]
    fn txn_rate_is_inverse_mean_think_time() {
        assert!((TXN_RATE_PER_USER - 1.0 / MEAN_THINK_TIME).abs() < 1e-12);
    }
}
