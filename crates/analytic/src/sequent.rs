//! §3.4 — The Sequent algorithm: Equations 18–22.
//!
//! With `H` hash chains each holding `N/H` PCBs on average and carrying a
//! one-entry cache, a cache hit costs one probe and a miss costs one probe
//! plus an average `(N/H + 1)/2` chain scan.
//!
//! The naive model (Eqs. 18–19) treats every packet like a memoryless
//! transaction arrival:
//!
//! ```text
//! C'(N,H) = 1 + (N−H)/N · (N/H + 1)/2 = C_BSD(N/H)
//! ```
//!
//! The refined model observes that the response-time interval is often
//! *quiet on the target's chain* — with probability (Eq. 20)
//! `p = e^{−2aR(N/H − 1)}` no other packet hashes there — in which case
//! the acknowledgement is a guaranteed cache hit (Eq. 21). Half the
//! packets are acknowledgements, so (Eq. 22):
//!
//! ```text
//! C(N,H,R) = ½·C'(N,H) + ½·[p + (1−p)·(N/H + 1)/2]
//! ```
//!
//! **Accounting note.** Equation 21 as printed charges a missing
//! acknowledgement `(N/H+1)/2` *without* the extra cache probe that
//! Equation 18 charges transaction misses; reproducing the paper's
//! reported 53.0 requires following that convention, which we do (the
//! difference is under 1 % at the paper's scale).

use crate::tpca::TXN_RATE_PER_USER as A;

/// Per-chain occupancy `N/H`.
fn per_chain(n: f64, h: f64) -> f64 {
    assert!(
        n >= 1.0 && h >= 1.0 && h <= n,
        "need 1 ≤ H ≤ N (n={n}, h={h})"
    );
    n / h
}

/// Equations 18–19: the naive cost model — BSD applied to a chain of
/// `N/H` PCBs.
pub fn naive_cost(n: f64, h: f64) -> f64 {
    let m = per_chain(n, h);
    1.0 + (n - h) / n * (m + 1.0) / 2.0
}

/// The cache hit rate `H/N` ("just over 0.95 % given the installation
/// default of 19 hash chains" at 2,000 users).
pub fn hit_rate(n: f64, h: f64) -> f64 {
    per_chain(n, h).recip()
}

/// Equation 20: probability that no other packet arrives on the target's
/// chain during the response-time interval, leaving the cached PCB in
/// place for the acknowledgement.
pub fn quiet_probability(n: f64, h: f64, r: f64) -> f64 {
    assert!(r >= 0.0);
    (-2.0 * A * r * (per_chain(n, h) - 1.0)).exp()
}

/// Equation 21: expected PCBs examined by an acknowledgement packet.
pub fn ack_cost(n: f64, h: f64, r: f64) -> f64 {
    let p = quiet_probability(n, h, r);
    let m = per_chain(n, h);
    p + (1.0 - p) * (m + 1.0) / 2.0
}

/// Equation 22: the overall expected PCBs examined per received packet —
/// the mean of the transaction cost (Eq. 19) and the acknowledgement cost
/// (Eq. 21).
pub fn cost(n: f64, h: f64, r: f64) -> f64 {
    0.5 * (naive_cost(n, h) + ack_cost(n, h, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn paper_number_53_0() {
        // "This equation yields an average cost of a linear scan of 53.0
        // PCBs for a 200 TPC/A TPS benchmark with 19 hash chains and a
        // 200-millisecond response time."
        let got = cost(2000.0, 19.0, 0.2);
        assert!((got - 53.0).abs() < 0.1, "{got}");
    }

    #[test]
    fn paper_number_53_6_naive() {
        // "In contrast, Equation 19 predicts 53.6 for a little more than
        // 1% error."
        let got = naive_cost(2000.0, 19.0);
        assert!((got - 53.6).abs() < 0.1, "{got}");
        let err = (got - cost(2000.0, 19.0, 0.2)) / cost(2000.0, 19.0, 0.2);
        assert!((0.01..0.02).contains(&err), "error {err}");
    }

    #[test]
    fn paper_number_hit_rate() {
        // "The hit rate for the PCB cache is H/N ... just over 0.95%."
        let rate = hit_rate(2000.0, 19.0);
        assert!((rate - 0.0095).abs() < 0.0001, "{rate}");
    }

    #[test]
    fn paper_quiet_probabilities() {
        // "This probability is about 1.5% for a 2000-user benchmark with a
        // 200-millisecond response time and 19 hash chains."
        let p19 = quiet_probability(2000.0, 19.0, 0.2);
        assert!((p19 - 0.015).abs() < 0.001, "{p19}");
        // "if the number of hash chains is increased to 51, the
        // probability increases to almost 21%."
        let p51 = quiet_probability(2000.0, 51.0, 0.2);
        assert!((0.20..0.22).contains(&p51), "{p51}");
    }

    #[test]
    fn paper_number_h100_under_9() {
        // §3.5: "if the number of hash chains ... is increased from 19 to
        // 100, the average number of PCBs searched drops from 53 to less
        // than 9."
        let c = cost(2000.0, 100.0, 0.2);
        assert!(c < 9.0, "{c}");
        assert!(c > 5.0, "{c}");
    }

    #[test]
    fn error_grows_with_more_chains() {
        // "The error ... exceed[s] 10% if 51 hash chains are substituted."
        let naive = naive_cost(2000.0, 51.0);
        let exact = cost(2000.0, 51.0, 0.2);
        let err = (naive - exact) / exact;
        assert!(err > 0.10, "error {err}");
    }

    #[test]
    fn h_equals_one_is_bsd() {
        // Equation 19 with H = 1 must be exactly Equation 1.
        for n in [2.0, 100.0, 2000.0, 10_000.0] {
            let seq = naive_cost(n, 1.0);
            let bsd = crate::bsd::cost(n);
            assert!((seq - bsd).abs() < 1e-9, "n={n}: {seq} vs {bsd}");
        }
    }

    #[test]
    fn order_of_magnitude_better_than_alternatives() {
        // The paper's headline comparison at N = 2,000, R = 0.2 s, D = 1 ms.
        let seq = cost(2000.0, 19.0, 0.2);
        let bsd = crate::bsd::cost(2000.0);
        let mtf = crate::mtf::average_cost(2000.0, 0.2);
        let sr = crate::srcache::cost(2000.0, 0.2, 0.001);
        assert!(bsd / seq > 10.0, "vs BSD: {}", bsd / seq);
        assert!(mtf / seq > 10.0, "vs MTF: {}", mtf / seq);
        assert!(sr / seq > 10.0, "vs SR: {}", sr / seq);
    }

    #[test]
    fn naive_approaches_n_over_2h() {
        // "approaching N/2H for large N."
        let n = 1.0e6;
        let h = 19.0;
        let ratio = naive_cost(n, h) / (n / (2.0 * h));
        assert!((ratio - 1.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn ack_cost_limits() {
        // As the chain empties (H → N) every ack hits the cache.
        assert!((ack_cost(2000.0, 2000.0, 0.2) - 1.0).abs() < 1e-9);
        // As R → 0 the quiet probability → 1: guaranteed hit.
        assert!((ack_cost(2000.0, 19.0, 0.0) - 1.0).abs() < 1e-9);
    }

    /// More chains never cost more (for fixed N, R).
    #[test]
    fn prop_monotone_in_h() {
        check("sequent_prop_monotone_in_h", |rng| {
            let h = 1.0 + rng.f64() * 998.0;
            let dh = 1.0 + rng.f64() * 99.0;
            let n = 2000.0;
            assert!(cost(n, h + dh, 0.2) <= cost(n, h, 0.2) + 1e-9);
        });
    }

    /// Refined cost never exceeds the naive cost (the quiet interval
    /// can only help), and both are at least 1.
    #[test]
    fn prop_refined_bounded_by_naive() {
        check("sequent_prop_refined_bounded_by_naive", |rng| {
            let n = 19.0 + rng.f64() * (20_000.0 - 19.0);
            let r = rng.f64() * 2.0;
            let h = 19.0;
            let refined = cost(n, h, r);
            let naive = naive_cost(n, h);
            assert!(refined <= naive + 1e-9);
            assert!(refined >= 1.0 - 1e-9);
        });
    }
}
