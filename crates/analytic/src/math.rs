//! Numerical machinery: adaptive quadrature and stable binomial sums.
//!
//! The paper's Equations 3, 5 and 6 involve sums of the form
//! `Σ i·C(n,i)·pⁱ·(1−p)^(n−i)` with `n` up to 10,000 — far beyond what
//! naive binomial coefficients can represent — and integrals over
//! `[0, ∞)`. This module provides:
//!
//! * [`binomial_mean_literal`]: the literal weighted sum, computed by
//!   iterating the binomial pmf in log space (no coefficient ever
//!   materializes), used to validate the `n·p` closed form.
//! * [`integrate`]: adaptive Simpson quadrature with error control.
//! * [`integrate_exp_tail`]: integrals of `a·e^{−aT}·g(T)` over `[lo, ∞)`
//!   via the substitution `u = e^{−aT}`, which maps the infinite tail onto
//!   a finite interval exactly.

/// The binomial probability mass function `C(n,i) pⁱ (1−p)^{n−i}`,
/// computed in log space. `i ≤ n` required.
pub fn binomial_pmf(n: u64, i: u64, p: f64) -> f64 {
    assert!(i <= n, "i={i} > n={n}");
    if p <= 0.0 {
        return if i == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if i == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, i) + i as f64 * p.ln() + (n - i) as f64 * (-p).ln_1p();
    ln.exp()
}

/// `ln C(n, k)` via the log-gamma function.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9 coefficients; |relative error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The literal weighted sum `Σ_{i=0}^{n} i · C(n,i) pⁱ (1−p)^{n−i}`
/// — the paper's Equation 3 with `n = N−1` — computed stably by iterating
/// the pmf with the ratio recurrence. Mathematically equal to `n·p`.
pub fn binomial_mean_literal(n: u64, p: f64) -> f64 {
    if n == 0 || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return n as f64;
    }
    // pmf(0) in log space, then pmf(i+1)/pmf(i) = (n−i)/(i+1) · p/(1−p).
    let ratio = p / (1.0 - p);
    let mut ln_pmf = n as f64 * (-p).ln_1p();
    let mut sum = 0.0;
    let mut pmf = ln_pmf.exp();
    for i in 0..=n {
        sum += i as f64 * pmf;
        if i < n {
            let step = ((n - i) as f64 / (i + 1) as f64) * ratio;
            ln_pmf += step.ln();
            pmf = ln_pmf.exp();
        }
    }
    sum
}

/// Adaptive Simpson quadrature of `f` over `[lo, hi]` to absolute
/// tolerance `tol`.
pub fn integrate<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> f64 {
    assert!(hi >= lo, "inverted interval [{lo}, {hi}]");
    assert!(tol > 0.0);
    if lo == hi {
        return 0.0;
    }
    let mid = 0.5 * (lo + hi);
    let flo = f(lo);
    let fmid = f(mid);
    let fhi = f(hi);
    let whole = simpson(lo, hi, flo, fmid, fhi);
    adaptive(&f, lo, hi, flo, fmid, fhi, whole, tol, 50)
}

fn simpson(lo: f64, hi: f64, flo: f64, fmid: f64, fhi: f64) -> f64 {
    (hi - lo) / 6.0 * (flo + 4.0 * fmid + fhi)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    lo: f64,
    hi: f64,
    flo: f64,
    fmid: f64,
    fhi: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let mid = 0.5 * (lo + hi);
    let lmid = 0.5 * (lo + mid);
    let rmid = 0.5 * (mid + hi);
    let flmid = f(lmid);
    let frmid = f(rmid);
    let left = simpson(lo, mid, flo, flmid, fmid);
    let right = simpson(mid, hi, fmid, frmid, fhi);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive(f, lo, mid, flo, flmid, fmid, left, tol / 2.0, depth - 1)
            + adaptive(f, mid, hi, fmid, frmid, fhi, right, tol / 2.0, depth - 1)
    }
}

/// Integrate `a·e^{−aT}·g(T)` over `[lo, ∞)` exactly as a finite integral
/// via `u = e^{−aT}`:
///
/// ```text
/// ∫_lo^∞ a e^{−aT} g(T) dT  =  ∫_0^{e^{−a·lo}} g(−ln u / a) du
/// ```
///
/// `g` must be bounded on the tail for this to converge (all the paper's
/// integrands are: they are probabilities scaled by PCB counts).
pub fn integrate_exp_tail<G: Fn(f64) -> f64>(g: G, a: f64, lo: f64, tol: f64) -> f64 {
    assert!(a > 0.0);
    let hi_u = (-a * lo).exp();
    // Avoid evaluating g at T = ∞ (u = 0): nudge the lower bound. The
    // integrand's contribution below u = 1e-300 is negligible for bounded g.
    integrate(|u| g(-(u.ln()) / a), 1e-300, hi_u, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        let half = core::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - half).abs() < 1e-11);
        // Γ(171) is near the f64 overflow limit but ln Γ is fine.
        assert!(ln_gamma(171.0).is_finite());
        assert!(ln_gamma(2000.0).is_finite());
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 0)).abs() < 1e-10);
        assert!((ln_choose(10, 10)).abs() < 1e-10);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (100, 0.01), (1999, 0.5), (1999, 0.999)] {
            let total: f64 = (0..=n).map(|i| binomial_pmf(n, i, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn binomial_pmf_edge_probabilities() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 9, 1.0), 0.0);
    }

    #[test]
    fn binomial_mean_matches_np_at_paper_scale() {
        // Equation 3's simplification N(T) = (N−1)(1−e^{−aT}), checked at
        // the paper's N = 2,000 and at the Figure 13 extreme N = 10,000.
        for &(n, p) in &[
            (1999u64, 0.01),
            (1999, 0.3950),
            (1999, 0.9),
            (9999, 0.5),
            (0, 0.5),
            (1, 0.25),
        ] {
            let literal = binomial_mean_literal(n, p);
            let closed = n as f64 * p;
            let tol = 1e-8 * closed.max(1.0);
            assert!(
                (literal - closed).abs() < tol,
                "n={n} p={p}: literal {literal} vs np {closed}"
            );
        }
    }

    #[test]
    fn integrate_polynomial_exact() {
        // Simpson is exact for cubics.
        let got = integrate(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        let want = 4.0 - 4.0 + 2.0; // x⁴/4 − x² + x on [0,2]
        assert!((got - want).abs() < 1e-10, "{got}");
    }

    #[test]
    fn integrate_transcendental() {
        let got = integrate(f64::sin, 0.0, core::f64::consts::PI, 1e-12);
        assert!((got - 2.0).abs() < 1e-9, "{got}");
        let got = integrate(|x| (-x).exp(), 0.0, 30.0, 1e-12);
        assert!((got - 1.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn integrate_zero_width() {
        assert_eq!(integrate(|x| x, 3.0, 3.0, 1e-9), 0.0);
    }

    #[test]
    fn exp_tail_total_mass() {
        // ∫_0^∞ a e^{−aT} dT = 1 for any a.
        for &a in &[0.1, 1.0, 10.0] {
            let got = integrate_exp_tail(|_| 1.0, a, 0.0, 1e-12);
            assert!((got - 1.0).abs() < 1e-9, "a={a}: {got}");
        }
    }

    #[test]
    fn exp_tail_from_offset() {
        // ∫_R^∞ a e^{−aT} dT = e^{−aR}.
        let a = 0.1;
        let r = 0.2;
        let got = integrate_exp_tail(|_| 1.0, a, r, 1e-12);
        assert!((got - (-a * r).exp()).abs() < 1e-9, "{got}");
    }

    #[test]
    fn exp_tail_mean_of_exponential() {
        // ∫_0^∞ a e^{−aT} · T dT = 1/a.
        let a = 0.1;
        let got = integrate_exp_tail(|t| t, a, 0.0, 1e-10);
        assert!((got - 10.0).abs() < 1e-5, "{got}");
    }

    #[test]
    fn prop_binomial_mean_equals_np() {
        check("math_prop_binomial_mean_equals_np", |rng| {
            let n = rng.below(3000);
            let p = rng.f64();
            let literal = binomial_mean_literal(n, p);
            let closed = n as f64 * p;
            assert!(
                (literal - closed).abs() < 1e-7 * closed.max(1.0),
                "literal {} vs np {}",
                literal,
                closed
            );
        });
    }

    #[test]
    fn prop_pmf_nonnegative_and_bounded() {
        check("math_prop_pmf_nonnegative_and_bounded", |rng| {
            let n = rng.below(500);
            let i = rng.below(500);
            let p = rng.f64();
            if i > n {
                return; // analogue of prop_assume!
            }
            let v = binomial_pmf(n, i, p);
            assert!((0.0..=1.0 + 1e-12).contains(&v), "{}", v);
        });
    }

    #[test]
    fn prop_integral_linearity() {
        check("math_prop_integral_linearity", |rng| {
            let c = -10.0 + rng.f64() * 20.0;
            let hi = 0.1 + rng.f64() * 19.9;
            let base = integrate(|x| x.cos(), 0.0, hi, 1e-10);
            let scaled = integrate(|x| c * x.cos(), 0.0, hi, 1e-10);
            assert!((scaled - c * base).abs() < 1e-6 * (1.0 + c.abs()));
        });
    }
}
