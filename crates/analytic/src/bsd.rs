//! §3.1 — The BSD algorithm's cost model.
//!
//! One linear list of `N` PCBs with a one-entry cache. Under TPC/A traffic
//! every user is equally likely to produce the next packet (the
//! memorylessness argument of §3), so the cache hits with probability
//! `1/N`; a miss probes the cache and then scans an average of `(N+1)/2`
//! list entries. Equation 1:
//!
//! ```text
//! C_BSD(N) = 1 + (N² − 1) / 2N
//! ```

use crate::tpca::TXN_RATE_PER_USER;

/// Equation 1: expected PCBs examined per packet.
///
/// `n` is the number of connections; must be ≥ 1.
pub fn cost(n: f64) -> f64 {
    assert!(n >= 1.0, "need at least one connection, got {n}");
    1.0 + (n * n - 1.0) / (2.0 * n)
}

/// The cache hit rate `1/N` ("0.05 % for a 200 TPC/A TPS benchmark").
pub fn hit_rate(n: f64) -> f64 {
    assert!(n >= 1.0);
    1.0 / n
}

/// The average cost of a miss alone: one cache probe plus half the list.
pub fn miss_cost(n: f64) -> f64 {
    assert!(n >= 1.0);
    1.0 + (n + 1.0) / 2.0
}

/// Footnote 4: the probability that the transaction-entry packet and the
/// transport-level ack of the response form a packet train — i.e. that
/// *no* other user's packet arrives at the server during the response
/// interval `r`.
///
/// Each of the other `n − 1` users delivers server packets at rate `2a`
/// (query + response-ack), so:
///
/// ```text
/// P(train) = e^{−2aR(N−1)}
/// ```
///
/// For `N = 2000`, `R = 0.2 s` this is ≈ 1.9×10⁻³⁵. (The scanned paper
/// text reads "1.9 × 10⁻³", but the footnote's own arithmetic — "96%
/// probability that any given user will not offer a \[packet\]" and "the
/// probability that none of the 1,999 other users will [do so] is indeed
/// remote" — gives 0.96^1999 ≈ 1.9×10⁻³⁵; the exponent was truncated in
/// reproduction.)
pub fn train_probability(n: f64, r: f64) -> f64 {
    assert!(n >= 1.0 && r >= 0.0);
    (-2.0 * TXN_RATE_PER_USER * r * (n - 1.0)).exp()
}

/// Per-user probability of offering no packet during an interval of
/// length `r` (the footnote's "96 %").
pub fn per_user_quiet_probability(r: f64) -> f64 {
    (-2.0 * TXN_RATE_PER_USER * r).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_number_1001_pcbs() {
        // "This equation yields an average cost of a linear scan of 1,001
        // PCBs for a 200 TPC/A TPS benchmark."
        let c = cost(2000.0);
        assert!((c - 1001.0).abs() < 0.01, "{c}");
    }

    #[test]
    fn paper_number_hit_rate() {
        // "The hit rate for the PCB cache is 1/N, which is 0.05%."
        assert!((hit_rate(2000.0) - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn cost_approaches_half_n() {
        // "approaching N/2 for large N".
        for n in [1000.0, 10_000.0, 100_000.0] {
            let ratio = cost(n) / (n / 2.0);
            assert!((ratio - 1.0).abs() < 0.01, "n={n} ratio={ratio}");
        }
    }

    #[test]
    fn single_connection_costs_one() {
        // With one connection the cache always hits: cost exactly 1.
        assert!((cost(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_cost_dominates() {
        // "Since this is exactly the cost of a miss to three places, the
        // cache is clearly providing little help."
        let n = 2000.0;
        // cost = 1001.00, miss cost = 1001.50: equal "to three places"
        // in the paper's sense of three significant figures.
        assert!((cost(n) - miss_cost(n)).abs() / miss_cost(n) < 1e-3);
    }

    #[test]
    fn footnote_four_quiet_probability() {
        // "96% probability that any given user will not offer a
        // transaction or ... acknowledgement during a given
        // 200-millisecond interval".
        let p = per_user_quiet_probability(0.2);
        assert!((p - 0.96).abs() < 0.002, "{p}");
    }

    #[test]
    fn train_probability_is_remote() {
        let p = train_probability(2000.0, 0.2);
        assert!((1.0e-35..3.0e-35).contains(&p), "{p}");
        // Shorter response times make trains likelier.
        assert!(train_probability(2000.0, 0.01) > p);
        // Two connections with a fast response: trains dominate.
        assert!(train_probability(2.0, 0.01) > 0.99);
    }

    #[test]
    fn cost_is_monotonic_in_n() {
        let mut prev = cost(1.0);
        for n in 2..200 {
            let c = cost(f64::from(n));
            assert!(c > prev);
            prev = c;
        }
    }
}
