//! §3.3 — Partridge & Pink's last-sent/last-received cache: Equations 7–17.
//!
//! Three mutually exclusive packet classes are analyzed, each with its own
//! probability that the target user's cache entries survived the interval
//! since his last packet:
//!
//! * **Case 1** (`T > R + D`, Eq. 8–11): a long think time gives the other
//!   `N − 1` users a window of `T + R + D` to flush both caches;
//!   `p₁ = e^{−a(T+R+D)(N−1)}`.
//! * **Case 2** (`T ≤ R + D`, Eq. 12–14): the window is `2T`;
//!   `p₂ = e^{−2aT(N−1)}`.
//! * **Case 3** (acknowledgements, Eq. 15–16): two windows of length `D`;
//!   `p_a = e^{−2aD(N−1)}`.
//!
//! A surviving cache costs one probe; a flush costs `(N+5)/2` (two cache
//! probes plus the average `(N+1)/2` scan). Integrating over the
//! exponential think time (Eqs. 10 and 13):
//!
//! ```text
//! N₁ = (N+5)/2·e^{−a(R+D)} − (N+3)/(2N)·e^{−a(R+D)(2N−1)}
//! N₂ = (N+5)/2·(1−e^{−a(R+D)}) − (N+3)/(2(2N−1))·(1−e^{−a(R+D)(2N−1)})
//! N_a = (N+5)/2 − (N+3)/2·e^{−2aD(N−1)}
//! ```
//!
//! and the per-packet average (Eq. 7) is `(N₁ + N₂ + N_a)/2`.
//!
//! **Transcription note.** Equation 11 as printed in the scanned paper
//! shows the second coefficient as `(N+3)/aN`; integrating Eq. 10 gives
//! `(N+3)/(2N)` (the `a` of the density cancels against the `1/(aN)` of
//! the antiderivative, leaving no stray `a`). Our form reproduces the
//! paper's reported row — 667/993/1002 PCBs for D = 1/10/100 ms — so the
//! printed `aN` is an OCR artifact of `2N`.

use crate::math::{integrate, integrate_exp_tail};
use crate::tpca::TXN_RATE_PER_USER as A;

/// Equation 8: probability that the target's cache entries survive a
/// think time `t > r + d`.
pub fn p1(n: f64, t: f64, r: f64, d: f64) -> f64 {
    (-A * (t + r + d) * (n - 1.0)).exp()
}

/// Equation 12: survival probability for `t ≤ r + d`.
pub fn p2(n: f64, t: f64) -> f64 {
    (-2.0 * A * t * (n - 1.0)).exp()
}

/// Equation 15: survival probability for the acknowledgement's send-cache
/// entry.
pub fn pa(n: f64, d: f64) -> f64 {
    (-2.0 * A * d * (n - 1.0)).exp()
}

/// The full-miss penalty `(N+5)/2`: both caches plus the average scan.
pub fn miss_penalty(n: f64) -> f64 {
    (n + 5.0) / 2.0
}

/// Equation 11 (closed form, re-derived; see module docs): expected PCBs
/// examined for transaction arrivals with `T > R + D`.
pub fn n1(n: f64, r: f64, d: f64) -> f64 {
    assert!(n >= 1.0 && r >= 0.0 && d >= 0.0);
    let x = A * (r + d);
    (n + 5.0) / 2.0 * (-x).exp() - (n + 3.0) / (2.0 * n) * (-x * (2.0 * n - 1.0)).exp()
}

/// Equation 10 evaluated by quadrature (the literal integral), to validate
/// [`n1`].
pub fn n1_quadrature(n: f64, r: f64, d: f64) -> f64 {
    integrate_exp_tail(
        |t| {
            let p = p1(n, t, r, d);
            p + (1.0 - p) * miss_penalty(n)
        },
        A,
        r + d,
        1e-10,
    )
}

/// Equation 14: expected PCBs examined for transaction arrivals with
/// `T ≤ R + D`.
pub fn n2(n: f64, r: f64, d: f64) -> f64 {
    assert!(n >= 1.0 && r >= 0.0 && d >= 0.0);
    let x = A * (r + d);
    (n + 5.0) / 2.0 * (-(-x).exp_m1())
        - (n + 3.0) / (2.0 * (2.0 * n - 1.0)) * (-(-x * (2.0 * n - 1.0)).exp_m1())
}

/// Equation 13 evaluated by quadrature, to validate [`n2`].
pub fn n2_quadrature(n: f64, r: f64, d: f64) -> f64 {
    integrate(
        |t| {
            let p = p2(n, t);
            A * (-A * t).exp() * (p + (1.0 - p) * miss_penalty(n))
        },
        0.0,
        r + d,
        1e-10,
    )
}

/// Equation 16: expected PCBs examined for acknowledgement arrivals.
pub fn na(n: f64, d: f64) -> f64 {
    assert!(n >= 1.0 && d >= 0.0);
    (n + 5.0) / 2.0 - (n + 3.0) / 2.0 * pa(n, d)
}

/// Equations 7 and 17: the overall expected PCBs examined per received
/// packet — half the packets are transactions (cases 1 and 2 combined),
/// half are acknowledgements.
pub fn cost(n: f64, r: f64, d: f64) -> f64 {
    0.5 * (n1(n, r, d) + n2(n, r, d) + na(n, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn paper_row_667_993_1002() {
        // "Solving this numerically for 2,000 users and round-trip delays
        // of 1, 10, and 100 milliseconds gives average search lengths of
        // 667, 993, and 1002 PCBs, respectively." (R = 0.2 s.)
        for (d, expected) in [(0.001, 667.0), (0.01, 993.0), (0.1, 1002.0)] {
            let got = cost(2000.0, 0.2, d);
            assert!(
                (got - expected).abs() < 1.0,
                "D={d}: got {got}, paper {expected}"
            );
        }
    }

    #[test]
    fn insensitive_to_response_time_at_large_n() {
        // "The algorithm is extremely insensitive to the value of R for
        // large values of N."
        let base = cost(2000.0, 0.2, 0.01);
        for r in [0.5, 1.0, 2.0] {
            let c = cost(2000.0, r, 0.01);
            assert!((c - base).abs() / base < 0.02, "R={r}: {c} vs base {base}");
        }
    }

    #[test]
    fn approaches_miss_penalty_for_large_n() {
        // Equation 17 "approaches (N+5)/2 as N increases".
        let n = 50_000.0;
        let c = cost(n, 0.2, 0.01);
        assert!((c - miss_penalty(n)).abs() / miss_penalty(n) < 0.01, "{c}");
    }

    #[test]
    fn na_limits() {
        // As D → 0 (or N → 1) the acknowledgement cost approaches one
        // probe; as D grows it approaches the miss penalty.
        assert!((na(2000.0, 0.0) - 1.0).abs() < 1e-9);
        assert!((na(1.0, 5.0) - 1.0).abs() < 1e-9);
        let large_d = na(2000.0, 10.0);
        assert!((large_d - miss_penalty(2000.0)).abs() < 1e-6);
    }

    #[test]
    fn quadrature_validates_n1() {
        for n in [10.0, 200.0, 2000.0] {
            for (r, d) in [(0.2, 0.001), (0.5, 0.01), (2.0, 0.1)] {
                let closed = n1(n, r, d);
                let quad = n1_quadrature(n, r, d);
                assert!(
                    (closed - quad).abs() < 1e-4 * closed.abs().max(1.0),
                    "n={n} r={r} d={d}: {closed} vs {quad}"
                );
            }
        }
    }

    #[test]
    fn quadrature_validates_n2() {
        for n in [10.0, 200.0, 2000.0] {
            for (r, d) in [(0.2, 0.001), (0.5, 0.01), (2.0, 0.1)] {
                let closed = n2(n, r, d);
                let quad = n2_quadrature(n, r, d);
                assert!(
                    (closed - quad).abs() < 1e-4 * closed.abs().max(1.0),
                    "n={n} r={r} d={d}: {closed} vs {quad}"
                );
            }
        }
    }

    #[test]
    fn better_than_bsd_for_small_n() {
        // Figure 14's message: for small user counts the send/receive
        // cache clearly beats BSD...
        for n in [10.0, 50.0, 100.0] {
            assert!(cost(n, 0.2, 0.001) < crate::bsd::cost(n), "n={n}");
        }
    }

    #[test]
    fn asymptotically_approaches_bsd_for_large_n() {
        // ...and asymptotically approaches BSD's performance for large N
        // (Figure 13). At N = 10,000, D = 10 ms the two are within a few
        // percent.
        let n = 10_000.0;
        let sr = cost(n, 0.2, 0.01);
        let bsd = crate::bsd::cost(n);
        assert!((sr - bsd).abs() / bsd < 0.05, "sr={sr} bsd={bsd}");
    }

    #[test]
    fn survival_probabilities_are_probabilities() {
        for &t in &[0.0, 0.1, 10.0] {
            for &n in &[1.0, 2.0, 2000.0] {
                for &x in &[0.0, 0.01, 1.0] {
                    for p in [p1(n, t, 0.2, x), p2(n, t), pa(n, x)] {
                        assert!((0.0..=1.0).contains(&p));
                    }
                }
            }
        }
    }

    /// Cost increases with round-trip delay: more time for another
    /// user's packets to flush the caches.
    #[test]
    fn prop_monotone_in_d() {
        check("srcache_prop_monotone_in_d", |rng| {
            let d = rng.f64() * 0.2;
            let dd = 1e-4 + rng.f64() * (0.1 - 1e-4);
            let n = 2000.0;
            assert!(cost(n, 0.2, d + dd) >= cost(n, 0.2, d) - 1e-9);
        });
    }

    /// The average lies between 1 (all hits) and the miss penalty.
    #[test]
    fn prop_bounded() {
        check("srcache_prop_bounded", |rng| {
            let n = 2.0 + rng.f64() * (20_000.0 - 2.0);
            let r = 0.01 + rng.f64() * 1.99;
            let d = rng.f64() * 0.5;
            let c = cost(n, r, d);
            assert!(c >= 1.0 - 1e-9, "{}", c);
            assert!(c <= miss_penalty(n) + 1e-9, "{}", c);
        });
    }
}
