//! Analytic cost models for TCP demultiplexing under TPC/A traffic.
//!
//! This crate implements every equation in §3 of McKenney & Dove
//! (SIGCOMM 1992) — the expected number of PCBs examined per received
//! packet for each lookup algorithm — plus the numerical machinery needed
//! to evaluate them (stable binomial sums, adaptive quadrature).
//!
//! | Module | Paper section | Equations |
//! |--------|---------------|-----------|
//! | [`bsd`] | §3.1 | Eq. 1, footnote 4's packet-train probability |
//! | [`mtf`] | §3.2 | Eqs. 2–6 (Crowcroft's move-to-front) |
//! | [`srcache`] | §3.3 | Eqs. 7–17 (Partridge & Pink send/receive cache) |
//! | [`sequent`] | §3.4 | Eqs. 18–22 (hash chains with per-chain caches) |
//! | [`tpca`] | §2 | benchmark scaling rules and think-time model |
//! | [`figures`] | §3.5 | the data series behind Figures 4, 13 and 14 |
//!
//! Each model is written twice where the paper gives both forms: the
//! *literal* form (binomial sums, integrals evaluated by quadrature) and
//! the *closed* form we derive in the doc comments. Property tests confirm
//! the two agree, and regression tests pin the paper's reported numbers.
//!
//! # Units and symbols
//!
//! * `n` — number of TPC/A users = number of TCP connections (paper's `N`).
//! * `a` — per-user transaction rate; TPC/A fixes `a = 0.1/s`
//!   ([`tpca::TXN_RATE_PER_USER`]).
//! * `r` — response time in seconds (paper's `R`).
//! * `d` — network round-trip time in seconds (paper's `D`).
//! * `h` — number of hash chains (paper's `H`).
//!
//! All costs are in PCBs examined per received packet.
//!
//! # Example
//!
//! ```
//! use tcpdemux_analytic::{bsd, sequent};
//!
//! // The paper's 200-TPS TPC/A benchmark: 2,000 users.
//! let n = 2000.0;
//! assert!((bsd::cost(n) - 1001.0).abs() < 0.5); // "a linear scan of 1,001 PCBs"
//!
//! // The Sequent algorithm with the installation default of 19 chains
//! // and a 200 ms response time: "an average cost of ... 53.0 PCBs".
//! let c = sequent::cost(n, 19.0, 0.2);
//! assert!((c - 53.0).abs() < 0.1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bsd;
pub mod figures;
pub mod math;
pub mod mtf;
pub mod sequent;
pub mod srcache;
pub mod tpca;
