//! §3.2 — Crowcroft's move-to-front list: Equations 2–6.
//!
//! Under move-to-front, the cost of finding a PCB is the number of other
//! users whose packets arrived since that PCB was last found, because each
//! such arrival moved another PCB in front of it.
//!
//! # Derivations used here
//!
//! **Equation 3** is a binomial mean and collapses to a closed form:
//!
//! ```text
//! N(T) = Σ i·C(N−1,i)·F(T)ⁱ·(1−F(T))^{N−1−i} = (N−1)(1 − e^{−aT})
//! ```
//!
//! **Equation 5** (expected PCBs preceding a user's transaction entry)
//! then integrates in closed form. For think time `T < R` the preceding
//! count is `N(2T)`; for `T ≥ R` it is `N(T+R)`:
//!
//! ```text
//! E = ∫₀ᴿ a·e^{−aT}(N−1)(1−e^{−2aT}) dT + ∫ᴿ^∞ a·e^{−aT}(N−1)(1−e^{−a(T+R)}) dT
//!   = (N−1)·(2/3 − e^{−3aR}/6)
//! ```
//!
//! **Acknowledgement cost**: all transactions arriving in the response
//! interval produce preceding arrivals, so the count is `N(2R)`.
//!
//! **Equation 6** averages the two packet types.
//!
//! The quadrature and literal-binomial forms are retained alongside the
//! closed forms; tests pin them against each other and against the paper's
//! reported values (1,019/1,045/1,086/1,150 entry; 78/190/362/659 ack;
//! 549/618/724/904 average, at N = 2,000 and R = 0.2/0.5/1.0/2.0 s).
//!
//! Note on the unit: the paper reports the expected number of PCBs
//! *preceding* the target, which is one less than the number of PCBs
//! *examined* (the target itself is also compared). At the paper's scale
//! the difference is negligible; these functions report the paper's
//! quantity for direct comparability.

use crate::math::{binomial_mean_literal, integrate, integrate_exp_tail};
use crate::tpca::TXN_RATE_PER_USER as A;

/// Equation 2: probability that a given user enters at least one
/// transaction during an interval of length `t` — the exponential CDF
/// `F(t) = 1 − e^{−at}`.
pub fn f_cdf(t: f64) -> f64 {
    assert!(t >= 0.0);
    -(-A * t).exp_m1()
}

/// Equation 3, closed form: expected number of the other `n − 1` users
/// entering at least one transaction within time `t`:
/// `N(t) = (n−1)(1 − e^{−at})`.
pub fn expected_preceding(n: f64, t: f64) -> f64 {
    assert!(n >= 1.0);
    (n - 1.0) * f_cdf(t)
}

/// Equation 3, literal form: the binomial-weighted sum evaluated term by
/// term. Exists to validate the closed form (and the paper's Figure 4).
pub fn expected_preceding_literal(n: u64, t: f64) -> f64 {
    assert!(n >= 1);
    binomial_mean_literal(n - 1, f_cdf(t))
}

/// Equation 5, closed form: expected PCBs preceding a transaction-entry
/// packet's PCB.
pub fn entry_search_length(n: f64, r: f64) -> f64 {
    assert!(n >= 1.0 && r >= 0.0);
    (n - 1.0) * (2.0 / 3.0 - (-3.0 * A * r).exp() / 6.0)
}

/// Equation 5 evaluated by quadrature on the two literal integrals —
/// the form printed in the paper, with `N(·)` in closed form. Used to
/// validate [`entry_search_length`].
pub fn entry_search_length_quadrature(n: f64, r: f64) -> f64 {
    assert!(n >= 1.0 && r >= 0.0);
    let near = integrate(
        |t| A * (-A * t).exp() * expected_preceding(n, 2.0 * t),
        0.0,
        r,
        1e-10,
    );
    let far = integrate_exp_tail(|t| expected_preceding(n, t + r), A, r, 1e-10);
    near + far
}

/// Equation 5 in its fully literal form: the binomial sum evaluated term
/// by term *inside* the integrand, exactly as the paper prints it. Slow
/// (O(N) per integrand evaluation) — exists purely to certify that the
/// chain closed-form ⇐ quadrature ⇐ literal-sum holds end to end.
pub fn entry_search_length_literal(n: u64, r: f64) -> f64 {
    assert!(n >= 1 && r >= 0.0);
    let near = integrate(
        |t| A * (-A * t).exp() * expected_preceding_literal(n, 2.0 * t),
        0.0,
        r,
        1e-6,
    );
    let far = integrate_exp_tail(|t| expected_preceding_literal(n, t + r), A, r, 1e-6);
    near + far
}

/// Expected PCBs preceding the transport-level acknowledgement's PCB:
/// `N(2R)` (Figure 7's argument).
pub fn ack_search_length(n: f64, r: f64) -> f64 {
    expected_preceding(n, 2.0 * r)
}

/// Equation 6: overall average over the two server-received packet types
/// (transaction entry and response acknowledgement).
pub fn average_cost(n: f64, r: f64) -> f64 {
    0.5 * (entry_search_length(n, r) + ack_search_length(n, r))
}

/// The deterministic-think-time worst case the paper describes for
/// point-of-sale polling: every entry scans all `n` PCBs.
pub fn deterministic_worst_case(n: f64) -> f64 {
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    /// The paper's table of results at N = 2,000 for
    /// R = 0.2, 0.5, 1.0, 2.0 seconds.
    const PAPER_ROWS: [(f64, f64, f64, f64); 4] = [
        // (R, entry, ack, average)
        (0.2, 1019.0, 78.0, 549.0),
        (0.5, 1045.0, 190.0, 618.0),
        (1.0, 1086.0, 362.0, 724.0),
        (2.0, 1150.0, 659.0, 904.0),
    ];

    #[test]
    fn paper_entry_costs() {
        for (r, entry, _, _) in PAPER_ROWS {
            let got = entry_search_length(2000.0, r);
            assert!((got - entry).abs() < 1.0, "R={r}: got {got}, paper {entry}");
        }
    }

    #[test]
    fn paper_ack_costs() {
        for (r, _, ack, _) in PAPER_ROWS {
            let got = ack_search_length(2000.0, r);
            assert!((got - ack).abs() < 1.0, "R={r}: got {got}, paper {ack}");
        }
    }

    #[test]
    fn paper_average_costs() {
        for (r, _, _, avg) in PAPER_ROWS {
            let got = average_cost(2000.0, r);
            assert!((got - avg).abs() < 1.0, "R={r}: got {got}, paper {avg}");
        }
    }

    #[test]
    fn mtf_entry_worse_than_bsd_but_average_better() {
        // §3.2: entry "somewhat worse than the BSD algorithm's 1,001
        // PCBs"; overall "a significant improvement over ... 1,001".
        let bsd = crate::bsd::cost(2000.0);
        for (r, ..) in PAPER_ROWS {
            assert!(entry_search_length(2000.0, r) > bsd);
            assert!(average_cost(2000.0, r) < bsd);
        }
    }

    #[test]
    fn quadrature_matches_closed_form() {
        for n in [10.0, 200.0, 2000.0, 10_000.0] {
            for r in [0.0, 0.2, 1.0, 2.0] {
                let closed = entry_search_length(n, r);
                let quad = entry_search_length_quadrature(n, r);
                assert!(
                    (closed - quad).abs() < 1e-4 * closed.max(1.0),
                    "n={n} r={r}: closed {closed} vs quad {quad}"
                );
            }
        }
    }

    #[test]
    fn fully_literal_equation_5_matches_closed_form() {
        // closed form == quadrature-over-closed-N == quadrature-over-
        // literal-binomial-sum: the complete derivation chain, certified
        // numerically at a modest N (the literal form is O(N) per
        // integrand point).
        for (n, r) in [(50u64, 0.5), (200, 0.2), (200, 2.0)] {
            let closed = entry_search_length(n as f64, r);
            let literal = entry_search_length_literal(n, r);
            assert!(
                (closed - literal).abs() < 1e-3 * closed.max(1.0),
                "n={n} r={r}: closed {closed} vs literal {literal}"
            );
        }
    }

    #[test]
    fn literal_binomial_matches_closed_form() {
        // Figure 4's curve: N(T) for 2,000 users, T in [0, 50].
        for t in [0.0, 1.0, 5.0, 10.0, 25.0, 50.0] {
            let literal = expected_preceding_literal(2000, t);
            let closed = expected_preceding(2000.0, t);
            assert!(
                (literal - closed).abs() < 1e-6 * closed.max(1.0),
                "t={t}: {literal} vs {closed}"
            );
        }
    }

    #[test]
    fn figure_4_shape() {
        // N(0) = 0; N(T) rises steeply then saturates toward N−1 = 1999.
        assert_eq!(expected_preceding(2000.0, 0.0), 0.0);
        let at_10 = expected_preceding(2000.0, 10.0);
        assert!((at_10 - 1999.0 * (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        let at_50 = expected_preceding(2000.0, 50.0);
        assert!(at_50 > 1980.0 && at_50 < 1999.0, "{at_50}");
    }

    #[test]
    fn deterministic_worst_case_is_n() {
        assert_eq!(deterministic_worst_case(2000.0), 2000.0);
        // And it exceeds the TPC/A entry cost at every response time —
        // TPC/A "is not the worst case".
        for (r, ..) in PAPER_ROWS {
            assert!(entry_search_length(2000.0, r) < 2000.0);
        }
    }

    #[test]
    fn zero_response_time_limits() {
        // R → 0: entry cost → (N−1)/2 (half the users precede on
        // average), ack cost → 0.
        let entry = entry_search_length(2000.0, 0.0);
        assert!((entry - 1999.0 * 0.5).abs() < 1e-9, "{entry}");
        assert_eq!(ack_search_length(2000.0, 0.0), 0.0);
    }

    /// Entry cost increases with response time; ack cost too.
    #[test]
    fn prop_monotone_in_r() {
        check("mtf_prop_monotone_in_r", |rng| {
            let r1 = rng.f64() * 2.0;
            let dr = 0.001 + rng.f64() * 0.999;
            let n = 2000.0;
            assert!(entry_search_length(n, r1 + dr) > entry_search_length(n, r1));
            assert!(ack_search_length(n, r1 + dr) > ack_search_length(n, r1));
        });
    }

    /// Costs scale linearly in N−1.
    #[test]
    fn prop_linear_in_n() {
        check("mtf_prop_linear_in_n", |rng| {
            let n = 2.0 + rng.f64() * 9_998.0;
            let r = rng.f64() * 2.0;
            let unit = average_cost(2.0, r); // N−1 = 1
            let got = average_cost(n, r);
            assert!((got - unit * (n - 1.0)).abs() < 1e-6 * got.max(1.0));
        });
    }

    /// The average is always between the ack and entry costs.
    #[test]
    fn prop_average_bounded() {
        check("mtf_prop_average_bounded", |rng| {
            let n = 2.0 + rng.f64() * 9_998.0;
            let r = 0.001 + rng.f64() * 1.999;
            let avg = average_cost(n, r);
            let lo = ack_search_length(n, r).min(entry_search_length(n, r));
            let hi = ack_search_length(n, r).max(entry_search_length(n, r));
            assert!(avg >= lo && avg <= hi);
        });
    }
}
