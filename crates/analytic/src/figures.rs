//! The data series behind the paper's figures.
//!
//! Figure 4 plots Equation 3's `N(T)` for 2,000 users. Figures 13 and 14
//! plot the expected PCB search cost against the number of TPC/A
//! connections for every algorithm; Figure 14 is the same plot restricted
//! to 1,000 connections with one extra series (SR at 10 ms). These
//! functions return `(x, y)` series so the bench binaries, the regression
//! tests, and any plotting front end share one source of truth.

use crate::{bsd, mtf, sequent, srcache};

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, matching the paper's ("BSD", "MTF 1.0", "SR 1", …).
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Evaluate `f` over `xs`.
    pub fn from_fn(label: &str, xs: &[f64], f: impl Fn(f64) -> f64) -> Self {
        Series {
            label: label.to_string(),
            points: xs.iter().map(|&x| (x, f(x))).collect(),
        }
    }

    /// The y value at the largest x (used by shape tests).
    pub fn final_y(&self) -> f64 {
        self.points.last().map(|&(_, y)| y).unwrap_or(f64::NAN)
    }
}

/// Figure 4: `N(T)` for 2,000 TPC/A users, think time 0–50 s.
pub fn figure_4(steps: usize) -> Series {
    let xs = linspace(0.0, 50.0, steps);
    Series::from_fn("N(T) for 2,000 TPC/A users", &xs, |t| {
        mtf::expected_preceding(2000.0, t)
    })
}

/// The x grid shared by Figures 13 and 14: connection counts from
/// `lo` to `hi`. Counts below 2 are meaningless (no other users), so the
/// grid starts at 2.
pub fn connection_grid(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    linspace(lo.max(2.0), hi, steps)
}

/// Figure 13: cost vs. connections for N up to 10,000. Series, in the
/// paper's legend order: BSD, SR 1 (D = 1 ms), MTF 1.0, MTF 0.5, MTF 0.2,
/// SEQUENT (19 chains, R = 0.2 s).
pub fn figure_13(steps: usize) -> Vec<Series> {
    cost_series(connection_grid(2.0, 10_000.0, steps), false)
}

/// Figure 14: the detail view up to 1,000 connections, adding the
/// "SR 10" (D = 10 ms) series as the paper does.
pub fn figure_14(steps: usize) -> Vec<Series> {
    cost_series(connection_grid(2.0, 1_000.0, steps), true)
}

fn cost_series(xs: Vec<f64>, include_sr10: bool) -> Vec<Series> {
    let mut series = vec![
        Series::from_fn("BSD", &xs, bsd::cost),
        Series::from_fn("SR 1", &xs, |n| srcache::cost(n, 0.2, 0.001)),
    ];
    if include_sr10 {
        series.push(Series::from_fn("SR 10", &xs, |n| {
            srcache::cost(n, 0.2, 0.01)
        }));
    }
    series.extend([
        Series::from_fn("MTF 1.0", &xs, |n| mtf::average_cost(n, 1.0)),
        Series::from_fn("MTF 0.5", &xs, |n| mtf::average_cost(n, 0.5)),
        Series::from_fn("MTF 0.2", &xs, |n| mtf::average_cost(n, 0.2)),
        Series::from_fn("SEQUENT", &xs, |n| {
            // H cannot exceed N; tiny benchmarks fall back to fewer chains.
            sequent::cost(n, 19.0f64.min(n), 0.2)
        }),
    ]);
    series
}

fn linspace(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "need at least two points");
    let step = (hi - lo) / (steps - 1) as f64;
    (0..steps).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_label<'a>(series: &'a [Series], label: &str) -> &'a Series {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
    }

    #[test]
    fn figure_4_endpoints() {
        let fig = figure_4(101);
        assert_eq!(fig.points.len(), 101);
        assert_eq!(fig.points[0], (0.0, 0.0));
        let (x_last, y_last) = *fig.points.last().unwrap();
        assert_eq!(x_last, 50.0);
        // The paper's plot saturates toward 2,000 by T = 50 s.
        assert!(y_last > 1980.0 && y_last < 2000.0, "{y_last}");
    }

    #[test]
    fn figure_13_has_paper_series() {
        let series = figure_13(51);
        let labels: Vec<_> = series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["BSD", "SR 1", "MTF 1.0", "MTF 0.5", "MTF 0.2", "SEQUENT"]
        );
    }

    #[test]
    fn figure_14_adds_sr10() {
        let series = figure_14(51);
        assert!(series.iter().any(|s| s.label == "SR 10"));
    }

    #[test]
    fn figure_13_ordering_at_full_scale() {
        // At N = 10,000 the paper's plot shows, top to bottom:
        // BSD ≈ SR 1 (converged), then MTF 1.0 > MTF 0.5 > MTF 0.2,
        // then SEQUENT far below.
        let series = figure_13(101);
        let bsd = by_label(&series, "BSD").final_y();
        let sr1 = by_label(&series, "SR 1").final_y();
        let mtf10 = by_label(&series, "MTF 1.0").final_y();
        let mtf05 = by_label(&series, "MTF 0.5").final_y();
        let mtf02 = by_label(&series, "MTF 0.2").final_y();
        let seq = by_label(&series, "SEQUENT").final_y();

        // At D = 1 ms convergence is slower than at 10 ms; within 10 % by
        // N = 10,000 and still approaching.
        assert!((sr1 - bsd).abs() / bsd < 0.10, "SR converges to BSD");
        assert!(
            mtf10 > mtf05 && mtf05 > mtf02,
            "MTF improves with smaller R"
        );
        assert!(mtf02 < bsd, "all MTF variants beat BSD");
        assert!(seq * 10.0 < mtf02, "Sequent an order of magnitude below");
    }

    #[test]
    fn figure_14_detail_shape() {
        // In the detail view, SR 1 beats BSD clearly at small N, and
        // SR 10 lies between SR 1 and BSD.
        let series = figure_14(101);
        let at = |label: &str, idx: usize| by_label(&series, label).points[idx].1;
        // Index 10 ≈ N=102.
        let n_small = 10;
        assert!(at("SR 1", n_small) < at("BSD", n_small));
        assert!(at("SR 1", n_small) <= at("SR 10", n_small));
        assert!(at("SR 10", n_small) <= at("BSD", n_small) + 3.0);
        // Sequent is lowest everywhere (direct-index aside).
        for idx in [5, 50, 100] {
            for label in ["BSD", "SR 1", "SR 10", "MTF 1.0", "MTF 0.5", "MTF 0.2"] {
                assert!(
                    at("SEQUENT", idx) <= at(label, idx) + 1e-9,
                    "SEQUENT not lowest vs {label} at idx {idx}"
                );
            }
        }
    }

    #[test]
    fn crossover_sr_vs_mtf() {
        // Figure 14 shows SR 1 sitting between MTF 0.5 and MTF 0.2 in the
        // detail range (it beats MTF 0.5 at a few hundred users); Figure 13
        // shows it ending *above* every MTF curve by N = 10,000. So SR 1
        // and MTF 0.5 must cross between those scales.
        let at_100 = (
            srcache::cost(100.0, 0.2, 0.001),
            mtf::average_cost(100.0, 0.5),
        );
        assert!(at_100.0 < at_100.1, "SR should win at N=100: {at_100:?}");
        let at_10k = (
            srcache::cost(10_000.0, 0.2, 0.001),
            mtf::average_cost(10_000.0, 0.5),
        );
        assert!(
            at_10k.0 > at_10k.1,
            "MTF should win at N=10,000: {at_10k:?}"
        );
    }

    #[test]
    fn linspace_is_inclusive() {
        let xs = linspace(0.0, 10.0, 11);
        assert_eq!(xs.len(), 11);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[10], 10.0);
    }
}
