//! TCP sequence-number arithmetic.
//!
//! Sequence numbers live in a 32-bit circular space; comparisons must use
//! wrapping ("serial number") arithmetic per RFC 793 §3.3. [`SeqNum`] wraps
//! a `u32` and provides the comparison and distance operations the state
//! machine needs, so that raw `u32` comparisons can never sneak in.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A TCP sequence number in circular 32-bit space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Zero sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// The raw 32-bit value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Circular "less than": true if `self` precedes `other` by fewer than
    /// 2³¹ positions.
    pub fn lt(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// Circular "less than or equal".
    pub fn le(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// Circular "greater than".
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// Circular "greater than or equal".
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// True if `self` lies in the half-open circular interval
    /// `[start, start + len)`.
    pub fn in_window(self, start: SeqNum, len: u32) -> bool {
        self.0.wrapping_sub(start.0) < len
    }

    /// Distance from `earlier` to `self`, assuming `earlier` precedes
    /// `self` in circular order.
    pub fn distance_from(self, earlier: SeqNum) -> u32 {
        self.0.wrapping_sub(earlier.0)
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl From<u32> for SeqNum {
    fn from(value: u32) -> Self {
        SeqNum(value)
    }
}

impl From<SeqNum> for u32 {
    fn from(value: SeqNum) -> Self {
        value.0
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn ordering_near_zero() {
        assert!(SeqNum(1).lt(SeqNum(2)));
        assert!(!SeqNum(2).lt(SeqNum(1)));
        assert!(SeqNum(2).gt(SeqNum(1)));
        assert!(SeqNum(1).le(SeqNum(1)));
        assert!(SeqNum(1).ge(SeqNum(1)));
    }

    #[test]
    fn ordering_across_wraparound() {
        let near_max = SeqNum(u32::MAX - 1);
        let wrapped = SeqNum(5);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
        assert_eq!(wrapped.distance_from(near_max), 7);
    }

    #[test]
    fn window_membership() {
        assert!(SeqNum(100).in_window(SeqNum(100), 1));
        assert!(SeqNum(149).in_window(SeqNum(100), 50));
        assert!(!SeqNum(150).in_window(SeqNum(100), 50));
        assert!(!SeqNum(99).in_window(SeqNum(100), 50));
        // Window spanning the wrap point.
        assert!(SeqNum(3).in_window(SeqNum(u32::MAX - 2), 10));
        // Zero-length window contains nothing.
        assert!(!SeqNum(100).in_window(SeqNum(100), 0));
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(SeqNum(u32::MAX) + 1, SeqNum(0));
        assert_eq!(SeqNum(0) - SeqNum(u32::MAX), 1);
        let mut s = SeqNum(u32::MAX);
        s += 2;
        assert_eq!(s, SeqNum(1));
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(SeqNum(42).to_string(), "42");
        assert_eq!(u32::from(SeqNum(7)), 7);
        assert_eq!(SeqNum::from(7u32), SeqNum(7));
        assert_eq!(SeqNum::ZERO.raw(), 0);
    }

    /// lt is a strict order on any pair closer than 2^31.
    #[test]
    fn prop_lt_antisymmetric() {
        check("seq_prop_lt_antisymmetric", |rng| {
            let x = SeqNum(rng.u32());
            let delta = rng.u32_in(1, 0x7fff_ffff);
            let y = x + delta;
            assert!(x.lt(y));
            assert!(!y.lt(x));
            assert!(y.gt(x));
        });
    }

    /// Adding then measuring distance is the identity.
    #[test]
    fn prop_distance_roundtrip() {
        check("seq_prop_distance_roundtrip", |rng| {
            let x = SeqNum(rng.u32());
            let delta = rng.u32();
            let y = x + delta;
            assert_eq!(y.distance_from(x), delta);
            assert_eq!(y - x, delta);
        });
    }

    /// in_window agrees with the definition via distance.
    #[test]
    fn prop_window_definition() {
        check("seq_prop_window_definition", |rng| {
            let s = SeqNum(rng.u32());
            let w = SeqNum(rng.u32());
            let len = rng.u32();
            assert_eq!(s.in_window(w, len), s.distance_from(w) < len);
        });
    }
}
