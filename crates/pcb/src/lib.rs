//! Protocol control blocks (PCBs) for the `tcpdemux` project.
//!
//! A PCB holds the per-endpoint state of one TCP connection: the 96-bit
//! connection key (addresses and ports), the RFC 793 state machine, send and
//! receive sequence bookkeeping, and accounting. The demultiplexing
//! algorithms in `tcpdemux-core` find the PCB matching each arriving
//! segment; this crate defines what they are finding.
//!
//! The layout mirrors the BSD `inpcb`/`tcpcb` split loosely: [`Pcb`] is the
//! combined object, [`PcbArena`] owns all PCBs and hands out stable
//! [`PcbId`] handles which the lookup structures store.
//!
//! # Example
//!
//! ```
//! use tcpdemux_pcb::{ConnectionKey, Pcb, PcbArena, TcpState};
//! use std::net::Ipv4Addr;
//!
//! let mut arena = PcbArena::new();
//! let key = ConnectionKey::new(
//!     Ipv4Addr::new(10, 0, 0, 1), 1521,   // local (server) side
//!     Ipv4Addr::new(10, 0, 9, 9), 40001,  // remote (client) side
//! );
//! let id = arena.insert(Pcb::new(key));
//! assert_eq!(arena.get(id).unwrap().state(), TcpState::Closed);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod cc;
mod key;
mod pcb;
mod rtt;
mod sendbuf;
mod seq;
mod state;

pub use arena::{PcbArena, PcbId};
pub use cc::{CcAction, CongestionControl, CongestionState, NewReno, Reno};
pub use key::{ConnectionKey, ListenKey};
pub use pcb::{Pcb, PcbCounters, RecvSequenceSpace, SendSequenceSpace};
pub use rtt::RttEstimator;
pub use sendbuf::SendBuffer;
pub use seq::SeqNum;
pub use state::{InvalidTransition, TcpEvent, TcpState};
