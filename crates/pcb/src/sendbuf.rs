//! Per-connection send buffer backing the enqueue/poll transmit API.
//!
//! [`SendBuffer`] is a capped byte queue between the application's
//! `send` (enqueue) and the stack's `poll_transmit` (drain). It is a
//! flat `Vec<u8>` with a head cursor rather than a ring: unsent bytes
//! are always one contiguous slice, so the transmit path can frame
//! MSS-sized chunks straight out of the buffer without gathering.

/// A capped FIFO byte buffer for unsent application data.
///
/// `push` accepts as many bytes as fit under the cap and reports how
/// many it took; `peek` exposes the unsent bytes as one contiguous
/// slice; `consume` retires bytes handed to the transmit path. Storage
/// is compacted when the consumed prefix grows past half the backing
/// vector, so the buffer never holds more than ~2× its occupancy.
#[derive(Debug, Clone)]
pub struct SendBuffer {
    data: Vec<u8>,
    head: usize,
    cap: usize,
}

impl SendBuffer {
    /// An empty buffer accepting at most `cap` unsent bytes.
    pub fn new(cap: usize) -> Self {
        Self {
            data: Vec::new(),
            head: 0,
            cap,
        }
    }

    /// The configured occupancy cap in bytes.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Unsent bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no unsent bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.head == self.data.len()
    }

    /// Free space under the cap.
    pub fn free(&self) -> usize {
        self.cap - self.len()
    }

    /// Append as much of `payload` as fits under the cap; returns the
    /// number of bytes accepted (possibly zero).
    pub fn push(&mut self, payload: &[u8]) -> usize {
        let take = payload.len().min(self.free());
        if take == 0 {
            return 0;
        }
        if self.is_empty() {
            // Nothing queued: restart at the front so `peek` slices
            // stay near the allocation's start.
            self.data.clear();
            self.head = 0;
        }
        self.data.extend_from_slice(&payload[..take]);
        take
    }

    /// The unsent bytes, oldest first, as one contiguous slice.
    pub fn peek(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Retire the oldest `n` bytes (they have been handed to the
    /// transmit path and are now the retransmission queue's problem).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`len`](Self::len).
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consuming more than is buffered");
        self.head += n;
        if self.is_empty() {
            self.data.clear();
            self.head = 0;
        } else if self.head > self.data.len() / 2 {
            // The dead prefix dominates: compact in place.
            self.data.copy_within(self.head.., 0);
            self.data.truncate(self.data.len() - self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_honors_cap_and_reports_acceptance() {
        let mut buf = SendBuffer::new(8);
        assert_eq!(buf.push(b"hello"), 5);
        assert_eq!(buf.push(b"world"), 3, "only 3 of 5 fit");
        assert_eq!(buf.len(), 8);
        assert_eq!(buf.free(), 0);
        assert_eq!(buf.push(b"!"), 0);
        assert_eq!(buf.peek(), b"hellowor");
    }

    #[test]
    fn consume_is_fifo_and_frees_capacity() {
        let mut buf = SendBuffer::new(8);
        buf.push(b"abcdefgh");
        buf.consume(3);
        assert_eq!(buf.peek(), b"defgh");
        assert_eq!(buf.push(b"xyz"), 3);
        assert_eq!(buf.peek(), b"defghxyz");
        buf.consume(8);
        assert!(buf.is_empty());
        assert_eq!(buf.peek(), b"");
    }

    #[test]
    fn compaction_bounds_backing_storage() {
        let mut buf = SendBuffer::new(16);
        // Churn many times the cap through the buffer; the backing
        // vector must stay bounded by ~2× the cap, not grow linearly.
        for round in 0..1000u32 {
            let byte = (round % 251) as u8;
            assert_eq!(buf.push(&[byte; 8]), 8);
            assert_eq!(buf.peek()[buf.len() - 1], byte);
            buf.consume(8);
        }
        assert!(buf.is_empty());
        assert!(
            buf.data.capacity() <= 64,
            "backing vec grew to {} despite compaction",
            buf.data.capacity()
        );
    }

    #[test]
    #[should_panic(expected = "consuming more than is buffered")]
    fn overconsume_panics() {
        let mut buf = SendBuffer::new(4);
        buf.push(b"ab");
        buf.consume(3);
    }
}
