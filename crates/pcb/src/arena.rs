//! A slab-style arena owning all PCBs.
//!
//! Lookup structures in `tcpdemux-core` store [`PcbId`] handles, never PCBs
//! themselves, mirroring how a kernel's lookup chains hold pointers into a
//! PCB zone. The arena recycles slots through a free list with a generation
//! counter, so stale handles held by a forgetful cache can never alias a
//! new connection — exactly the bug class a real one-entry PCB cache must
//! guard against.

use crate::pcb::Pcb;
use core::fmt;

/// A stable handle to a PCB in a [`PcbArena`].
///
/// Internally an index plus a generation; a handle from a removed PCB
/// (even if the slot was reused) fails to resolve instead of returning the
/// wrong connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PcbId {
    index: u32,
    generation: u32,
}

impl PcbId {
    /// The slot index (useful for dense per-PCB side tables in experiments).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Pack the handle into a `u64` (generation in the high word, index in
    /// the low word). Lock-free structures store handles in `AtomicU64`
    /// cells; the round trip through [`PcbId::from_bits`] is lossless.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Reconstruct a handle packed by [`PcbId::to_bits`].
    ///
    /// The bits are not validated against any arena — like any `PcbId`,
    /// the handle only resolves if the generation still matches.
    pub fn from_bits(bits: u64) -> Self {
        Self {
            index: bits as u32,
            generation: (bits >> 32) as u32,
        }
    }
}

impl fmt::Display for PcbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcb#{}.{}", self.index, self.generation)
    }
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    value: Option<Pcb>,
}

/// Arena of PCBs with O(1) insert, remove, and handle resolution.
#[derive(Debug, Default)]
pub struct PcbArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl PcbArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an arena with capacity reserved for `n` PCBs.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live PCBs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the arena holds no live PCBs.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a PCB, returning its handle.
    pub fn insert(&mut self, pcb: Pcb) -> PcbId {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(pcb);
            PcbId {
                index,
                generation: slot.generation,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                value: Some(pcb),
            });
            PcbId {
                index,
                generation: 0,
            }
        }
    }

    /// Resolve a handle to a shared reference, or `None` if the PCB was
    /// removed (even if its slot has since been reused).
    pub fn get(&self, id: PcbId) -> Option<&Pcb> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Resolve a handle to an exclusive reference.
    pub fn get_mut(&mut self, id: PcbId) -> Option<&mut Pcb> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Remove a PCB, returning it. The slot's generation is bumped so the
    /// handle (and any cached copies of it) becomes invalid.
    pub fn remove(&mut self, id: PcbId) -> Option<Pcb> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
        Some(value)
    }

    /// Iterate over `(id, &pcb)` for all live PCBs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (PcbId, &Pcb)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.value.as_ref().map(|pcb| {
                (
                    PcbId {
                        index: i as u32,
                        generation: slot.generation,
                    },
                    pcb,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ConnectionKey;
    use std::net::Ipv4Addr;

    fn pcb(n: u8) -> Pcb {
        Pcb::new(ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            Ipv4Addr::new(10, 0, 0, n),
            1000 + u16::from(n),
        ))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut arena = PcbArena::new();
        let id = arena.insert(pcb(1));
        assert_eq!(arena.len(), 1);
        assert!(!arena.is_empty());
        assert_eq!(arena.get(id).unwrap().key(), pcb(1).key());
    }

    #[test]
    fn remove_invalidates_handle() {
        let mut arena = PcbArena::new();
        let id = arena.insert(pcb(1));
        let removed = arena.remove(id).unwrap();
        assert_eq!(removed.key(), pcb(1).key());
        assert!(arena.get(id).is_none());
        assert!(arena.get_mut(id).is_none());
        assert!(arena.remove(id).is_none());
        assert!(arena.is_empty());
    }

    #[test]
    fn slot_reuse_does_not_alias() {
        let mut arena = PcbArena::new();
        let stale = arena.insert(pcb(1));
        arena.remove(stale).unwrap();
        let fresh = arena.insert(pcb(2));
        // Same slot, different generation.
        assert_eq!(stale.index(), fresh.index());
        assert_ne!(stale, fresh);
        assert!(arena.get(stale).is_none(), "stale handle must not resolve");
        assert_eq!(arena.get(fresh).unwrap().key(), pcb(2).key());
    }

    #[test]
    fn get_mut_mutates() {
        let mut arena = PcbArena::new();
        let id = arena.insert(pcb(1));
        arena.get_mut(id).unwrap().note_segment_in(10);
        assert_eq!(arena.get(id).unwrap().counters.segments_in, 1);
    }

    #[test]
    fn iter_visits_live_only() {
        let mut arena = PcbArena::new();
        let a = arena.insert(pcb(1));
        let b = arena.insert(pcb(2));
        let c = arena.insert(pcb(3));
        arena.remove(b).unwrap();
        let ids: Vec<_> = arena.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
    }

    #[test]
    fn out_of_range_handle_is_none() {
        let mut arena = PcbArena::new();
        let id = arena.insert(pcb(1));
        let mut other = PcbArena::new();
        assert!(other.get(id).is_none());
        assert!(other.remove(id).is_none());
        let _ = arena;
    }

    #[test]
    fn bits_round_trip() {
        let mut arena = PcbArena::new();
        let a = arena.insert(pcb(1));
        arena.remove(a).unwrap();
        let b = arena.insert(pcb(2)); // same slot, generation 1
        for id in [a, b] {
            assert_eq!(PcbId::from_bits(id.to_bits()), id);
        }
        assert_ne!(a.to_bits(), b.to_bits(), "generation must survive packing");
        // The stale handle reconstructed from bits still refuses to resolve.
        assert!(arena.get(PcbId::from_bits(a.to_bits())).is_none());
        assert!(arena.get(PcbId::from_bits(b.to_bits())).is_some());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut arena = PcbArena::with_capacity(100);
        assert!(arena.is_empty());
        let id = arena.insert(pcb(1));
        assert!(arena.get(id).is_some());
    }

    #[test]
    fn thousands_of_pcbs() {
        // The paper's scale: 2,000 connections, then churn.
        let mut arena = PcbArena::with_capacity(2000);
        let ids: Vec<_> = (0..2000)
            .map(|i| {
                arena.insert(Pcb::new(ConnectionKey::new(
                    Ipv4Addr::new(10, 0, 0, 1),
                    1521,
                    Ipv4Addr::from(0x0a000000 + i as u32),
                    40000,
                )))
            })
            .collect();
        assert_eq!(arena.len(), 2000);
        for id in &ids[..1000] {
            arena.remove(*id).unwrap();
        }
        assert_eq!(arena.len(), 1000);
        // Reinsert into recycled slots.
        for i in 0..1000u32 {
            arena.insert(Pcb::new(ConnectionKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                1521,
                Ipv4Addr::from(0x0b000000 + i),
                40000,
            )));
        }
        assert_eq!(arena.len(), 2000);
        assert_eq!(arena.iter().count(), 2000);
    }
}
