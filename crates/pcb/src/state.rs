//! The RFC 793 TCP connection state machine.
//!
//! The demultiplexing paper assumes established connections, but a credible
//! PCB must carry the full lifecycle: listeners spawn PCBs in `SynReceived`,
//! data flows in `Established`, and teardown walks the FIN states. The
//! transition function here is the classic RFC 793 diagram (minus
//! simultaneous-open corner cases that the diagram includes and real BSD
//! stacks rarely exercise — simultaneous open *is* supported; simultaneous
//! close is too).

use core::fmt;

/// TCP connection states, per RFC 793 §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent, waiting for SYN-ACK.
    SynSent,
    /// SYN received (from Listen or simultaneous open), waiting for ACK.
    SynReceived,
    /// The steady state: data transfer.
    Established,
    /// Local close requested; FIN sent, waiting for ACK or FIN.
    FinWait1,
    /// Our FIN acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Peer sent FIN; waiting for local close.
    CloseWait,
    /// Both sides closing simultaneously; FIN sent and FIN received,
    /// waiting for the ACK of our FIN.
    Closing,
    /// Peer closed first and we have now sent our FIN; waiting for its ACK.
    LastAck,
    /// Connection done; draining old duplicates for 2·MSL.
    TimeWait,
}

impl TcpState {
    /// Whether a PCB in this state can carry application data.
    pub fn can_transfer_data(self) -> bool {
        matches!(
            self,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::CloseWait
        )
    }

    /// Whether the connection is fully specified (has a remote endpoint),
    /// i.e. is found by exact-match demultiplexing rather than the wildcard
    /// listener path.
    pub fn is_fully_specified(self) -> bool {
        !matches!(self, TcpState::Closed | TcpState::Listen)
    }

    /// Whether the state machine has terminated.
    pub fn is_closed(self) -> bool {
        matches!(self, TcpState::Closed)
    }
}

impl fmt::Display for TcpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TcpState::Closed => "CLOSED",
            TcpState::Listen => "LISTEN",
            TcpState::SynSent => "SYN-SENT",
            TcpState::SynReceived => "SYN-RECEIVED",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait1 => "FIN-WAIT-1",
            TcpState::FinWait2 => "FIN-WAIT-2",
            TcpState::CloseWait => "CLOSE-WAIT",
            TcpState::Closing => "CLOSING",
            TcpState::LastAck => "LAST-ACK",
            TcpState::TimeWait => "TIME-WAIT",
        };
        f.write_str(name)
    }
}

/// Events that drive the state machine: application calls, received
/// segments (already validated), and timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpEvent {
    /// Application performs a passive open (listen).
    AppListen,
    /// Application performs an active open (connect); SYN goes out.
    AppConnect,
    /// Application closes; FIN goes out where the diagram says so.
    AppClose,
    /// A SYN (without ACK) arrived.
    RecvSyn,
    /// A SYN-ACK arrived.
    RecvSynAck,
    /// An ACK arrived that acknowledges our SYN or FIN (plain data ACKs in
    /// `Established` do not change state and need not be fed here).
    RecvAck,
    /// A FIN arrived.
    RecvFin,
    /// A valid RST arrived.
    RecvRst,
    /// A terminal timer expired: the 2·MSL TIME-WAIT drain, the SYN-RCVD
    /// abort timer, or the retransmission budget running out in any
    /// synchronized state.
    Timeout,
}

/// Error returned when an event is not legal in the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTransition {
    /// State the machine was in.
    pub state: TcpState,
    /// Event that was not acceptable.
    pub event: TcpEvent,
}

impl fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {:?} is invalid in state {}",
            self.event, self.state
        )
    }
}

impl std::error::Error for InvalidTransition {}

impl TcpState {
    /// Apply `event` and return the next state, or an error if the event is
    /// not meaningful in this state (the caller decides whether that means
    /// "drop segment" or "send RST").
    pub fn on_event(self, event: TcpEvent) -> Result<TcpState, InvalidTransition> {
        use TcpEvent::*;
        use TcpState::*;
        let next = match (self, event) {
            (Closed, AppListen) => Listen,
            (Closed, AppConnect) => SynSent,

            (Listen, RecvSyn) => SynReceived,
            (Listen, AppClose) => Closed,
            // An RST aimed at a listener is ignored, the listener persists.
            (Listen, RecvRst) => Listen,

            (SynSent, RecvSynAck) => Established,
            // Simultaneous open: our SYN crossed the peer's.
            (SynSent, RecvSyn) => SynReceived,
            (SynSent, AppClose) => Closed,
            (SynSent, RecvRst) => Closed,
            (SynSent, Timeout) => Closed,

            (SynReceived, RecvAck) => Established,
            (SynReceived, AppClose) => FinWait1,
            (SynReceived, RecvRst) => Closed,
            (SynReceived, Timeout) => Closed,
            (SynReceived, RecvFin) => CloseWait,

            (Established, AppClose) => FinWait1,
            (Established, RecvFin) => CloseWait,
            (Established, RecvRst) => Closed,
            // A duplicate ACK in Established is a no-op, not an error.
            (Established, RecvAck) => Established,
            // Retransmission budget exhausted: the transport aborts.
            (Established, Timeout) => Closed,

            (FinWait1, RecvAck) => FinWait2,
            (FinWait1, RecvFin) => Closing,
            (FinWait1, RecvRst) => Closed,
            (FinWait1, Timeout) => Closed,

            (FinWait2, RecvFin) => TimeWait,
            (FinWait2, RecvRst) => Closed,
            (FinWait2, RecvAck) => FinWait2,

            (CloseWait, AppClose) => LastAck,
            (CloseWait, RecvRst) => Closed,
            (CloseWait, RecvAck) => CloseWait,
            (CloseWait, Timeout) => Closed,

            (Closing, RecvAck) => TimeWait,
            (Closing, RecvRst) => Closed,
            (Closing, Timeout) => Closed,

            (LastAck, RecvAck) => Closed,
            (LastAck, RecvRst) => Closed,
            (LastAck, Timeout) => Closed,

            (TimeWait, Timeout) => Closed,
            (TimeWait, RecvRst) => Closed,
            // Retransmitted FINs in TIME-WAIT re-arm the timer; state stays.
            (TimeWait, RecvFin) => TimeWait,

            (state, event) => return Err(InvalidTransition { state, event }),
        };
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;
    use TcpEvent::*;
    use TcpState::*;

    fn drive(start: TcpState, events: &[TcpEvent]) -> TcpState {
        events.iter().fold(start, |s, &e| {
            s.on_event(e)
                .unwrap_or_else(|err| panic!("unexpected invalid transition: {err}"))
        })
    }

    #[test]
    fn passive_open_handshake() {
        let s = drive(Closed, &[AppListen, RecvSyn, RecvAck]);
        assert_eq!(s, Established);
    }

    #[test]
    fn active_open_handshake() {
        let s = drive(Closed, &[AppConnect, RecvSynAck]);
        assert_eq!(s, Established);
    }

    #[test]
    fn simultaneous_open() {
        let s = drive(Closed, &[AppConnect, RecvSyn, RecvAck]);
        assert_eq!(s, Established);
    }

    #[test]
    fn active_close_normal() {
        let s = drive(Established, &[AppClose, RecvAck, RecvFin]);
        assert_eq!(s, TimeWait);
        assert_eq!(s.on_event(Timeout).unwrap(), Closed);
    }

    #[test]
    fn passive_close() {
        let s = drive(Established, &[RecvFin, AppClose, RecvAck]);
        assert_eq!(s, Closed);
    }

    #[test]
    fn simultaneous_close() {
        let s = drive(Established, &[AppClose, RecvFin, RecvAck]);
        assert_eq!(s, TimeWait);
    }

    #[test]
    fn rst_tears_down_from_every_synchronized_state() {
        for state in [
            SynSent,
            SynReceived,
            Established,
            FinWait1,
            FinWait2,
            CloseWait,
            Closing,
            LastAck,
            TimeWait,
        ] {
            assert_eq!(
                state.on_event(RecvRst).unwrap(),
                Closed,
                "RST in {state} must close"
            );
        }
        // But a listener survives an RST.
        assert_eq!(Listen.on_event(RecvRst).unwrap(), Listen);
    }

    #[test]
    fn invalid_transitions_are_errors() {
        let err = Closed.on_event(RecvFin).unwrap_err();
        assert_eq!(err.state, Closed);
        assert_eq!(err.event, RecvFin);
        assert!(err.to_string().contains("CLOSED"));
        assert!(Listen.on_event(RecvSynAck).is_err());
        assert!(TimeWait.on_event(AppConnect).is_err());
        assert!(Established.on_event(AppListen).is_err());
    }

    #[test]
    fn data_transfer_states() {
        for state in [Established, FinWait1, FinWait2, CloseWait] {
            assert!(state.can_transfer_data(), "{state}");
        }
        for state in [
            Closed,
            Listen,
            SynSent,
            SynReceived,
            Closing,
            LastAck,
            TimeWait,
        ] {
            assert!(!state.can_transfer_data(), "{state}");
        }
    }

    #[test]
    fn fully_specified_states() {
        assert!(!Closed.is_fully_specified());
        assert!(!Listen.is_fully_specified());
        for state in [SynSent, SynReceived, Established, TimeWait] {
            assert!(state.is_fully_specified(), "{state}");
        }
    }

    #[test]
    fn display_names_match_rfc() {
        assert_eq!(Established.to_string(), "ESTABLISHED");
        assert_eq!(FinWait2.to_string(), "FIN-WAIT-2");
        assert_eq!(TimeWait.to_string(), "TIME-WAIT");
    }

    #[test]
    fn retransmission_exhaustion_aborts_synchronized_states() {
        for state in [
            SynSent,
            SynReceived,
            Established,
            FinWait1,
            CloseWait,
            Closing,
            LastAck,
        ] {
            assert_eq!(
                state.on_event(Timeout).unwrap(),
                Closed,
                "RTO exhaustion in {state} must abort"
            );
        }
        // FIN-WAIT-2 has nothing left in flight: no retransmission timer.
        assert!(FinWait2.on_event(Timeout).is_err());
    }

    #[test]
    fn syn_received_passive_fin() {
        // Peer can send FIN immediately after its SYN is acknowledged at the
        // segment level but before we see the ACK (half-open teardown).
        assert_eq!(SynReceived.on_event(RecvFin).unwrap(), CloseWait);
    }

    /// The machine never panics and always either transitions or
    /// reports an InvalidTransition for arbitrary event sequences.
    #[test]
    fn prop_total_over_event_sequences() {
        check("state_prop_total_over_event_sequences", |rng| {
            let events = rng.vec_of(0, 64, |r| r.u8_in(0, 9));
            let decode = |b: u8| match b {
                0 => AppListen,
                1 => AppConnect,
                2 => AppClose,
                3 => RecvSyn,
                4 => RecvSynAck,
                5 => RecvAck,
                6 => RecvFin,
                7 => RecvRst,
                _ => Timeout,
            };
            let mut state = Closed;
            for b in events {
                if let Ok(next) = state.on_event(decode(b)) {
                    state = next;
                }
            }
            // Invariant: whatever happened, the state is one of the 11.
            let _ = state.to_string();
        });
    }

    /// From any state, RST or Timeout eventually leads to Closed within
    /// two steps (RST always, Timeout where defined).
    #[test]
    fn prop_rst_converges() {
        check("state_prop_rst_converges", |rng| {
            let states = [
                Closed,
                Listen,
                SynSent,
                SynReceived,
                Established,
                FinWait1,
                FinWait2,
                CloseWait,
                Closing,
                LastAck,
                TimeWait,
            ];
            let state = *rng.choose(&states);
            if let Ok(next) = state.on_event(RecvRst) {
                assert!(next == Closed || next == Listen);
            }
        });
    }
}
