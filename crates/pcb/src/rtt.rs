//! Round-trip-time estimation (Jacobson & Karels, SIGCOMM 1988).
//!
//! The PCB the paper's lookup schemes search is the same structure Van
//! Jacobson's congestion work reads on every ACK — the two lines of
//! research the introduction contrasts. A PCB therefore carries the
//! smoothed RTT state: `srtt` and `rttvar` in the classic EWMA form
//!
//! ```text
//! err    = sample − srtt
//! srtt  += err / 8
//! rttvar += (|err| − rttvar) / 4
//! rto    = srtt + 4·rttvar        (clamped to [min_rto, max_rto])
//! ```
//!
//! computed in integer microseconds, exactly as a kernel would.

/// Jacobson–Karels smoothed RTT estimator (microsecond integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttEstimator {
    srtt: u64,
    rttvar: u64,
    samples: u64,
    min_rto: u64,
    max_rto: u64,
}

impl RttEstimator {
    /// Conventional clamps: 200 ms floor (BSD's slow-timer granularity
    /// era used 500 ms; modern stacks use 200), 60 s ceiling.
    pub const DEFAULT_MIN_RTO: u64 = 200_000;
    /// Ceiling (60 s).
    pub const DEFAULT_MAX_RTO: u64 = 60_000_000;

    /// A fresh estimator with default clamps. Before the first sample,
    /// [`rto`](Self::rto) returns a conservative 1 s (RFC 6298's initial
    /// value, rounded from 3 s as modern practice does).
    pub fn new() -> Self {
        Self::with_bounds(Self::DEFAULT_MIN_RTO, Self::DEFAULT_MAX_RTO)
    }

    /// An estimator with explicit RTO clamps (microseconds).
    pub fn with_bounds(min_rto: u64, max_rto: u64) -> Self {
        assert!(min_rto > 0 && min_rto <= max_rto);
        Self {
            srtt: 0,
            rttvar: 0,
            samples: 0,
            min_rto,
            max_rto,
        }
    }

    /// Number of samples absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The smoothed RTT in microseconds (0 before any sample).
    pub fn srtt(&self) -> u64 {
        self.srtt
    }

    /// The RTT variation estimate in microseconds.
    pub fn rttvar(&self) -> u64 {
        self.rttvar
    }

    /// Absorb one RTT measurement (microseconds).
    pub fn record(&mut self, sample: u64) {
        if self.samples == 0 {
            // RFC 6298 initialization: srtt = R, rttvar = R/2.
            self.srtt = sample;
            self.rttvar = sample / 2;
        } else {
            let err = sample.abs_diff(self.srtt);
            // srtt += err/8 with sign.
            if sample >= self.srtt {
                self.srtt += err / 8;
            } else {
                self.srtt -= err / 8;
            }
            // rttvar += (|err| − rttvar)/4.
            if err >= self.rttvar {
                self.rttvar += (err - self.rttvar) / 4;
            } else {
                self.rttvar -= (self.rttvar - err) / 4;
            }
        }
        self.samples += 1;
    }

    /// Absorb the measurement for an acknowledged segment, subject to
    /// Karn's rule (Karn & Partridge, SIGCOMM 1987): an ACK for a segment
    /// that was ever retransmitted is ambiguous — it may acknowledge the
    /// original or the retransmission — so it must never produce a sample.
    /// Returns whether the sample was taken.
    pub fn sample_acked(&mut self, elapsed: u64, was_retransmitted: bool) -> bool {
        if was_retransmitted {
            return false;
        }
        self.record(elapsed);
        true
    }

    /// The retransmission timeout: `srtt + 4·rttvar`, clamped. Before any
    /// sample, a conservative 1 s.
    pub fn rto(&self) -> u64 {
        if self.samples == 0 {
            return 1_000_000.clamp(self.min_rto, self.max_rto);
        }
        (self.srtt + 4 * self.rttvar).clamp(self.min_rto, self.max_rto)
    }

    /// Exponential backoff of the current RTO after a retransmission
    /// timeout fires (doubling, clamped to the ceiling).
    pub fn backed_off(&self, attempts: u32) -> u64 {
        let rto = self.rto();
        rto.saturating_mul(1u64 << attempts.min(16))
            .min(self.max_rto)
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn initial_rto_is_one_second() {
        let est = RttEstimator::new();
        assert_eq!(est.rto(), 1_000_000);
        assert_eq!(est.samples(), 0);
        assert_eq!(est.srtt(), 0);
    }

    #[test]
    fn first_sample_initializes_per_rfc6298() {
        let mut est = RttEstimator::new();
        est.record(100_000); // 100 ms
        assert_eq!(est.srtt(), 100_000);
        assert_eq!(est.rttvar(), 50_000);
        assert_eq!(est.rto(), 300_000); // srtt + 4·rttvar
    }

    #[test]
    fn steady_rtt_converges_and_tightens() {
        let mut est = RttEstimator::new();
        for _ in 0..200 {
            est.record(100_000);
        }
        assert_eq!(est.srtt(), 100_000);
        // Integer EWMA floors: the decrement (rttvar/4) rounds to zero
        // below 4 µs, so "decays to zero" means "to within 3 µs".
        assert!(est.rttvar() <= 3, "rttvar {}", est.rttvar());
        assert_eq!(est.rto(), RttEstimator::DEFAULT_MIN_RTO, "floor applies");
    }

    #[test]
    fn spike_raises_rto_quickly() {
        let mut est = RttEstimator::new();
        for _ in 0..50 {
            est.record(100_000);
        }
        let calm = est.rto();
        est.record(1_000_000); // a 1 s outlier
        assert!(est.rto() > calm, "variance term reacts to the spike");
        assert!(est.rttvar() > 200_000, "rttvar jumped: {}", est.rttvar());
    }

    #[test]
    fn rto_respects_ceiling() {
        let mut est = RttEstimator::with_bounds(1_000, 500_000);
        est.record(10_000_000); // 10 s sample
        assert_eq!(est.rto(), 500_000);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut est = RttEstimator::new();
        est.record(100_000);
        let rto = est.rto();
        assert_eq!(est.backed_off(0), rto);
        assert_eq!(est.backed_off(1), rto * 2);
        assert_eq!(est.backed_off(3), rto * 8);
        assert_eq!(est.backed_off(30), RttEstimator::DEFAULT_MAX_RTO);
    }

    #[test]
    fn tracks_shifting_baseline() {
        // RTT moves from 50 ms to 250 ms; srtt must follow.
        let mut est = RttEstimator::new();
        for _ in 0..100 {
            est.record(50_000);
        }
        for _ in 0..200 {
            est.record(250_000);
        }
        assert!(
            (240_000..=260_000).contains(&est.srtt()),
            "srtt {}",
            est.srtt()
        );
    }

    /// Karn's rule: under any interleaving of clean and retransmitted
    /// acknowledgements, only the clean ones are sampled — the estimator
    /// state is exactly what feeding the clean subsequence alone produces.
    #[test]
    fn prop_karn_retransmitted_acks_never_sample() {
        check("rtt_prop_karn_retransmitted_acks_never_sample", |rng| {
            let acks = rng.vec_of(0, 80, |r| (r.u64_in(1_000, 5_000_000), r.bool()));
            let mut est = RttEstimator::new();
            let mut clean_only = RttEstimator::new();
            for &(elapsed, was_retransmitted) in &acks {
                let sampled = est.sample_acked(elapsed, was_retransmitted);
                assert_eq!(sampled, !was_retransmitted);
                if !was_retransmitted {
                    clean_only.record(elapsed);
                }
            }
            assert_eq!(est, clean_only);
            let clean = acks.iter().filter(|&&(_, r)| !r).count() as u64;
            assert_eq!(est.samples(), clean);
        });
    }

    /// Successive backoffs double exactly until the ceiling clamps them,
    /// and never exceed it, whatever the estimator has absorbed.
    #[test]
    fn prop_backoff_doubles_to_the_clamp() {
        check("rtt_prop_backoff_doubles_to_the_clamp", |rng| {
            let mut est = RttEstimator::new();
            for _ in 0..rng.u32_below(20) {
                est.record(rng.u64_in(1_000, 10_000_000));
            }
            let max = RttEstimator::DEFAULT_MAX_RTO;
            for attempts in 0..20u32 {
                let now = est.backed_off(attempts);
                let next = est.backed_off(attempts + 1);
                assert!(now <= max, "attempt {attempts}: {now} above ceiling");
                if next < max {
                    assert_eq!(next, now * 2, "attempt {attempts} must double");
                } else {
                    assert_eq!(next, max, "past the clamp, backoff pins at max");
                    assert!(now * 2 >= max || now == max);
                }
            }
        });
    }

    /// The estimator never leaves the sample envelope: srtt stays
    /// within [min sample, max sample] once initialized.
    #[test]
    fn prop_srtt_bounded_by_samples() {
        check("rtt_prop_srtt_bounded_by_samples", |rng| {
            let samples = rng.vec_of(1, 100, |r| r.u64_in(1_000, 10_000_000));
            let mut est = RttEstimator::new();
            for &s in &samples {
                est.record(s);
            }
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            assert!(est.srtt() >= lo.min(est.srtt()));
            assert!(est.srtt() <= hi, "srtt {} > max sample {}", est.srtt(), hi);
            // RTO is always within the clamps.
            let rto = est.rto();
            assert!((RttEstimator::DEFAULT_MIN_RTO..=RttEstimator::DEFAULT_MAX_RTO).contains(&rto));
        });
    }
}
