//! Connection keys: the 96 bits a demultiplexer must map to a PCB.
//!
//! The paper's opening observation is that the source and destination IP
//! addresses and TCP ports "total 96 bits, [so] simple indexing schemes are
//! not feasible". [`ConnectionKey`] packages those 96 bits from the
//! receiver's point of view; [`ListenKey`] is the wildcard form matched by
//! listening PCBs.

use core::fmt;
use std::net::Ipv4Addr;
use tcpdemux_wire::{Ipv4Repr, TcpRepr, UdpRepr};

/// A fully-specified connection key, oriented from the local host's
/// perspective: `local` is this machine's address/port, `remote` is the
/// peer's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionKey {
    /// Local (receiving host) IP address.
    pub local_addr: Ipv4Addr,
    /// Remote (peer) IP address.
    pub remote_addr: Ipv4Addr,
    /// Local port.
    pub local_port: u16,
    /// Remote port.
    pub remote_port: u16,
}

impl ConnectionKey {
    /// Construct a key from explicit parts.
    pub fn new(
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Self {
        Self {
            local_addr,
            remote_addr,
            local_port,
            remote_port,
        }
    }

    /// Build the key for an *incoming* TCP segment: the packet's destination
    /// is our local side and its source is the remote side.
    pub fn from_incoming_tcp(ip: &Ipv4Repr, tcp: &TcpRepr) -> Self {
        Self {
            local_addr: ip.dst_addr,
            remote_addr: ip.src_addr,
            local_port: tcp.dst_port,
            remote_port: tcp.src_port,
        }
    }

    /// Build the key for an *incoming* UDP datagram.
    pub fn from_incoming_udp(ip: &Ipv4Repr, udp: &UdpRepr) -> Self {
        Self {
            local_addr: ip.dst_addr,
            remote_addr: ip.src_addr,
            local_port: udp.dst_port,
            remote_port: udp.src_port,
        }
    }

    /// The key as seen from the other endpoint (local and remote swapped).
    /// An outgoing segment on this connection carries `self.reversed()`
    /// as its incoming key at the peer.
    pub fn reversed(&self) -> Self {
        Self {
            local_addr: self.remote_addr,
            remote_addr: self.local_addr,
            local_port: self.remote_port,
            remote_port: self.local_port,
        }
    }

    /// The 96 key bits as three 32-bit words:
    /// `[local_addr, remote_addr, (local_port << 16) | remote_port]`.
    /// This is the canonical input to the hash functions in
    /// `tcpdemux-hash`.
    pub fn as_words(&self) -> [u32; 3] {
        [
            u32::from(self.local_addr),
            u32::from(self.remote_addr),
            (u32::from(self.local_port) << 16) | u32::from(self.remote_port),
        ]
    }

    /// The key bits as twelve bytes in network order; input for byte-wise
    /// hash functions (CRC, Pearson).
    pub fn as_bytes(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..4].copy_from_slice(&self.local_addr.octets());
        out[4..8].copy_from_slice(&self.remote_addr.octets());
        out[8..10].copy_from_slice(&self.local_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.remote_port.to_be_bytes());
        out
    }

    /// Whether this key matches a listener bound to `listen`.
    pub fn matches_listener(&self, listen: &ListenKey) -> bool {
        listen.matches(self)
    }
}

impl fmt::Display for ConnectionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} <- {}:{}",
            self.local_addr, self.local_port, self.remote_addr, self.remote_port
        )
    }
}

/// A listener's key: a local port, optionally restricted to one local
/// address, matching any remote endpoint. This is the BSD "wildcard PCB".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenKey {
    /// Local address the listener is bound to; `None` = INADDR_ANY.
    pub local_addr: Option<Ipv4Addr>,
    /// Local port the listener is bound to.
    pub local_port: u16,
}

impl ListenKey {
    /// Listen on a port on all local addresses.
    pub fn any(local_port: u16) -> Self {
        Self {
            local_addr: None,
            local_port,
        }
    }

    /// Listen on a port on one specific local address.
    pub fn bound(local_addr: Ipv4Addr, local_port: u16) -> Self {
        Self {
            local_addr: Some(local_addr),
            local_port,
        }
    }

    /// Whether an incoming connection key matches this listener.
    pub fn matches(&self, key: &ConnectionKey) -> bool {
        self.local_port == key.local_port
            && match self.local_addr {
                None => true,
                Some(addr) => addr == key.local_addr,
            }
    }

    /// Specificity for listener selection: a bound listener beats a
    /// wildcard listener for the same port (BSD longest-match rule).
    pub fn specificity(&self) -> u8 {
        match self.local_addr {
            Some(_) => 1,
            None => 0,
        }
    }
}

impl fmt::Display for ListenKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.local_addr {
            Some(addr) => write!(f, "{}:{} (listen)", addr, self.local_port),
            None => write!(f, "*:{} (listen)", self.local_port),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;
    use tcpdemux_wire::IpProtocol;

    fn key() -> ConnectionKey {
        ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1521,
            Ipv4Addr::new(10, 0, 9, 9),
            40001,
        )
    }

    #[test]
    fn from_incoming_tcp_orients_correctly() {
        let ip = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 9, 9), // packet source = remote client
            Ipv4Addr::new(10, 0, 0, 1), // packet destination = local server
            IpProtocol::Tcp,
        );
        let tcp = TcpRepr {
            src_port: 40001,
            dst_port: 1521,
            ..TcpRepr::default()
        };
        assert_eq!(ConnectionKey::from_incoming_tcp(&ip, &tcp), key());
    }

    #[test]
    fn from_incoming_udp_orients_correctly() {
        let ip = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 9, 9),
            Ipv4Addr::new(10, 0, 0, 1),
            IpProtocol::Udp,
        );
        let udp = UdpRepr {
            src_port: 40001,
            dst_port: 1521,
        };
        assert_eq!(ConnectionKey::from_incoming_udp(&ip, &udp), key());
    }

    #[test]
    fn reversed_is_involutive() {
        assert_eq!(key().reversed().reversed(), key());
        assert_ne!(key().reversed(), key());
    }

    #[test]
    fn words_pack_96_bits() {
        let words = key().as_words();
        assert_eq!(words[0], u32::from(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(words[1], u32::from(Ipv4Addr::new(10, 0, 9, 9)));
        assert_eq!(words[2], (1521u32 << 16) | 40001);
    }

    #[test]
    fn bytes_and_words_agree() {
        let bytes = key().as_bytes();
        let words = key().as_words();
        for (i, word) in words.iter().enumerate() {
            let b = &bytes[i * 4..i * 4 + 4];
            assert_eq!(u32::from_be_bytes([b[0], b[1], b[2], b[3]]), *word);
        }
    }

    #[test]
    fn listener_matching() {
        let k = key();
        assert!(ListenKey::any(1521).matches(&k));
        assert!(ListenKey::bound(Ipv4Addr::new(10, 0, 0, 1), 1521).matches(&k));
        assert!(!ListenKey::bound(Ipv4Addr::new(10, 0, 0, 2), 1521).matches(&k));
        assert!(!ListenKey::any(80).matches(&k));
        assert!(k.matches_listener(&ListenKey::any(1521)));
    }

    #[test]
    fn specificity_orders_listeners() {
        assert!(
            ListenKey::bound(Ipv4Addr::new(1, 2, 3, 4), 80).specificity()
                > ListenKey::any(80).specificity()
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(key().to_string(), "10.0.0.1:1521 <- 10.0.9.9:40001");
        assert_eq!(ListenKey::any(80).to_string(), "*:80 (listen)");
        assert_eq!(
            ListenKey::bound(Ipv4Addr::new(1, 2, 3, 4), 80).to_string(),
            "1.2.3.4:80 (listen)"
        );
    }

    #[test]
    fn prop_distinct_tuples_distinct_keys() {
        check("key_prop_distinct_tuples_distinct_keys", |rng| {
            // Draw from a small space so collisions (a == b) actually occur.
            let tuple = |r: &mut tcpdemux_testprop::TestRng| {
                (
                    r.u32_below(4),
                    r.u32_below(4),
                    r.u16_in(0, 4),
                    r.u16_in(0, 4),
                )
            };
            let a = tuple(rng);
            let b = tuple(rng);
            let ka = ConnectionKey::new(Ipv4Addr::from(a.0), a.2, Ipv4Addr::from(a.1), a.3);
            let kb = ConnectionKey::new(Ipv4Addr::from(b.0), b.2, Ipv4Addr::from(b.1), b.3);
            assert_eq!(ka == kb, a == b);
            // The packed forms must be injective as well.
            assert_eq!(ka.as_words() == kb.as_words(), a == b);
            assert_eq!(ka.as_bytes() == kb.as_bytes(), a == b);
        });
        check("key_prop_distinct_tuples_distinct_keys_wide", |rng| {
            let a = (rng.u32(), rng.u32(), rng.u16(), rng.u16());
            let b = (rng.u32(), rng.u32(), rng.u16(), rng.u16());
            let ka = ConnectionKey::new(Ipv4Addr::from(a.0), a.2, Ipv4Addr::from(a.1), a.3);
            let kb = ConnectionKey::new(Ipv4Addr::from(b.0), b.2, Ipv4Addr::from(b.1), b.3);
            assert_eq!(ka == kb, a == b);
        });
    }

    #[test]
    fn prop_reversed_involutive() {
        check("key_prop_reversed_involutive", |rng| {
            let a = (rng.u32(), rng.u32(), rng.u16(), rng.u16());
            let k = ConnectionKey::new(Ipv4Addr::from(a.0), a.2, Ipv4Addr::from(a.1), a.3);
            assert_eq!(k.reversed().reversed(), k);
        });
    }
}
