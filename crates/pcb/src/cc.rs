//! Pluggable congestion control: Reno and NewReno.
//!
//! The split follows mlwip's modular control path: per-connection
//! *state* ([`CongestionState`]) lives in the PCB next to the sequence
//! spaces it is consulted with, while the *algorithm* is a stateless
//! [`CongestionControl`] object owned by the stack. The stack reports
//! ACK-clock events (advancing ACK, duplicate ACK, RTO expiry) and acts
//! on the returned [`CcAction`]; the algorithm never touches frames.

use crate::seq::SeqNum;

/// Per-connection congestion-control variables (RFC 5681 / 6582).
///
/// `Copy` and flat on purpose: this is hot-path state consulted on
/// every ACK, stored inline in the [`Pcb`](crate::Pcb).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CongestionState {
    /// Congestion window in bytes.
    pub cwnd: usize,
    /// Slow-start threshold in bytes; above it growth is additive.
    pub ssthresh: usize,
    /// Consecutive duplicate ACKs observed at the current SND.UNA.
    pub dup_acks: u32,
    /// Whether fast recovery is in progress.
    pub in_recovery: bool,
    /// Whether RTO recovery is in progress: the head was re-emitted by
    /// the retransmission timer and the segments behind it may have been
    /// discarded by an in-order-only receiver, so each advancing ACK
    /// below `recover` re-emits the new head (go-back-N paced by the
    /// ACK clock) instead of stretching new data over the hole.
    pub in_rto_recovery: bool,
    /// The `recover` mark: SND.NXT when fast retransmit or an RTO
    /// fired. ACKs below it are partial; at or above it, recovery
    /// completes.
    pub recover: SeqNum,
}

impl CongestionState {
    /// Fresh state for a new connection: `cwnd` starts at
    /// `initial_cwnd` and `ssthresh` effectively unbounded, so the
    /// connection opens in slow start (RFC 5681 §3.1).
    pub fn new(initial_cwnd: usize) -> Self {
        Self {
            cwnd: initial_cwnd,
            ssthresh: usize::MAX / 2,
            dup_acks: 0,
            in_recovery: false,
            in_rto_recovery: false,
            recover: SeqNum(0),
        }
    }
}

impl Default for CongestionState {
    fn default() -> Self {
        // 4 × the RFC 1122 default MSS; the stack re-seeds from its
        // configured `WindowConfig` when it opens a connection.
        Self::new(4 * 536)
    }
}

/// What the stack must do after reporting an event to the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAction {
    /// Nothing beyond normal transmission (the window may have moved).
    None,
    /// Re-emit the oldest unacknowledged segment now (fast retransmit,
    /// or NewReno's per-partial-ACK head re-emission).
    RetransmitHead,
}

/// A congestion-control algorithm: pure window arithmetic over
/// [`CongestionState`], driven by the stack's ACK clock.
pub trait CongestionControl: Send {
    /// Algorithm name for introspection and config display.
    fn name(&self) -> &'static str;

    /// A cumulative ACK advanced SND.UNA by `acked` bytes to `ack`.
    fn on_ack(&self, st: &mut CongestionState, acked: usize, ack: SeqNum, mss: usize) -> CcAction;

    /// A duplicate ACK arrived (same SND.UNA, no payload, no window
    /// update) with `inflight` bytes outstanding and SND.NXT at
    /// `snd_nxt`.
    fn on_dup_ack(
        &self,
        st: &mut CongestionState,
        inflight: usize,
        snd_nxt: SeqNum,
        mss: usize,
    ) -> CcAction;

    /// The retransmission timer expired with `inflight` bytes
    /// outstanding and SND.NXT at `snd_nxt`.
    fn on_rto(&self, st: &mut CongestionState, inflight: usize, snd_nxt: SeqNum, mss: usize);
}

/// Slow start below `ssthresh` (exponential per RTT), additive increase
/// above it (~one MSS per cwnd of acknowledged data) — RFC 5681 §3.1.
fn grow(st: &mut CongestionState, acked: usize, mss: usize) {
    if st.cwnd < st.ssthresh {
        st.cwnd += acked.min(mss);
    } else {
        st.cwnd += (mss * mss / st.cwnd.max(1)).max(1);
    }
}

/// Shared dup-ACK handling: count to three, then halve and enter fast
/// recovery, re-emitting the presumed-lost head; further duplicates
/// inflate `cwnd` by one MSS each (they signal a departed segment).
fn dup_ack(st: &mut CongestionState, inflight: usize, snd_nxt: SeqNum, mss: usize) -> CcAction {
    if st.in_recovery {
        st.cwnd += mss;
        return CcAction::None;
    }
    st.dup_acks += 1;
    if st.dup_acks < 3 {
        return CcAction::None;
    }
    st.ssthresh = (inflight / 2).max(2 * mss);
    st.cwnd = st.ssthresh + 3 * mss;
    st.in_recovery = true;
    st.recover = snd_nxt;
    CcAction::RetransmitHead
}

/// Shared RTO handling: collapse to one MSS and restart slow start
/// toward half the data that was in flight (RFC 5681 §3.1 eq. 4),
/// and enter RTO recovery: until SND.UNA passes the data outstanding
/// at expiry, advancing ACKs re-emit the head (see
/// [`CongestionState::in_rto_recovery`]).
fn rto(st: &mut CongestionState, inflight: usize, snd_nxt: SeqNum, mss: usize) {
    st.ssthresh = (inflight / 2).max(2 * mss);
    st.cwnd = mss;
    st.in_recovery = false;
    st.in_rto_recovery = true;
    st.recover = snd_nxt;
    st.dup_acks = 0;
}

/// Shared RTO-recovery ACK handling: below the `recover` mark, grow
/// (we are back in slow start) and ask for the new head, which an
/// in-order-only receiver has necessarily discarded; at or past the
/// mark, recovery is over. Returns the action, or `None` if not in
/// RTO recovery.
fn rto_recovery_ack(
    st: &mut CongestionState,
    acked: usize,
    ack: SeqNum,
    mss: usize,
) -> Option<CcAction> {
    if !st.in_rto_recovery {
        return None;
    }
    if st.recover.le(ack) {
        st.in_rto_recovery = false;
        return None;
    }
    grow(st, acked, mss);
    Some(CcAction::RetransmitHead)
}

/// Classic Reno (RFC 5681): fast retransmit/fast recovery, with
/// recovery ending on the first ACK that advances SND.UNA at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reno;

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&self, st: &mut CongestionState, acked: usize, ack: SeqNum, mss: usize) -> CcAction {
        st.dup_acks = 0;
        if let Some(action) = rto_recovery_ack(st, acked, ack, mss) {
            return action;
        }
        if st.in_recovery {
            // Any advancing ACK deflates the window and exits recovery.
            st.cwnd = st.ssthresh;
            st.in_recovery = false;
        } else {
            grow(st, acked, mss);
        }
        CcAction::None
    }

    fn on_dup_ack(
        &self,
        st: &mut CongestionState,
        inflight: usize,
        snd_nxt: SeqNum,
        mss: usize,
    ) -> CcAction {
        dup_ack(st, inflight, snd_nxt, mss)
    }

    fn on_rto(&self, st: &mut CongestionState, inflight: usize, snd_nxt: SeqNum, mss: usize) {
        rto(st, inflight, snd_nxt, mss);
    }
}

/// NewReno (RFC 6582): like Reno, but a *partial* ACK — one advancing
/// SND.UNA without reaching the `recover` mark — keeps recovery open
/// and immediately re-emits the new head, repairing multiple losses in
/// one window without waiting for an RTO.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewReno;

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(&self, st: &mut CongestionState, acked: usize, ack: SeqNum, mss: usize) -> CcAction {
        st.dup_acks = 0;
        if let Some(action) = rto_recovery_ack(st, acked, ack, mss) {
            return action;
        }
        if st.in_recovery {
            if st.recover.le(ack) {
                // Full ACK: recovery repaired the whole window.
                st.cwnd = st.ssthresh;
                st.in_recovery = false;
                return CcAction::None;
            }
            // Partial ACK: deflate by the data the ACK covered, add
            // back one MSS, and retransmit the next hole's head.
            st.cwnd = st.cwnd.saturating_sub(acked).max(mss) + mss;
            return CcAction::RetransmitHead;
        }
        grow(st, acked, mss);
        CcAction::None
    }

    fn on_dup_ack(
        &self,
        st: &mut CongestionState,
        inflight: usize,
        snd_nxt: SeqNum,
        mss: usize,
    ) -> CcAction {
        dup_ack(st, inflight, snd_nxt, mss)
    }

    fn on_rto(&self, st: &mut CongestionState, inflight: usize, snd_nxt: SeqNum, mss: usize) {
        rto(st, inflight, snd_nxt, mss);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1000;

    fn fresh() -> CongestionState {
        CongestionState::new(2 * MSS)
    }

    #[test]
    fn slow_start_grows_exponentially_per_window() {
        let cc = NewReno;
        let mut st = fresh();
        // Acknowledge one full window: cwnd roughly doubles.
        cc.on_ack(&mut st, MSS, SeqNum(1000), MSS);
        cc.on_ack(&mut st, MSS, SeqNum(2000), MSS);
        assert_eq!(st.cwnd, 4 * MSS);
    }

    #[test]
    fn congestion_avoidance_is_additive() {
        let cc = NewReno;
        let mut st = fresh();
        st.cwnd = 10 * MSS;
        st.ssthresh = st.cwnd; // already at threshold: AIMD from here
        let before = st.cwnd;
        // One full window of ACKs grows cwnd by ~one MSS total (a bit
        // less, since cwnd inches up while the window drains).
        let mut acked = 0;
        let mut seq = 0u32;
        while acked < before {
            seq += MSS as u32;
            cc.on_ack(&mut st, MSS, SeqNum(seq), MSS);
            acked += MSS;
        }
        assert!(
            st.cwnd > before + MSS / 2 && st.cwnd <= before + MSS,
            "additive growth off: {} -> {}",
            before,
            st.cwnd
        );
    }

    #[test]
    fn third_dup_ack_halves_and_requests_head_retransmit() {
        let cc = Reno;
        let mut st = fresh();
        st.cwnd = 10 * MSS;
        st.ssthresh = st.cwnd;
        let inflight = 10 * MSS;
        assert_eq!(
            cc.on_dup_ack(&mut st, inflight, SeqNum(10_000), MSS),
            CcAction::None
        );
        assert_eq!(
            cc.on_dup_ack(&mut st, inflight, SeqNum(10_000), MSS),
            CcAction::None
        );
        assert_eq!(
            cc.on_dup_ack(&mut st, inflight, SeqNum(10_000), MSS),
            CcAction::RetransmitHead
        );
        assert!(st.in_recovery);
        assert_eq!(st.ssthresh, 5 * MSS);
        assert_eq!(st.cwnd, 5 * MSS + 3 * MSS, "halved plus three inflations");
        assert_eq!(st.recover, SeqNum(10_000));
        // A fourth duplicate inflates rather than recounting.
        cc.on_dup_ack(&mut st, inflight, SeqNum(10_000), MSS);
        assert_eq!(st.cwnd, 9 * MSS);
    }

    #[test]
    fn reno_exits_recovery_on_any_advance() {
        let cc = Reno;
        let mut st = fresh();
        st.cwnd = 10 * MSS;
        st.ssthresh = st.cwnd;
        for _ in 0..3 {
            cc.on_dup_ack(&mut st, 10 * MSS, SeqNum(10_000), MSS);
        }
        assert!(st.in_recovery);
        // A partial ACK (below recover) still ends Reno's recovery.
        assert_eq!(cc.on_ack(&mut st, MSS, SeqNum(3_000), MSS), CcAction::None);
        assert!(!st.in_recovery);
        assert_eq!(st.cwnd, st.ssthresh);
    }

    #[test]
    fn newreno_partial_ack_retransmits_and_stays_in_recovery() {
        let cc = NewReno;
        let mut st = fresh();
        st.cwnd = 10 * MSS;
        st.ssthresh = st.cwnd;
        for _ in 0..3 {
            cc.on_dup_ack(&mut st, 10 * MSS, SeqNum(10_000), MSS);
        }
        assert!(st.in_recovery);
        // Partial ACK: stay in recovery, re-emit the new head.
        assert_eq!(
            cc.on_ack(&mut st, MSS, SeqNum(3_000), MSS),
            CcAction::RetransmitHead
        );
        assert!(st.in_recovery);
        // Full ACK at the recover mark: done.
        assert_eq!(
            cc.on_ack(&mut st, 7 * MSS, SeqNum(10_000), MSS),
            CcAction::None
        );
        assert!(!st.in_recovery);
        assert_eq!(st.cwnd, st.ssthresh);
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let cc = NewReno;
        let mut st = fresh();
        st.cwnd = 8 * MSS;
        st.in_recovery = true;
        cc.on_rto(&mut st, 8 * MSS, SeqNum(8_000), MSS);
        assert_eq!(st.cwnd, MSS);
        assert_eq!(st.ssthresh, 4 * MSS);
        assert!(!st.in_recovery);
        assert!(st.in_rto_recovery);
        assert_eq!(st.recover, SeqNum(8_000));
        assert_eq!(st.dup_acks, 0);
    }

    #[test]
    fn rto_recovery_reemits_head_per_ack_until_the_mark() {
        let cc = NewReno;
        let mut st = fresh();
        st.cwnd = 8 * MSS;
        cc.on_rto(&mut st, 8 * MSS, SeqNum(8_000), MSS);
        // Partial ACKs below the mark keep asking for the head (the
        // receiver discarded everything behind the hole) while slow
        // start regrows the window.
        assert_eq!(
            cc.on_ack(&mut st, MSS, SeqNum(1_000), MSS),
            CcAction::RetransmitHead
        );
        assert!(st.in_rto_recovery);
        assert_eq!(st.cwnd, 2 * MSS, "slow-start regrowth during repair");
        assert_eq!(
            cc.on_ack(&mut st, MSS, SeqNum(2_000), MSS),
            CcAction::RetransmitHead
        );
        // The ACK covering the mark ends RTO recovery.
        assert_eq!(
            cc.on_ack(&mut st, 6 * MSS, SeqNum(8_000), MSS),
            CcAction::None
        );
        assert!(!st.in_rto_recovery);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let cc = Reno;
        let mut st = fresh();
        cc.on_rto(&mut st, MSS, SeqNum(1_000), MSS);
        assert_eq!(st.ssthresh, 2 * MSS);
    }
}
