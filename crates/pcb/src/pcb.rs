//! The protocol control block itself.

use crate::key::ConnectionKey;
use crate::seq::SeqNum;
use crate::state::{InvalidTransition, TcpEvent, TcpState};
use core::fmt;

/// Send-side sequence bookkeeping (RFC 793 "send sequence space").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendSequenceSpace {
    /// SND.UNA — oldest unacknowledged sequence number.
    pub una: SeqNum,
    /// SND.NXT — next sequence number to send.
    pub nxt: SeqNum,
    /// SND.WND — send window granted by the peer.
    pub wnd: u16,
    /// ISS — initial send sequence number.
    pub iss: SeqNum,
}

/// Receive-side sequence bookkeeping (RFC 793 "receive sequence space").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecvSequenceSpace {
    /// RCV.NXT — next sequence number expected.
    pub nxt: SeqNum,
    /// RCV.WND — window we advertise.
    pub wnd: u16,
    /// IRS — initial receive sequence number.
    pub irs: SeqNum,
}

/// Per-connection accounting, exposed so experiments can attribute load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcbCounters {
    /// Segments received for this connection.
    pub segments_in: u64,
    /// Segments sent on this connection.
    pub segments_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
}

/// A protocol control block: one endpoint of one TCP (or UDP) connection.
///
/// The struct is deliberately "heavy" (sequence spaces, counters, MSS) —
/// the paper's whole argument is that PCBs are too big to all sit in cache,
/// so a realistic PCB should cost a realistic number of cache lines.
#[derive(Debug, Clone)]
pub struct Pcb {
    key: ConnectionKey,
    state: TcpState,
    /// Send sequence space.
    pub snd: SendSequenceSpace,
    /// Receive sequence space.
    pub rcv: RecvSequenceSpace,
    /// Effective maximum segment size for this connection.
    pub mss: u16,
    /// Smoothed round-trip-time state (Jacobson–Karels), updated by the
    /// transport on each acknowledged segment.
    pub rtt: crate::RttEstimator,
    /// Consecutive retransmission-timer expiries without an intervening
    /// ACK; exponent for [`RttEstimator::backed_off`](crate::RttEstimator::backed_off).
    /// Reset to zero whenever the peer acknowledges new data.
    pub rto_attempts: u32,
    /// Congestion-control variables (cwnd, ssthresh, dup-ACK count),
    /// updated by the stack's [`CongestionControl`](crate::CongestionControl)
    /// algorithm on each ACK-clock event.
    pub cong: crate::CongestionState,
    /// Accounting counters.
    pub counters: PcbCounters,
}

impl Pcb {
    /// Default MSS when the peer offers none (RFC 1122: 536).
    pub const DEFAULT_MSS: u16 = 536;

    /// Create a closed PCB for a connection key.
    pub fn new(key: ConnectionKey) -> Self {
        Self {
            key,
            state: TcpState::Closed,
            snd: SendSequenceSpace::default(),
            rcv: RecvSequenceSpace::default(),
            mss: Self::DEFAULT_MSS,
            rtt: crate::RttEstimator::new(),
            rto_attempts: 0,
            cong: crate::CongestionState::default(),
            counters: PcbCounters::default(),
        }
    }

    /// Create a PCB already in a given state (used by the simulator, which
    /// fast-forwards past connection establishment).
    pub fn new_in_state(key: ConnectionKey, state: TcpState) -> Self {
        Self {
            state,
            ..Self::new(key)
        }
    }

    /// The connection key.
    pub fn key(&self) -> ConnectionKey {
        self.key
    }

    /// Current connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Drive the state machine.
    pub fn on_event(&mut self, event: TcpEvent) -> Result<TcpState, InvalidTransition> {
        let next = self.state.on_event(event)?;
        self.state = next;
        Ok(next)
    }

    /// Record an inbound segment's accounting.
    pub fn note_segment_in(&mut self, payload_len: usize) {
        self.counters.segments_in += 1;
        self.counters.bytes_in += payload_len as u64;
    }

    /// Record an outbound segment's accounting.
    pub fn note_segment_out(&mut self, payload_len: usize) {
        self.counters.segments_out += 1;
        self.counters.bytes_out += payload_len as u64;
    }

    /// Initialize the send space for an active or passive open.
    pub fn init_send(&mut self, iss: SeqNum, window: u16) {
        self.snd = SendSequenceSpace {
            una: iss,
            nxt: iss + 1, // the SYN occupies one sequence number
            wnd: window,
            iss,
        };
    }

    /// Initialize the receive space upon seeing the peer's SYN.
    pub fn init_recv(&mut self, irs: SeqNum, window: u16) {
        self.rcv = RecvSequenceSpace {
            nxt: irs + 1,
            wnd: window,
            irs,
        };
    }

    /// The retransmission timeout currently in force, in microseconds:
    /// the estimator's RTO backed off exponentially by the consecutive
    /// expiries recorded in [`rto_attempts`](Self::rto_attempts).
    pub fn current_rto(&self) -> u64 {
        self.rtt.backed_off(self.rto_attempts)
    }

    /// Whether an arriving segment with this sequence number and length is
    /// acceptable per the RFC 793 four-case acceptability test.
    pub fn segment_acceptable(&self, seq: SeqNum, seg_len: u32) -> bool {
        let rcv_nxt = self.rcv.nxt;
        let rcv_wnd = u32::from(self.rcv.wnd);
        match (seg_len, rcv_wnd) {
            (0, 0) => seq == rcv_nxt,
            (0, _) => seq.in_window(rcv_nxt, rcv_wnd),
            (_, 0) => false,
            (_, _) => {
                seq.in_window(rcv_nxt, rcv_wnd) || (seq + (seg_len - 1)).in_window(rcv_nxt, rcv_wnd)
            }
        }
    }
}

impl fmt::Display for Pcb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.key, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key() -> ConnectionKey {
        ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            Ipv4Addr::new(10, 0, 0, 2),
            5555,
        )
    }

    #[test]
    fn new_pcb_is_closed() {
        let pcb = Pcb::new(key());
        assert_eq!(pcb.state(), TcpState::Closed);
        assert_eq!(pcb.key(), key());
        assert_eq!(pcb.mss, Pcb::DEFAULT_MSS);
    }

    #[test]
    fn new_in_state_skips_handshake() {
        let pcb = Pcb::new_in_state(key(), TcpState::Established);
        assert_eq!(pcb.state(), TcpState::Established);
    }

    #[test]
    fn event_updates_state() {
        let mut pcb = Pcb::new(key());
        pcb.on_event(TcpEvent::AppConnect).unwrap();
        assert_eq!(pcb.state(), TcpState::SynSent);
        pcb.on_event(TcpEvent::RecvSynAck).unwrap();
        assert_eq!(pcb.state(), TcpState::Established);
    }

    #[test]
    fn invalid_event_leaves_state_unchanged() {
        let mut pcb = Pcb::new(key());
        assert!(pcb.on_event(TcpEvent::RecvFin).is_err());
        assert_eq!(pcb.state(), TcpState::Closed);
    }

    #[test]
    fn accounting_accumulates() {
        let mut pcb = Pcb::new(key());
        pcb.note_segment_in(100);
        pcb.note_segment_in(0);
        pcb.note_segment_out(42);
        assert_eq!(pcb.counters.segments_in, 2);
        assert_eq!(pcb.counters.bytes_in, 100);
        assert_eq!(pcb.counters.segments_out, 1);
        assert_eq!(pcb.counters.bytes_out, 42);
    }

    #[test]
    fn init_send_recv_spaces() {
        let mut pcb = Pcb::new(key());
        pcb.init_send(SeqNum(1000), 8192);
        assert_eq!(pcb.snd.iss, SeqNum(1000));
        assert_eq!(pcb.snd.una, SeqNum(1000));
        assert_eq!(pcb.snd.nxt, SeqNum(1001));
        pcb.init_recv(SeqNum(5000), 4096);
        assert_eq!(pcb.rcv.irs, SeqNum(5000));
        assert_eq!(pcb.rcv.nxt, SeqNum(5001));
    }

    #[test]
    fn acceptability_four_cases() {
        let mut pcb = Pcb::new(key());
        pcb.init_recv(SeqNum(999), 100); // rcv.nxt = 1000, wnd = 100

        // Case: empty segment, open window.
        assert!(pcb.segment_acceptable(SeqNum(1000), 0));
        assert!(pcb.segment_acceptable(SeqNum(1099), 0));
        assert!(!pcb.segment_acceptable(SeqNum(1100), 0));
        assert!(!pcb.segment_acceptable(SeqNum(999), 0));

        // Case: data segment, open window — acceptable if any byte is in
        // the window, including partial overlap from the left.
        assert!(pcb.segment_acceptable(SeqNum(1000), 50));
        assert!(pcb.segment_acceptable(SeqNum(950), 51)); // last byte = 1000
        assert!(!pcb.segment_acceptable(SeqNum(949), 50)); // ends at 998

        // Case: zero window.
        pcb.rcv.wnd = 0;
        assert!(pcb.segment_acceptable(SeqNum(1000), 0)); // pure ACK probe
        assert!(!pcb.segment_acceptable(SeqNum(1001), 0));
        assert!(!pcb.segment_acceptable(SeqNum(1000), 1)); // data refused
    }

    #[test]
    fn current_rto_backs_off_with_attempts() {
        let mut pcb = Pcb::new(key());
        pcb.rtt.record(100_000);
        let base = pcb.rtt.rto();
        assert_eq!(pcb.current_rto(), base);
        pcb.rto_attempts = 2;
        assert_eq!(pcb.current_rto(), base * 4);
        pcb.rto_attempts = 0;
        assert_eq!(pcb.current_rto(), base, "an ACK resets the backoff");
    }

    #[test]
    fn display_shows_key_and_state() {
        let pcb = Pcb::new_in_state(key(), TcpState::Established);
        let s = pcb.to_string();
        assert!(s.contains("10.0.0.1:80"), "{s}");
        assert!(s.contains("ESTABLISHED"), "{s}");
    }
}
