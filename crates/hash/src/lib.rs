//! Hash functions for TCP/IP connection keys, and tools to judge them.
//!
//! The Sequent algorithm (McKenney & Dove 1992, §3.4) hashes each arriving
//! segment's 96-bit connection key into one of `H` chains. The paper notes
//! that "efficient hash functions for protocol addresses are well known",
//! citing Jain's 1989 comparison of hashing schemes for address lookup and
//! McKenney's stochastic fairness queueing work. This crate supplies a
//! family of such functions behind the [`KeyHasher`] trait and, in
//! [`quality`], the statistics needed to compare them the way Jain did:
//! chain-length distributions, χ² uniformity, and expected search cost.
//!
//! # Example
//!
//! ```
//! use tcpdemux_hash::{KeyHasher, XorFold};
//! use tcpdemux_pcb::ConnectionKey;
//! use std::net::Ipv4Addr;
//!
//! let key = ConnectionKey::new(
//!     Ipv4Addr::new(10, 0, 0, 1), 1521,
//!     Ipv4Addr::new(10, 0, 3, 7), 40111,
//! );
//! let hasher = XorFold;
//! let chain = hasher.bucket(&key, 19); // the paper's default of 19 chains
//! assert!(chain < 19);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod funcs;
pub mod quality;
pub mod steer;

pub use funcs::{AddFold, Crc32, Multiplicative, Pearson, Pjw, RemotePortOnly, XorFold};
pub use steer::{shard_for, symmetric_hash};

use tcpdemux_pcb::ConnectionKey;

/// A hash function over connection keys.
///
/// Implementations must be pure: the same key always hashes to the same
/// value. `bucket` reduces the 32-bit hash to a chain index. `Send`
/// because demultiplexers embed their hasher and shard ownership moves
/// between threads in the sharded runtime.
pub trait KeyHasher: Send {
    /// Hash a connection key to 32 bits.
    fn hash(&self, key: &ConnectionKey) -> u32;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Reduce the hash to a chain index in `[0, chains)`.
    ///
    /// Uses modulo reduction, as the 1992-era stacks did. `chains` must be
    /// nonzero.
    fn bucket(&self, key: &ConnectionKey, chains: usize) -> usize {
        debug_assert!(chains > 0, "bucket count must be nonzero");
        (self.hash(key) as usize) % chains
    }
}

impl<T: KeyHasher + Sync + ?Sized> KeyHasher for &T {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        (**self).hash(key)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// All built-in hashers, for sweep experiments.
pub fn all_hashers() -> Vec<Box<dyn KeyHasher>> {
    vec![
        Box::new(XorFold),
        Box::new(AddFold),
        Box::new(Multiplicative),
        Box::new(Crc32::new()),
        Box::new(Pearson::new()),
        Box::new(Pjw),
        Box::new(RemotePortOnly),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u32) -> ConnectionKey {
        ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1521,
            Ipv4Addr::from(0x0a00_0000 | n),
            40000 + (n % 1000) as u16,
        )
    }

    #[test]
    fn bucket_is_in_range() {
        for hasher in all_hashers() {
            for n in 0..500 {
                for chains in [1usize, 2, 19, 51, 100] {
                    assert!(hasher.bucket(&key(n), chains) < chains, "{}", hasher.name());
                }
            }
        }
    }

    #[test]
    fn hash_is_deterministic() {
        for hasher in all_hashers() {
            let k = key(42);
            assert_eq!(hasher.hash(&k), hasher.hash(&k), "{}", hasher.name());
        }
    }

    #[test]
    fn reference_impl_delegates() {
        let k = key(1);
        let h = XorFold;
        let r: &dyn KeyHasher = &h;
        assert_eq!(r.hash(&k), h.hash(&k));
        assert_eq!(h.name(), "xor-fold");
        assert_eq!(h.bucket(&k, 19), h.bucket(&k, 19));
    }

    #[test]
    fn names_are_unique() {
        let hashers = all_hashers();
        let mut names: Vec<_> = hashers.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), hashers.len());
    }
}
