//! RSS-style symmetric flow steering.
//!
//! A sharded stack runtime must send *both* directions of a connection to
//! the same shard: the SYN a listener sees and the SYN-ACK the client
//! sends back describe the same flow with the endpoints swapped. Classic
//! Toeplitz RSS achieves this with a specially-structured key; here we
//! get the same property structurally, by canonicalizing the key before
//! hashing — the (address, port) endpoint pair is sorted, so a key and
//! its [`reversed`](ConnectionKey::reversed) twin collapse to identical
//! words before [`Multiplicative`] (the strongest mixer in [`crate`]'s
//! family per the χ² study) ever sees them.
//!
//! Because canonicalization is symmetric in the two *endpoints* — not in
//! "local" vs "remote" — two hosts running the same shard count also
//! agree on the shard index for a given flow, which the shard-placement
//! tests exploit.

use crate::{KeyHasher, Multiplicative};
use tcpdemux_pcb::ConnectionKey;

/// Hash a connection key identically in both flow directions:
/// `symmetric_hash(k) == symmetric_hash(&k.reversed())` for every key.
pub fn symmetric_hash(key: &ConnectionKey) -> u32 {
    let a = (u32::from(key.local_addr), key.local_port);
    let b = (u32::from(key.remote_addr), key.remote_port);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let canonical = ConnectionKey::new(lo.0.into(), lo.1, hi.0.into(), hi.1);
    Multiplicative.hash(&canonical)
}

/// Reduce the symmetric hash to a shard index in `[0, shards)`.
///
/// Modulo reduction, like [`KeyHasher::bucket`] — the shard counts in
/// play (1–8) are tiny, so bias is negligible. `shards` must be nonzero.
pub fn shard_for(key: &ConnectionKey, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be nonzero");
    (symmetric_hash(key) as usize) % shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(a: [u8; 4], ap: u16, b: [u8; 4], bp: u16) -> ConnectionKey {
        ConnectionKey::new(Ipv4Addr::from(a), ap, Ipv4Addr::from(b), bp)
    }

    #[test]
    fn symmetric_in_both_directions() {
        let k = key([10, 0, 0, 1], 1521, [10, 0, 3, 7], 40111);
        assert_eq!(symmetric_hash(&k), symmetric_hash(&k.reversed()));
        for shards in 1..=8 {
            assert_eq!(shard_for(&k, shards), shard_for(&k.reversed(), shards));
        }
    }

    #[test]
    fn same_addresses_different_ports() {
        // Endpoint ordering must break ties on the port when the
        // addresses are equal (loopback-style flows).
        let k = key([10, 0, 0, 1], 80, [10, 0, 0, 1], 40000);
        assert_eq!(symmetric_hash(&k), symmetric_hash(&k.reversed()));
    }

    #[test]
    fn distinct_flows_spread() {
        // Not a uniformity proof (quality.rs does that for the base
        // hashes) — just a guard against a degenerate constant.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u16 {
            let k = key([10, 0, 0, 2], 40_000 + i, [10, 0, 0, 1], 1521);
            seen.insert(shard_for(&k, 8));
        }
        assert!(
            seen.len() >= 4,
            "64 flows landed on {} shard(s)",
            seen.len()
        );
    }
}
