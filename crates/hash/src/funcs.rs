//! The hash function implementations.
//!
//! All of these are period-appropriate: they are the schemes Jain's 1989
//! study compared (folding, CRC, bit extraction) plus multiplicative
//! hashing (Knuth) and Pearson's 1990 byte-table hash. None require
//! multiplies wider than 32 bits or tables larger than 1 KiB — realistic
//! for the kernels of the era and still fast today.

use crate::KeyHasher;
use tcpdemux_pcb::ConnectionKey;

/// XOR-folding of the three 32-bit key words, then folding the halves.
///
/// This is the classic TCP/IP PCB hash (and what Sequent's product used, up
/// to constants): cheap, and good whenever client addresses or ports vary
/// in their low bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorFold;

impl KeyHasher for XorFold {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        let [a, b, c] = key.as_words();
        let x = a ^ b ^ c;
        // Fold to 16 bits so the modulo sees mixing from both halves.
        (x >> 16) ^ (x & 0xffff)
    }

    fn name(&self) -> &'static str {
        "xor-fold"
    }
}

/// Additive folding: sum the key words with wrapping arithmetic.
///
/// Slightly better than XOR at separating keys that differ in two fields
/// that XOR would cancel (e.g. mirrored address pairs).
#[derive(Debug, Clone, Copy, Default)]
pub struct AddFold;

impl KeyHasher for AddFold {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        let [a, b, c] = key.as_words();
        let x = a.wrapping_add(b).wrapping_add(c);
        x.wrapping_add(x >> 16)
    }

    fn name(&self) -> &'static str {
        "add-fold"
    }
}

/// Multiplicative (Fibonacci) hashing, Knuth §6.4: multiply by
/// 2654435769 = ⌊2³²/φ⌋ and mix. Strong avalanche for sequential inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Multiplicative;

impl KeyHasher for Multiplicative {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        const PHI: u32 = 0x9e37_79b9;
        let [a, b, c] = key.as_words();
        let mut h = a.wrapping_mul(PHI);
        h ^= h >> 15;
        h = h.wrapping_add(b).wrapping_mul(PHI);
        h ^= h >> 15;
        h = h.wrapping_add(c).wrapping_mul(PHI);
        h ^ (h >> 16)
    }

    fn name(&self) -> &'static str {
        "multiplicative"
    }
}

/// Table-driven CRC-32 (IEEE 802.3 polynomial, reflected) over the twelve
/// key bytes. The gold standard in Jain's comparison.
#[derive(Debug, Clone)]
pub struct Crc32 {
    table: [u32; 256],
}

impl Crc32 {
    /// Build the 256-entry lookup table for the reflected polynomial
    /// `0xEDB88320`.
    pub fn new() -> Self {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        Self { table }
    }

    /// CRC-32 of an arbitrary byte slice (exposed for tests against known
    /// vectors).
    pub fn crc(&self, data: &[u8]) -> u32 {
        let mut crc = 0xffff_ffffu32;
        for &byte in data {
            let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
            crc = (crc >> 8) ^ self.table[idx];
        }
        !crc
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher for Crc32 {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        self.crc(&key.as_bytes())
    }

    fn name(&self) -> &'static str {
        "crc32"
    }
}

/// Pearson hashing (CACM 1990): an 8-bit table-permutation hash, widened to
/// 32 bits by running four lanes with different initial values.
#[derive(Debug, Clone)]
pub struct Pearson {
    table: [u8; 256],
}

impl Pearson {
    /// Build the permutation table. The permutation is a fixed multiplier
    /// walk (97 is coprime to 256), matching Pearson's requirement of a
    /// full permutation of 0..=255.
    pub fn new() -> Self {
        let mut table = [0u8; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            *entry = (i as u8).wrapping_mul(97).wrapping_add(31);
        }
        Self { table }
    }

    fn lane(&self, seed: u8, data: &[u8]) -> u8 {
        let mut h = seed;
        for &byte in data {
            h = self.table[usize::from(h ^ byte)];
        }
        h
    }
}

impl Default for Pearson {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher for Pearson {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        let bytes = key.as_bytes();
        let l0 = self.lane(0, &bytes);
        let l1 = self.lane(1, &bytes);
        let l2 = self.lane(2, &bytes);
        let l3 = self.lane(3, &bytes);
        u32::from_be_bytes([l0, l1, l2, l3])
    }

    fn name(&self) -> &'static str {
        "pearson"
    }
}

/// The PJW hash (Peter J. Weinberger, as shipped in System V's ELF
/// object-file format, 1988) over the twelve key bytes — another hash an
/// early-1990s kernel engineer would actually have reached for.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pjw;

impl KeyHasher for Pjw {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        let mut h: u32 = 0;
        for &byte in &key.as_bytes() {
            h = (h << 4).wrapping_add(u32::from(byte));
            let high = h & 0xf000_0000;
            if high != 0 {
                h ^= high >> 24;
                h &= !high;
            }
        }
        h
    }

    fn name(&self) -> &'static str {
        "pjw-elf"
    }
}

/// Bit extraction of only the remote port — deliberately poor.
///
/// Jain's study shows why naive bit extraction fails when the extracted
/// field is structured; clients behind the same gateway often share port
/// ranges. Kept as the negative control in the quality experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemotePortOnly;

impl KeyHasher for RemotePortOnly {
    fn hash(&self, key: &ConnectionKey) -> u32 {
        u32::from(key.remote_port)
    }

    fn name(&self) -> &'static str {
        "remote-port-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(remote: u32, rport: u16) -> ConnectionKey {
        ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1521,
            Ipv4Addr::from(remote),
            rport,
        )
    }

    #[test]
    fn crc32_known_vectors() {
        let crc = Crc32::new();
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc.crc(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc.crc(b""), 0);
    }

    #[test]
    fn xor_fold_mixes_both_halves() {
        // Keys differing only in the high address bits must still differ.
        let a = XorFold.hash(&key(0x0a00_0001, 40000));
        let b = XorFold.hash(&key(0x8a00_0001, 40000));
        assert_ne!(a, b);
    }

    #[test]
    fn add_fold_separates_mirrored_keys() {
        // local/remote swapped keys XOR identically word-wise; AddFold may
        // also collide on some, but must not collide on this pair where the
        // port word differs.
        let k1 = ConnectionKey::new(Ipv4Addr::new(1, 1, 1, 1), 10, Ipv4Addr::new(2, 2, 2, 2), 20);
        let k2 = ConnectionKey::new(Ipv4Addr::new(2, 2, 2, 2), 20, Ipv4Addr::new(1, 1, 1, 1), 10);
        assert_ne!(AddFold.hash(&k1), AddFold.hash(&k2));
    }

    #[test]
    fn multiplicative_avalanches_sequential_inputs() {
        // Sequential client addresses should land far apart.
        let h0 = Multiplicative.hash(&key(0x0a00_0000, 40000));
        let h1 = Multiplicative.hash(&key(0x0a00_0001, 40000));
        let differing = (h0 ^ h1).count_ones();
        assert!(differing >= 8, "only {differing} bits differ");
    }

    #[test]
    fn pearson_table_is_permutation() {
        let p = Pearson::new();
        let mut seen = [false; 256];
        for &v in p.table.iter() {
            assert!(!seen[usize::from(v)], "duplicate table entry {v}");
            seen[usize::from(v)] = true;
        }
    }

    #[test]
    fn pearson_lanes_differ() {
        let p = Pearson::new();
        let h = p.hash(&key(0x0a00_0001, 40000));
        let bytes = h.to_be_bytes();
        // All four lanes identical would mean the seed is being ignored.
        assert!(!(bytes[0] == bytes[1] && bytes[1] == bytes[2] && bytes[2] == bytes[3]));
    }

    #[test]
    fn remote_port_only_is_port() {
        assert_eq!(RemotePortOnly.hash(&key(0x0a00_0001, 1234)), 1234);
    }

    #[test]
    fn pjw_high_nibble_never_accumulates() {
        // The ELF-hash invariant: the top nibble is always folded away,
        // so the hash stays within 28 bits.
        for n in 0..1000u32 {
            let h = Pjw.hash(&key(0x0a00_0000 + n, (40_000 + n % 1000) as u16));
            assert_eq!(h & 0xf000_0000, 0, "n={n}: {h:#x}");
        }
    }

    #[test]
    fn pjw_distinguishes_neighbors() {
        assert_ne!(
            Pjw.hash(&key(0x0a00_0001, 40_000)),
            Pjw.hash(&key(0x0a00_0002, 40_000))
        );
    }

    #[test]
    fn default_constructors() {
        let _ = Crc32::default();
        let _ = Pearson::default();
        let _ = XorFold;
    }

    #[test]
    fn hashers_spread_the_paper_population() {
        // 2,000 clients on distinct addresses, same server and same client
        // port — every hasher except the negative control must fill all 19
        // buckets. (With ports *correlated* to addresses, XOR-folding is
        // known to clump; see `quality` for that experiment.)
        for hasher in crate::all_hashers() {
            if hasher.name() == "remote-port-only" {
                continue;
            }
            let mut used = [false; 19];
            for n in 0..2000u32 {
                used[hasher.bucket(&key(0x0a00_0000 + n, 40000), 19)] = true;
            }
            let count = used.iter().filter(|&&u| u).count();
            assert_eq!(count, 19, "{} left buckets empty", hasher.name());
        }
    }

    #[test]
    fn xor_fold_clumps_on_correlated_ports() {
        // Documented weakness: when the client port is an affine function
        // of the client address, the XOR of the two cancels structure and
        // XOR-fold covers fewer residues mod 19. This is the motivation for
        // keeping stronger hashes (CRC, multiplicative) in the family.
        let mut xor_used = [false; 19];
        let mut mul_used = [false; 19];
        for n in 0..2000u32 {
            let k = key(0x0a00_0000 + n, 40000 + (n % 512) as u16);
            xor_used[XorFold.bucket(&k, 19)] = true;
            mul_used[Multiplicative.bucket(&k, 19)] = true;
        }
        let xor_count = xor_used.iter().filter(|&&u| u).count();
        let mul_count = mul_used.iter().filter(|&&u| u).count();
        assert_eq!(mul_count, 19);
        assert!(
            xor_count < 19,
            "expected xor-fold to clump on correlated keys, filled {xor_count}"
        );
    }
}
