//! Hash-quality statistics in the style of Jain (DEC-TR-593, 1989).
//!
//! Given a hash function, a key population, and a chain count, compute the
//! chain-length distribution and the figures of merit that matter for PCB
//! lookup: the χ² statistic against a uniform spread, and the **expected
//! search cost** — the average number of PCBs examined by an unsuccessful
//! ... rather, by a successful search for a uniformly-chosen key, which is
//! `Σ cᵢ(cᵢ+1)/2 / n` for chain lengths `cᵢ`.

use crate::KeyHasher;
use tcpdemux_pcb::ConnectionKey;

/// Distribution statistics for one hasher over one key population.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStats {
    /// Name of the hasher that produced these statistics.
    pub hasher: &'static str,
    /// Number of chains (`H` in the paper).
    pub chains: usize,
    /// Number of keys hashed (`N` in the paper).
    pub keys: usize,
    /// Per-chain occupancy.
    pub lengths: Vec<usize>,
}

impl ChainStats {
    /// Hash every key and collect the chain occupancy.
    pub fn collect<H: KeyHasher + ?Sized>(
        hasher: &H,
        keys: impl IntoIterator<Item = ConnectionKey>,
        chains: usize,
    ) -> Self {
        assert!(chains > 0, "chain count must be nonzero");
        let mut lengths = vec![0usize; chains];
        let mut count = 0usize;
        for key in keys {
            lengths[hasher.bucket(&key, chains)] += 1;
            count += 1;
        }
        Self {
            hasher: hasher.name(),
            chains,
            keys: count,
            lengths,
        }
    }

    /// The longest chain.
    pub fn max_length(&self) -> usize {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Mean occupancy `N/H`.
    pub fn mean_length(&self) -> f64 {
        self.keys as f64 / self.chains as f64
    }

    /// Number of empty chains.
    pub fn empty_chains(&self) -> usize {
        self.lengths.iter().filter(|&&l| l == 0).count()
    }

    /// Pearson's χ² statistic against the uniform expectation `N/H`.
    ///
    /// For a good hash on random keys this is close to the χ² distribution
    /// with `H − 1` degrees of freedom (mean `H − 1`).
    pub fn chi_square(&self) -> f64 {
        let expected = self.mean_length();
        if expected == 0.0 {
            return 0.0;
        }
        self.lengths
            .iter()
            .map(|&l| {
                let d = l as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    /// Expected number of entries examined by a *successful* linear search
    /// of the chain holding a uniformly-chosen key:
    /// `Σ cᵢ(cᵢ+1)/2 / N`.
    ///
    /// For a perfectly uniform spread this approaches `(N/H + 1)/2`, the
    /// miss penalty in the paper's Equation 18.
    pub fn expected_search_cost(&self) -> f64 {
        if self.keys == 0 {
            return 0.0;
        }
        let total: f64 = self
            .lengths
            .iter()
            .map(|&c| {
                let c = c as f64;
                c * (c + 1.0) / 2.0
            })
            .sum();
        total / self.keys as f64
    }

    /// A normalized load-balance score in `(0, 1]`: the uniform search cost
    /// divided by the observed search cost. 1.0 means perfectly uniform.
    pub fn balance(&self) -> f64 {
        if self.keys == 0 {
            return 1.0;
        }
        let n = self.keys as f64;
        let h = self.chains as f64;
        // Ideal cost when keys are spread as evenly as integers allow.
        let ideal = (n / h + 1.0) / 2.0;
        (ideal / self.expected_search_cost()).min(1.0)
    }
}

/// Convenience: generate the paper's key population — `n` clients with
/// distinct addresses (and a small port range) all talking to one server
/// port. Deterministic; independent of any RNG so results are exactly
/// reproducible.
pub fn tpca_key_population(n: usize) -> Vec<ConnectionKey> {
    use std::net::Ipv4Addr;
    (0..n)
        .map(|i| {
            // Clients allocated sequentially across subnets, as terminal
            // concentrators of the era did. Addition (not OR) lets
            // `subnet` carry past the second octet, so the population
            // stays injective beyond 64,000 keys (subnet ≥ 256 used to
            // alias subnet − 256, silently shrinking every "1M-key"
            // population to 64k distinct keys); the first 64,000 keys
            // are bit-identical to the OR form since the fields are
            // disjoint there.
            let host = (i % 250 + 2) as u32;
            let subnet = (i / 250) as u32;
            ConnectionKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                1521,
                Ipv4Addr::from((10 << 24) + (1 << 16) + (subnet << 8) + host),
                (40_000 + (i % 1_000)) as u16,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Crc32, Multiplicative, RemotePortOnly, XorFold};

    #[test]
    fn counts_and_lengths_sum() {
        let keys = tpca_key_population(2000);
        let stats = ChainStats::collect(&XorFold, keys, 19);
        assert_eq!(stats.keys, 2000);
        assert_eq!(stats.chains, 19);
        assert_eq!(stats.lengths.iter().sum::<usize>(), 2000);
        assert_eq!(stats.hasher, "xor-fold");
    }

    #[test]
    fn uniform_population_statistics() {
        let keys = tpca_key_population(1900);
        let stats = ChainStats::collect(&Multiplicative, keys, 19);
        assert!((stats.mean_length() - 100.0).abs() < 1e-9);
        assert_eq!(stats.empty_chains(), 0);
        // A decent hash keeps the longest chain within ~2x the mean here.
        assert!(stats.max_length() < 200, "max {}", stats.max_length());
        // Search cost should be near the ideal (100+1)/2 = 50.5.
        let cost = stats.expected_search_cost();
        assert!((40.0..70.0).contains(&cost), "cost {cost}");
        assert!(stats.balance() > 0.7, "balance {}", stats.balance());
    }

    #[test]
    fn degenerate_hash_is_pessimal() {
        // All 2,000 TPC/A clients of one concentrator can share a port
        // range; hashing on the port only piles them into few chains.
        let keys: Vec<_> = tpca_key_population(2000)
            .into_iter()
            .map(|mut k| {
                k.remote_port = 40_000; // worst case: identical ports
                k
            })
            .collect();
        let stats = ChainStats::collect(&RemotePortOnly, keys, 19);
        assert_eq!(stats.max_length(), 2000);
        assert_eq!(stats.empty_chains(), 18);
        // Search cost equals a single linear list: (N+1)/2.
        assert!((stats.expected_search_cost() - 1000.5).abs() < 1e-9);
        assert!(stats.balance() < 0.1);
    }

    #[test]
    fn chi_square_discriminates() {
        // Use the hostile population: every client behind one concentrator
        // reuses the same source port, so port-only hashing collapses while
        // CRC over the full key stays uniform.
        let keys: Vec<_> = tpca_key_population(2000)
            .into_iter()
            .map(|mut k| {
                k.remote_port = 40_000;
                k
            })
            .collect();
        let good = ChainStats::collect(&Crc32::new(), keys.clone(), 19);
        let bad = ChainStats::collect(&RemotePortOnly, keys, 19);
        assert!(
            good.chi_square() < bad.chi_square(),
            "good {} !< bad {}",
            good.chi_square(),
            bad.chi_square()
        );
    }

    #[test]
    fn empty_population() {
        let stats = ChainStats::collect(&XorFold, Vec::new(), 19);
        assert_eq!(stats.keys, 0);
        assert_eq!(stats.max_length(), 0);
        assert_eq!(stats.expected_search_cost(), 0.0);
        assert_eq!(stats.chi_square(), 0.0);
        assert_eq!(stats.balance(), 1.0);
    }

    #[test]
    fn single_chain_is_linear_list() {
        let keys = tpca_key_population(100);
        let stats = ChainStats::collect(&XorFold, keys, 1);
        assert_eq!(stats.lengths, vec![100]);
        assert!((stats.expected_search_cost() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn population_keys_are_distinct() {
        let keys = tpca_key_population(10_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn population_stays_distinct_past_the_subnet_octet() {
        // Regression: with OR-composed addresses, subnet 256 aliased
        // subnet 0 (the shifted subnet landed on the already-set bit
        // 16), so every population larger than 64,000 keys silently
        // repeated with period 64,000.
        let keys = tpca_key_population(200_000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
        assert_ne!(keys[0], keys[64_000]);
    }
}
