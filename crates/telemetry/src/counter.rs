//! The fixed, enumerated monotonic counter set.
//!
//! Counters are a fixed array indexed by [`CounterId`], so incrementing
//! never allocates and every export carries the same counters in the
//! same order — a stable schema the golden-file gate in `verify.sh` can
//! diff against.

use core::fmt;

/// Identity of one monotonic counter.
///
/// The set covers the paper's demultiplexing metrics plus the stack's
/// connection-lifecycle and loss-recovery machinery. Adding a variant
/// extends the export schema; `ALL` and `name()` must stay in sync
/// (a test pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// Demultiplexer lookups performed.
    Lookups,
    /// Lookups satisfied from a one-entry cache.
    CacheHits,
    /// Lookups that found a PCB.
    DemuxHits,
    /// Lookups that found no PCB.
    DemuxMisses,
    /// Total PCBs examined across all lookups (the paper's cost metric).
    PcbsExamined,
    /// Connections inserted into the demultiplexer (opens).
    ConnOpened,
    /// Connections removed (all causes; see [`CloseCause`]).
    ///
    /// [`CloseCause`]: crate::CloseCause
    ConnClosed,
    /// Connections removed abnormally (reset, local abort, or timeout).
    ConnAborted,
    /// Segments retransmitted after an RTO expiry.
    Retransmits,
    /// RTO expiries that backed the timer off (doubled the wait).
    RtoBackoffs,
    /// Connections aborted after exhausting the retransmission budget.
    TimeoutAborts,
    /// Receive batches processed.
    Batches,
    /// Batched frames re-looked-up after a mid-batch table change.
    BatchRelookups,
    /// Demux chain nodes retired to the epoch runtime (unlinked, awaiting
    /// a grace period).
    EpochRetired,
    /// Retired nodes whose grace period elapsed and were recycled.
    EpochReclaimed,
    /// Global epoch advances of the reclamation runtime.
    EpochAdvances,
    /// Entries displaced to their alternate bucket by cuckoo inserts
    /// (kicks), including displacements performed while rehashing.
    CuckooKicks,
    /// Cuckoo inserts whose bounded kick search found no vacancy — the
    /// eviction-loop signal that forces a grow-and-rehash.
    CuckooEvictionLoops,
    /// Segments re-emitted by fast retransmit (3 duplicate ACKs) or a
    /// NewReno partial-ACK head re-emission — loss repaired without an
    /// RTO expiry.
    FastRetransmits,
    /// Pure ACKs emitted by the delayed-ACK machinery (timer expiry or
    /// the every-N segment coalescing threshold).
    DelayedAcks,
    /// Zero-window probe segments sent while the peer's advertised
    /// window was closed.
    ZeroWindowProbes,
    /// Transmit polls that found queued data but a closed peer window
    /// (rwnd exhausted before cwnd).
    RwndStalls,
    /// Lookups rejected by the fingerprint front filter without touching
    /// the backing demultiplexer (guaranteed misses).
    FrontRejects,
    /// Front-filter passes whose backing lookup then missed — the
    /// filter's false positives (fingerprint collisions).
    FrontFalsePositives,
}

impl CounterId {
    /// Every counter, in export order.
    pub const ALL: [CounterId; 24] = [
        CounterId::Lookups,
        CounterId::CacheHits,
        CounterId::DemuxHits,
        CounterId::DemuxMisses,
        CounterId::PcbsExamined,
        CounterId::ConnOpened,
        CounterId::ConnClosed,
        CounterId::ConnAborted,
        CounterId::Retransmits,
        CounterId::RtoBackoffs,
        CounterId::TimeoutAborts,
        CounterId::Batches,
        CounterId::BatchRelookups,
        CounterId::EpochRetired,
        CounterId::EpochReclaimed,
        CounterId::EpochAdvances,
        CounterId::CuckooKicks,
        CounterId::CuckooEvictionLoops,
        CounterId::FastRetransmits,
        CounterId::DelayedAcks,
        CounterId::ZeroWindowProbes,
        CounterId::RwndStalls,
        CounterId::FrontRejects,
        CounterId::FrontFalsePositives,
    ];

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Lookups => "lookups",
            CounterId::CacheHits => "cache_hits",
            CounterId::DemuxHits => "demux_hits",
            CounterId::DemuxMisses => "demux_misses",
            CounterId::PcbsExamined => "pcbs_examined",
            CounterId::ConnOpened => "conn_opened",
            CounterId::ConnClosed => "conn_closed",
            CounterId::ConnAborted => "conn_aborted",
            CounterId::Retransmits => "retransmits",
            CounterId::RtoBackoffs => "rto_backoffs",
            CounterId::TimeoutAborts => "timeout_aborts",
            CounterId::Batches => "batches",
            CounterId::BatchRelookups => "batch_relookups",
            CounterId::EpochRetired => "epoch_retired",
            CounterId::EpochReclaimed => "epoch_reclaimed",
            CounterId::EpochAdvances => "epoch_advances",
            CounterId::CuckooKicks => "cuckoo_kicks",
            CounterId::CuckooEvictionLoops => "cuckoo_eviction_loops",
            CounterId::FastRetransmits => "fast_retransmits",
            CounterId::DelayedAcks => "delayed_acks",
            CounterId::ZeroWindowProbes => "zero_window_probes",
            CounterId::RwndStalls => "rwnd_stalls",
            CounterId::FrontRejects => "front_rejects",
            CounterId::FrontFalsePositives => "front_false_positives",
        }
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The counter array: one `u64` per [`CounterId`], nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    values: [u64; CounterId::ALL.len()],
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self {
            values: [0; CounterId::ALL.len()],
        }
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.values[id as usize] += delta;
    }

    /// Increment a counter by one.
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id as usize]
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        self.values = [0; CounterId::ALL.len()];
    }

    /// Iterate `(id, value)` in export order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        CounterId::ALL.iter().map(move |&id| (id, self.get(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_are_distinct_and_indexed_in_order() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i, "{id} out of order in ALL");
        }
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for id in CounterId::ALL {
            let name = id.name();
            assert!(seen.insert(name), "duplicate counter name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name} not snake_case"
            );
        }
    }

    #[test]
    fn add_get_reset() {
        let mut c = Counters::new();
        c.incr(CounterId::Lookups);
        c.add(CounterId::PcbsExamined, 41);
        c.add(CounterId::PcbsExamined, 1);
        assert_eq!(c.get(CounterId::Lookups), 1);
        assert_eq!(c.get(CounterId::PcbsExamined), 42);
        assert_eq!(c.get(CounterId::Retransmits), 0);
        let collected: Vec<(CounterId, u64)> = c.iter().collect();
        assert_eq!(collected.len(), CounterId::ALL.len());
        assert_eq!(collected[0], (CounterId::Lookups, 1));
        c.reset();
        assert!(c.iter().all(|(_, v)| v == 0));
    }
}
