//! A power-of-two histogram of `u32` samples.
//!
//! Born in `tcpdemux-core` as the per-lookup cost histogram and promoted
//! here so every subsystem records distributions the same way. The mean
//! hides the paper's §3.4 pitfall — "the hit ratio is only part of the
//! story; ... the miss penalty dominates" — a structure can have a
//! wonderful average with a terrible tail. This histogram records each
//! sample in log₂ buckets so experiments can report p50/p90/p99/max
//! alongside the mean.

use core::fmt;

/// Number of log₂ buckets: bucket `i` holds values in `[2^(i−1), 2^i)`,
/// bucket 0 holds the value 0, bucket 1 holds the value 1. 32 buckets
/// cover the full `u32` range.
const BUCKETS: usize = 33;

/// Histogram of `u32` samples in log₂ buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u32,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket(value: u32) -> usize {
        match value {
            0 => 0,
            v => 1 + (31 - v.leading_zeros()) as usize,
        }
    }

    /// The lower bound of a bucket's value range.
    fn bucket_floor(bucket: usize) -> u32 {
        match bucket {
            0 => 0,
            b => 1u32 << (b - 1),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u32) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.sum += u64::from(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of all recorded samples (with [`count`](Self::count),
    /// lets exporters stay integer-only and readers derive the mean).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// The occupied buckets, as `(bucket_floor, count)` pairs in
    /// ascending floor order — the exporter-facing view of the shape.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(bucket, &count)| (Self::bucket_floor(bucket), count))
    }

    /// The value at quantile `q ∈ [0, 1]`, resolved to the lower bound of
    /// its bucket (so p50/p99 are conservative, never inflated). Returns
    /// 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The top bucket's floor can exceed the true max.
                return Self::bucket_floor(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} p50={} p90={} p99={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u32::MAX), 32);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = Histogram::new();
        for v in [1u32, 1, 1, 1000] {
            h.record(v);
        }
        assert!((h.mean() - 250.75).abs() < 1e-12);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1003);
    }

    #[test]
    fn quantiles_capture_the_tail() {
        // 99 cheap lookups, 1 catastrophic one: the mean looks fine, the
        // p99/max expose the miss penalty.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(2000);
        assert_eq!(h.quantile(0.50), 1);
        assert_eq!(h.quantile(0.90), 1);
        assert!(h.quantile(0.995) >= 1024);
        assert_eq!(h.max(), 2000);
        assert!(h.mean() < 25.0);
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u32 {
            h.record(v);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let val = h.quantile(q);
            assert!(val >= prev, "q={q}");
            prev = val;
        }
        // Quantiles resolve to bucket floors (conservative): p100 of
        // 0..=999 is the floor of 999's bucket, 512.
        assert_eq!(h.quantile(1.0), 512);
        assert_eq!(h.max(), 999);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u32, 5, 9] {
            a.record(v);
        }
        for v in [100u32, 200] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.max(), 200);
        assert!((merged.mean() - 63.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_buckets_cover_every_sample() {
        let mut h = Histogram::new();
        for v in [0u32, 1, 1, 7, 100] {
            h.record(v);
        }
        let buckets: Vec<(u32, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 2), (4, 1), (64, 1)]);
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn display_summary() {
        let mut h = Histogram::new();
        h.record(7);
        let s = h.to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("max=7"), "{s}");
    }

    /// The quantile at any q is never above the max and never below
    /// the min's bucket floor.
    #[test]
    fn prop_quantile_bounded() {
        check("histogram_prop_quantile_bounded", |rng| {
            let values = rng.vec_of(1, 200, |r| r.u32_below(100_000));
            let q = rng.f64();
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let got = h.quantile(q);
            assert!(got <= h.max());
        });
    }

    /// Mean is exact regardless of bucketing.
    #[test]
    fn prop_mean_exact() {
        check("histogram_prop_mean_exact", |rng| {
            let values = rng.vec_of(1, 200, |r| r.u32_below(100_000));
            let mut h = Histogram::new();
            let mut sum = 0u64;
            for &v in &values {
                h.record(v);
                sum += u64::from(v);
            }
            let expect = sum as f64 / values.len() as f64;
            assert!((h.mean() - expect).abs() < 1e-9);
        });
    }

    /// Every value lands in the bucket whose range contains it:
    /// `floor ≤ v`, and `v < 2·floor` (or `v ≤ 1` for the two unit
    /// buckets). Pins the bucketing before any exporter depends on it.
    #[test]
    fn prop_bucket_boundaries_contain_their_values() {
        check("histogram_prop_bucket_boundaries", |rng| {
            let v = if rng.bool() {
                rng.u32()
            } else {
                rng.u32_below(4096)
            };
            let bucket = Histogram::bucket(v);
            let floor = Histogram::bucket_floor(bucket);
            assert!(floor <= v, "floor {floor} > value {v}");
            if bucket >= 2 {
                assert!(
                    u64::from(v) < 2 * u64::from(floor),
                    "value {v} above bucket [{}..{})",
                    floor,
                    2 * u64::from(floor),
                );
            } else {
                // Buckets 0 and 1 hold exactly the values 0 and 1.
                assert_eq!(v as usize, bucket);
            }
            // And a quantile query for a single-sample histogram lands on
            // that bucket's floor.
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.quantile(0.5), floor.min(v));
        });
    }

    /// Merge is associative and commutative, and merging equals
    /// recording the concatenated sample stream — so sharded recorders
    /// can combine in any order without changing any report.
    #[test]
    fn prop_merge_is_associative_and_matches_concatenation() {
        check("histogram_prop_merge_associative", |rng| {
            let streams: Vec<Vec<u32>> = (0..3)
                .map(|_| rng.vec_of(0, 50, |r| r.u32_below(100_000)))
                .collect();
            let hists: Vec<Histogram> = streams
                .iter()
                .map(|vs| {
                    let mut h = Histogram::new();
                    for &v in vs {
                        h.record(v);
                    }
                    h
                })
                .collect();

            // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
            let mut left = hists[0].clone();
            left.merge(&hists[1]);
            left.merge(&hists[2]);
            let mut bc = hists[1].clone();
            bc.merge(&hists[2]);
            let mut right = hists[0].clone();
            right.merge(&bc);
            assert_eq!(left, right);

            // a ⊔ b == b ⊔ a
            let mut ab = hists[0].clone();
            ab.merge(&hists[1]);
            let mut ba = hists[1].clone();
            ba.merge(&hists[0]);
            assert_eq!(ab, ba);

            // Merging == recording the concatenated stream.
            let mut concat = Histogram::new();
            for vs in &streams {
                for &v in vs {
                    concat.record(v);
                }
            }
            assert_eq!(left, concat);
        });
    }
}
