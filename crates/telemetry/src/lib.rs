//! Structured telemetry for the tcpdemux workspace.
//!
//! The paper's figure of merit — PCBs examined per received packet — is a
//! *distribution*, not a mean (§3.4: "the hit ratio is only part of the
//! story; ... the miss penalty dominates"). This crate is the one
//! observability surface every experiment records into and reports from:
//!
//! * [`Histogram`] — fixed log₂-bucket sample distributions (promoted
//!   from `tcpdemux-core`, where it was born as the per-lookup cost
//!   histogram);
//! * [`CounterId`]/monotonic counters — a fixed, enumerated counter set,
//!   so exports have a stable schema;
//! * [`Event`] + a bounded ring buffer — the most recent N structured
//!   events (demux hit/miss with examined counts, connection lifecycle,
//!   retransmission and RTO backoff, batch re-lookups);
//! * [`Recorder`] — the cheap, cloneable handle the hot paths record
//!   through. Recording never allocates: counters and histograms are
//!   fixed arrays, the event ring is pre-allocated and overwrites its
//!   oldest entry when full.
//! * [`Snapshot`] — an owned, `Clone`-able copy of everything above,
//!   with deterministic text and JSON-lines exporters (integer-only
//!   fields, fixed ordering) so same-seed runs export byte-identical
//!   telemetry.
//!
//! # Example
//!
//! ```
//! use tcpdemux_telemetry::{CounterId, Event, HistogramId, Recorder};
//!
//! let recorder = Recorder::new();
//! recorder.demux_lookup(3, true, false);           // examined 3, found, no cache hit
//! recorder.event(Event::ConnOpen);
//! recorder.observe(HistogramId::RxBatchSize, 32);
//!
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter(CounterId::Lookups), 1);
//! assert_eq!(snap.counter(CounterId::PcbsExamined), 3);
//! assert_eq!(snap.histogram(HistogramId::Examined).count(), 1);
//! assert_eq!(snap.events().len(), 2);
//! assert!(snap.to_json_lines().starts_with("{\"type\":"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
mod event;
mod histogram;
mod recorder;
mod snapshot;

pub use counter::{CounterId, Counters};
pub use event::{CloseCause, Event, EventRing, SeqEvent};
pub use histogram::Histogram;
pub use recorder::{HistogramId, Recorder, DEFAULT_RING_CAPACITY};
pub use snapshot::Snapshot;
