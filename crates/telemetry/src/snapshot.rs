//! Owned snapshots and their deterministic exporters.

use core::fmt;
use std::fmt::Write as _;

use crate::counter::{CounterId, Counters};
use crate::event::{Event, SeqEvent};
use crate::histogram::Histogram;
use crate::recorder::HistogramId;

/// An owned, independent copy of one recorder's state.
///
/// Snapshots are plain data: cloning one or keeping it across further
/// recording never observes later updates. The exporters are
/// deterministic — fixed ordering, and the JSON form is integer-only
/// (count + sum instead of a floating mean) — so two same-seed runs
/// export byte-identical text.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    counters: Counters,
    histograms: [Histogram; HistogramId::ALL.len()],
    events: Vec<SeqEvent>,
    events_recorded: u64,
    events_dropped: u64,
}

impl Snapshot {
    /// Assemble a snapshot from a recorder's internals (crate-internal;
    /// use [`Recorder::snapshot`](crate::Recorder::snapshot)).
    pub(crate) fn assemble(
        counters: Counters,
        histograms: [Histogram; HistogramId::ALL.len()],
        events: Vec<SeqEvent>,
        events_recorded: u64,
        events_dropped: u64,
    ) -> Self {
        Self {
            counters,
            histograms,
            events,
            events_recorded,
            events_dropped,
        }
    }

    /// An empty snapshot (what a fresh recorder would produce).
    pub fn empty() -> Self {
        Self::assemble(
            Counters::new(),
            std::array::from_fn(|_| Histogram::new()),
            Vec::new(),
            0,
            0,
        )
    }

    /// Value of one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters.get(id)
    }

    /// All counters, in export order.
    pub fn counters(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        self.counters.iter()
    }

    /// One of the fixed histograms.
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id as usize]
    }

    /// The surviving trace events, oldest first.
    pub fn events(&self) -> &[SeqEvent] {
        &self.events
    }

    /// Total events recorded, including any the ring overwrote.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Events lost to ring overwriting.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Merge another snapshot's aggregates into this one (counters add,
    /// histograms merge). Event traces are per-recorder and cannot be
    /// interleaved meaningfully, so only the recorded/dropped totals
    /// combine; this snapshot keeps its own trace entries.
    pub fn merge_aggregates(&mut self, other: &Snapshot) {
        for id in CounterId::ALL {
            self.counters.add(id, other.counters.get(id));
        }
        for id in HistogramId::ALL {
            self.histograms[id as usize].merge(&other.histograms[id as usize]);
        }
        self.events_recorded += other.events_recorded;
        self.events_dropped += other.events_dropped;
    }

    /// The deterministic JSON-lines export: one JSON object per line —
    /// every counter, every histogram, an event-trace header, then every
    /// surviving event. All numeric fields are integers and the ordering
    /// is fixed, so same-seed runs export byte-identical text (the
    /// golden-file gate in `scripts/verify.sh` diffs this).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (id, value) in self.counters.iter() {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                id.name(),
                value
            );
        }
        for id in HistogramId::ALL {
            let h = self.histogram(id);
            let _ = write!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                id.name(),
                h.count(),
                h.sum(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
            for (i, (floor, count)) in h.nonzero_buckets().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{floor},{count}]");
            }
            out.push_str("]}\n");
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"events\",\"recorded\":{},\"dropped\":{}}}",
            self.events_recorded, self.events_dropped
        );
        for entry in &self.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"seq\":{},\"kind\":\"{}\"",
                entry.seq,
                entry.event.kind()
            );
            match entry.event {
                Event::DemuxHit {
                    examined,
                    cache_hit,
                } => {
                    let _ = write!(out, ",\"examined\":{examined},\"cache_hit\":{cache_hit}");
                }
                Event::DemuxMiss { examined } => {
                    let _ = write!(out, ",\"examined\":{examined}");
                }
                Event::ConnClose { cause } => {
                    let _ = write!(out, ",\"cause\":\"{}\"", cause.name());
                }
                Event::Retransmit { attempt } => {
                    let _ = write!(out, ",\"attempt\":{attempt}");
                }
                Event::RtoBackoff {
                    attempts,
                    rto_ticks,
                } => {
                    let _ = write!(out, ",\"attempts\":{attempts},\"rto_ticks\":{rto_ticks}");
                }
                Event::FastRetransmit { dup_acks } => {
                    let _ = write!(out, ",\"dup_acks\":{dup_acks}");
                }
                Event::ConnOpen
                | Event::Timeout
                | Event::BatchRelookup
                | Event::DelayedAck
                | Event::ZeroWindowProbe
                | Event::RwndStall => {}
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Human-oriented text report: counters, histogram summaries (these use
/// the exact floating mean — fine for eyes, not for golden files), and
/// the surviving event trace.
impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (id, value) in self.counters.iter() {
            writeln!(f, "  {:<16} {}", id.name(), value)?;
        }
        writeln!(f, "histograms:")?;
        for id in HistogramId::ALL {
            writeln!(f, "  {:<16} {}", id.name(), self.histogram(id))?;
        }
        writeln!(
            f,
            "events: recorded={} dropped={}",
            self.events_recorded, self.events_dropped
        )?;
        for entry in &self.events {
            writeln!(f, "  [{:>4}] {}", entry.seq, entry.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CloseCause;
    use crate::recorder::Recorder;

    fn sample_recorder() -> Recorder {
        let r = Recorder::new();
        r.demux_lookup(1, true, true);
        r.demux_lookup(19, true, false);
        r.demux_lookup(40, false, false);
        r.batch(32);
        r.event(Event::ConnOpen);
        r.event(Event::RtoBackoff {
            attempts: 2,
            rto_ticks: 24,
        });
        r.event(Event::ConnClose {
            cause: CloseCause::Timeout,
        });
        r
    }

    #[test]
    fn json_lines_schema_is_stable() {
        let snap = sample_recorder().snapshot();
        let text = snap.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        // 24 counters + 7 histograms + 1 events header + 6 events.
        assert_eq!(lines.len(), 24 + 7 + 1 + 6, "{text}");
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"name\":\"lookups\",\"value\":3}"
        );
        assert!(
            lines[24].starts_with(
                "{\"type\":\"histogram\",\"name\":\"examined\",\"count\":3,\"sum\":60,\"max\":40,"
            ),
            "{}",
            lines[24]
        );
        assert!(
            lines[24].contains("\"buckets\":[[1,1],[16,1],[32,1]]"),
            "{}",
            lines[24]
        );
        assert_eq!(
            lines[31],
            "{\"type\":\"events\",\"recorded\":6,\"dropped\":0}"
        );
        assert_eq!(
            lines[32],
            "{\"type\":\"event\",\"seq\":0,\"kind\":\"demux_hit\",\"examined\":1,\"cache_hit\":true}"
        );
        assert_eq!(
            lines[37],
            "{\"type\":\"event\",\"seq\":5,\"kind\":\"conn_close\",\"cause\":\"timeout\"}"
        );
    }

    #[test]
    fn identical_recordings_export_identical_bytes() {
        let a = sample_recorder().snapshot().to_json_lines();
        let b = sample_recorder().snapshot().to_json_lines();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_snapshot_still_exports_full_schema() {
        let text = Snapshot::empty().to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 24 + 7 + 1);
        assert!(lines[25].contains("\"count\":0"));
        assert!(lines[25].contains("\"buckets\":[]"));
    }

    #[test]
    fn merge_aggregates_adds_counters_and_histograms() {
        let mut a = sample_recorder().snapshot();
        let b = sample_recorder().snapshot();
        a.merge_aggregates(&b);
        assert_eq!(a.counter(CounterId::Lookups), 6);
        assert_eq!(a.histogram(HistogramId::Examined).count(), 6);
        assert_eq!(a.events_recorded(), 12);
        // The trace itself stays a's own.
        assert_eq!(a.events().len(), 6);
    }

    #[test]
    fn display_text_mentions_every_section() {
        let text = sample_recorder().snapshot().to_string();
        assert!(text.contains("counters:"), "{text}");
        assert!(text.contains("histograms:"), "{text}");
        assert!(text.contains("events: recorded=6"), "{text}");
        assert!(
            text.contains("rto_backoff attempts=2 rto_ticks=24"),
            "{text}"
        );
    }
}
