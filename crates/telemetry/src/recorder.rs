//! The [`Recorder`] handle that hot paths record through.

use std::sync::{Arc, Mutex};

use crate::counter::{CounterId, Counters};
use crate::event::{CloseCause, Event, EventRing};
use crate::histogram::Histogram;
use crate::snapshot::Snapshot;

/// Identity of one of the fixed sample histograms.
///
/// Like [`CounterId`], the set is closed and array-indexed so recording
/// never allocates and exports have a stable schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum HistogramId {
    /// PCBs examined per demultiplexer lookup — the paper's cost metric,
    /// as a distribution rather than the §3.4 mean-only trap.
    Examined,
    /// Frames per receive batch.
    RxBatchSize,
    /// Re-armed retransmission timeouts, in stack ticks, one sample per
    /// RTO backoff.
    RtoTicks,
    /// Depth of the epoch runtime's deferred-retire list, sampled after
    /// each writer operation's bounded drain.
    EpochDeferred,
    /// Entries displaced per cuckoo insert (0 for the common
    /// free-slot-in-either-bucket case), one sample per insert.
    CuckooInsertKicks,
    /// Congestion-window size in bytes, sampled whenever the congestion
    /// controller moves it — the distribution behind the AIMD sawtooth.
    CwndBytes,
    /// Front-filter slot occupancy in percent of capacity, sampled after
    /// each filter insert — the load level the false-positive rate rides.
    FrontOccupancy,
}

impl HistogramId {
    /// Every histogram, in export order.
    pub const ALL: [HistogramId; 7] = [
        HistogramId::Examined,
        HistogramId::RxBatchSize,
        HistogramId::RtoTicks,
        HistogramId::EpochDeferred,
        HistogramId::CuckooInsertKicks,
        HistogramId::CwndBytes,
        HistogramId::FrontOccupancy,
    ];

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::Examined => "examined",
            HistogramId::RxBatchSize => "rx_batch_size",
            HistogramId::RtoTicks => "rto_ticks",
            HistogramId::EpochDeferred => "epoch_deferred",
            HistogramId::CuckooInsertKicks => "cuckoo_insert_kicks",
            HistogramId::CwndBytes => "cwnd_bytes",
            HistogramId::FrontOccupancy => "front_occupancy",
        }
    }
}

impl core::fmt::Display for HistogramId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one recorder accumulates: fixed counter and histogram
/// arrays plus the pre-allocated event ring.
#[derive(Debug)]
struct Telemetry {
    counters: Counters,
    histograms: [Histogram; HistogramId::ALL.len()],
    ring: EventRing,
}

impl Telemetry {
    fn new(ring_capacity: usize) -> Self {
        Self {
            counters: Counters::new(),
            histograms: std::array::from_fn(|_| Histogram::new()),
            ring: EventRing::with_capacity(ring_capacity),
        }
    }

    /// Record an event and bump its correlated counters/histograms.
    /// Every event kind maps to exactly one counter family, so the
    /// counters, histograms and trace can never drift apart.
    fn event(&mut self, event: Event) {
        match event {
            Event::DemuxHit {
                examined,
                cache_hit,
            } => {
                self.counters.incr(CounterId::Lookups);
                self.counters.incr(CounterId::DemuxHits);
                self.counters
                    .add(CounterId::PcbsExamined, u64::from(examined));
                if cache_hit {
                    self.counters.incr(CounterId::CacheHits);
                }
                self.histograms[HistogramId::Examined as usize].record(examined);
            }
            Event::DemuxMiss { examined } => {
                self.counters.incr(CounterId::Lookups);
                self.counters.incr(CounterId::DemuxMisses);
                self.counters
                    .add(CounterId::PcbsExamined, u64::from(examined));
                self.histograms[HistogramId::Examined as usize].record(examined);
            }
            Event::ConnOpen => self.counters.incr(CounterId::ConnOpened),
            Event::ConnClose { cause } => {
                self.counters.incr(CounterId::ConnClosed);
                if cause != CloseCause::Graceful {
                    self.counters.incr(CounterId::ConnAborted);
                }
            }
            Event::Retransmit { .. } => self.counters.incr(CounterId::Retransmits),
            Event::RtoBackoff { rto_ticks, .. } => {
                self.counters.incr(CounterId::RtoBackoffs);
                self.histograms[HistogramId::RtoTicks as usize]
                    .record(u32::try_from(rto_ticks).unwrap_or(u32::MAX));
            }
            Event::Timeout => self.counters.incr(CounterId::TimeoutAborts),
            Event::BatchRelookup => self.counters.incr(CounterId::BatchRelookups),
            Event::FastRetransmit { .. } => self.counters.incr(CounterId::FastRetransmits),
            Event::DelayedAck => self.counters.incr(CounterId::DelayedAcks),
            Event::ZeroWindowProbe => self.counters.incr(CounterId::ZeroWindowProbes),
            Event::RwndStall => self.counters.incr(CounterId::RwndStalls),
        }
        self.ring.push(event);
    }
}

/// Default event-ring capacity for [`Recorder::new`].
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// The cloneable recording handle.
///
/// Clones share one underlying store, so a [`Recorder`] can be handed to
/// a demux suite entry, a stack, and a bench harness at the same time and
/// all three record into the same snapshot. Recording takes an
/// uncontended mutex and touches fixed arrays — it never allocates in
/// steady state (a test under `tests/` pins this with a counting
/// allocator).
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<Telemetry>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder with the default event-ring capacity
    /// ([`DEFAULT_RING_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A fresh recorder whose event ring holds at most `capacity`
    /// events (0 disables the trace; counters and histograms still
    /// record).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Telemetry::new(capacity))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Telemetry> {
        // Recording never panics while holding the lock, so poisoning
        // cannot arise from this crate; recover rather than propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to a counter.
    pub fn add(&self, id: CounterId, delta: u64) {
        self.lock().counters.add(id, delta);
    }

    /// Increment a counter by one.
    pub fn incr(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Record one sample into a histogram.
    pub fn observe(&self, id: HistogramId, value: u32) {
        self.lock().histograms[id as usize].record(value);
    }

    /// Record a structured event. The matching counters (and, for demux
    /// and RTO events, histograms) update in the same call, so the trace
    /// and the aggregates can never disagree.
    pub fn event(&self, event: Event) {
        self.lock().event(event);
    }

    /// Record the outcome of one demultiplexer lookup: `examined` PCBs
    /// touched, whether a PCB was `found`, and whether a one-entry
    /// `cache_hit` answered it. Shorthand for the matching
    /// [`Event::DemuxHit`]/[`Event::DemuxMiss`].
    pub fn demux_lookup(&self, examined: u32, found: bool, cache_hit: bool) {
        self.event(if found {
            Event::DemuxHit {
                examined,
                cache_hit,
            }
        } else {
            Event::DemuxMiss { examined }
        });
    }

    /// Record one receive batch of `size` frames.
    pub fn batch(&self, size: u32) {
        let mut t = self.lock();
        t.counters.incr(CounterId::Batches);
        t.histograms[HistogramId::RxBatchSize as usize].record(size);
    }

    /// Record one epoch-reclamation step: `retired` nodes handed to the
    /// runtime, `reclaimed` nodes recycled by the bounded drain,
    /// `advances` global-epoch advances (0 or 1 per step), and the
    /// deferred-list `deferred_depth` left afterwards (sampled into the
    /// `epoch_deferred` histogram). One lock acquisition for all four.
    pub fn epoch_reclamation(
        &self,
        retired: u64,
        reclaimed: u64,
        advances: u64,
        deferred_depth: u32,
    ) {
        let mut t = self.lock();
        t.counters.add(CounterId::EpochRetired, retired);
        t.counters.add(CounterId::EpochReclaimed, reclaimed);
        t.counters.add(CounterId::EpochAdvances, advances);
        t.histograms[HistogramId::EpochDeferred as usize].record(deferred_depth);
    }

    /// Record one cuckoo insert: `kicks` entries displaced to their
    /// alternate bucket on the way to a vacancy (sampled into the
    /// `cuckoo_insert_kicks` histogram), and whether the bounded search
    /// failed outright (`eviction_loop`, forcing a grow-and-rehash). One
    /// lock acquisition for all three updates.
    pub fn cuckoo_insert(&self, kicks: u32, eviction_loop: bool) {
        let mut t = self.lock();
        t.counters.add(CounterId::CuckooKicks, u64::from(kicks));
        if eviction_loop {
            t.counters.incr(CounterId::CuckooEvictionLoops);
        }
        t.histograms[HistogramId::CuckooInsertKicks as usize].record(kicks);
    }

    /// An owned, independent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let t = self.lock();
        Snapshot::assemble(
            t.counters,
            t.histograms.clone(),
            t.ring.to_vec(),
            t.ring.recorded(),
            t.ring.dropped(),
        )
    }

    /// Zero every counter and histogram and empty the event ring
    /// (allocations are kept). Used between warm-up and measured runs.
    pub fn reset(&self) {
        let mut t = self.lock();
        t.counters.reset();
        for h in &mut t.histograms {
            *h = Histogram::new();
        }
        t.ring.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_ids_are_indexed_in_order() {
        for (i, id) in HistogramId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i, "{id} out of order in ALL");
        }
    }

    #[test]
    fn demux_lookup_updates_counters_histogram_and_trace() {
        let r = Recorder::new();
        r.demux_lookup(3, true, false);
        r.demux_lookup(19, true, true);
        r.demux_lookup(40, false, false);
        let snap = r.snapshot();
        assert_eq!(snap.counter(CounterId::Lookups), 3);
        assert_eq!(snap.counter(CounterId::DemuxHits), 2);
        assert_eq!(snap.counter(CounterId::DemuxMisses), 1);
        assert_eq!(snap.counter(CounterId::CacheHits), 1);
        assert_eq!(snap.counter(CounterId::PcbsExamined), 62);
        let h = snap.histogram(HistogramId::Examined);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 40);
        assert_eq!(snap.events().len(), 3);
    }

    #[test]
    fn lifecycle_events_feed_their_counters() {
        let r = Recorder::new();
        r.event(Event::ConnOpen);
        r.event(Event::ConnClose {
            cause: CloseCause::Graceful,
        });
        r.event(Event::ConnClose {
            cause: CloseCause::Timeout,
        });
        r.event(Event::Retransmit { attempt: 1 });
        r.event(Event::RtoBackoff {
            attempts: 1,
            rto_ticks: 16,
        });
        r.event(Event::Timeout);
        r.event(Event::BatchRelookup);
        let snap = r.snapshot();
        assert_eq!(snap.counter(CounterId::ConnOpened), 1);
        assert_eq!(snap.counter(CounterId::ConnClosed), 2);
        assert_eq!(snap.counter(CounterId::ConnAborted), 1);
        assert_eq!(snap.counter(CounterId::Retransmits), 1);
        assert_eq!(snap.counter(CounterId::RtoBackoffs), 1);
        assert_eq!(snap.counter(CounterId::TimeoutAborts), 1);
        assert_eq!(snap.counter(CounterId::BatchRelookups), 1);
        assert_eq!(snap.histogram(HistogramId::RtoTicks).count(), 1);
        assert_eq!(snap.histogram(HistogramId::RtoTicks).max(), 16);
        assert_eq!(snap.events_recorded(), 7);
    }

    #[test]
    fn clones_share_the_store_and_reset_clears_it() {
        let r = Recorder::new();
        let handle = r.clone();
        handle.batch(32);
        handle.incr(CounterId::Lookups);
        assert_eq!(r.snapshot().counter(CounterId::Batches), 1);
        assert_eq!(r.snapshot().histogram(HistogramId::RxBatchSize).max(), 32);
        r.reset();
        let snap = handle.snapshot();
        assert_eq!(snap.counter(CounterId::Batches), 0);
        assert_eq!(snap.counter(CounterId::Lookups), 0);
        assert!(snap.histogram(HistogramId::RxBatchSize).is_empty());
        assert_eq!(snap.events_recorded(), 0);
    }

    #[test]
    fn cuckoo_insert_updates_counters_and_histogram() {
        let r = Recorder::new();
        r.cuckoo_insert(0, false);
        r.cuckoo_insert(3, false);
        r.cuckoo_insert(0, true);
        let snap = r.snapshot();
        assert_eq!(snap.counter(CounterId::CuckooKicks), 3);
        assert_eq!(snap.counter(CounterId::CuckooEvictionLoops), 1);
        let h = snap.histogram(HistogramId::CuckooInsertKicks);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn snapshot_is_independent_of_later_recording() {
        let r = Recorder::new();
        r.incr(CounterId::Lookups);
        let snap = r.snapshot();
        r.incr(CounterId::Lookups);
        assert_eq!(snap.counter(CounterId::Lookups), 1);
        assert_eq!(r.snapshot().counter(CounterId::Lookups), 2);
    }
}
