//! Structured events and the bounded ring buffer that traces them.

use core::fmt;

/// Why a connection left the demultiplexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseCause {
    /// Normal close: the FIN exchange completed (or TIME-WAIT drained).
    Graceful,
    /// The peer reset the connection.
    Reset,
    /// The local application aborted it.
    LocalAbort,
    /// The retransmission budget ran out (the path went silent).
    Timeout,
}

impl CloseCause {
    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            CloseCause::Graceful => "graceful",
            CloseCause::Reset => "reset",
            CloseCause::LocalAbort => "local_abort",
            CloseCause::Timeout => "timeout",
        }
    }
}

/// One structured telemetry event.
///
/// Events are small and `Copy`; pushing one into the ring never
/// allocates. They carry the quantitative payload a debugging session
/// needs (examined counts, backoff state), not formatted text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A demultiplexer lookup found its PCB.
    DemuxHit {
        /// PCBs examined by this lookup.
        examined: u32,
        /// Whether a one-entry cache answered it.
        cache_hit: bool,
    },
    /// A demultiplexer lookup found nothing.
    DemuxMiss {
        /// PCBs examined before giving up.
        examined: u32,
    },
    /// A connection was inserted into the demultiplexer.
    ConnOpen,
    /// A connection was removed, with its cause.
    ConnClose {
        /// Why it closed.
        cause: CloseCause,
    },
    /// A queued segment was re-emitted after an RTO expiry.
    Retransmit {
        /// Consecutive expiries for this connection so far (1 = first).
        attempt: u32,
    },
    /// An RTO expiry backed the timer off.
    RtoBackoff {
        /// Consecutive expiries after this one.
        attempts: u32,
        /// The re-armed timeout, in stack ticks.
        rto_ticks: u64,
    },
    /// A connection exhausted its retransmission budget and was aborted.
    Timeout,
    /// A batched frame was re-looked-up individually after a mid-batch
    /// connection-table change made the batched answer stale.
    BatchRelookup,
    /// Duplicate ACKs triggered re-emission of the oldest unacked
    /// segment without waiting for the RTO (fast retransmit, or a
    /// NewReno partial-ACK head re-emission).
    FastRetransmit {
        /// Duplicate ACKs counted when the retransmit fired (0 for a
        /// NewReno partial-ACK re-emission).
        dup_acks: u32,
    },
    /// The delayed-ACK machinery emitted a coalesced pure ACK (timer
    /// expiry or the every-N segment threshold).
    DelayedAck,
    /// A zero-window probe was sent against a closed peer window.
    ZeroWindowProbe,
    /// A transmit poll had queued data but the peer's advertised window
    /// was closed (rwnd, not cwnd, is the bottleneck).
    RwndStall,
}

impl Event {
    /// Stable snake_case kind tag used by both exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DemuxHit { .. } => "demux_hit",
            Event::DemuxMiss { .. } => "demux_miss",
            Event::ConnOpen => "conn_open",
            Event::ConnClose { .. } => "conn_close",
            Event::Retransmit { .. } => "retransmit",
            Event::RtoBackoff { .. } => "rto_backoff",
            Event::Timeout => "timeout",
            Event::BatchRelookup => "batch_relookup",
            Event::FastRetransmit { .. } => "fast_retransmit",
            Event::DelayedAck => "delayed_ack",
            Event::ZeroWindowProbe => "zero_window_probe",
            Event::RwndStall => "rwnd_stall",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::DemuxHit {
                examined,
                cache_hit,
            } => write!(f, "demux_hit examined={examined} cache_hit={cache_hit}"),
            Event::DemuxMiss { examined } => write!(f, "demux_miss examined={examined}"),
            Event::ConnOpen => f.write_str("conn_open"),
            Event::ConnClose { cause } => write!(f, "conn_close cause={}", cause.name()),
            Event::Retransmit { attempt } => write!(f, "retransmit attempt={attempt}"),
            Event::RtoBackoff {
                attempts,
                rto_ticks,
            } => write!(f, "rto_backoff attempts={attempts} rto_ticks={rto_ticks}"),
            Event::Timeout => f.write_str("timeout"),
            Event::BatchRelookup => f.write_str("batch_relookup"),
            Event::FastRetransmit { dup_acks } => {
                write!(f, "fast_retransmit dup_acks={dup_acks}")
            }
            Event::DelayedAck => f.write_str("delayed_ack"),
            Event::ZeroWindowProbe => f.write_str("zero_window_probe"),
            Event::RwndStall => f.write_str("rwnd_stall"),
        }
    }
}

/// An [`Event`] plus its global sequence number (0-based, assigned in
/// recording order, never reused — so a trace that dropped its oldest
/// entries still shows exactly *which* events survive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqEvent {
    /// Position of this event in the full recorded stream.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// A bounded ring of the most recent events.
///
/// Capacity is fixed at construction and fully pre-allocated; recording
/// into a full ring overwrites the oldest entry. The number of events
/// ever recorded is tracked so snapshots can report how many were
/// dropped.
#[derive(Debug, Clone)]
pub struct EventRing {
    /// Slot `i` holds the event with sequence `head - len + i` (oldest
    /// first, wrapped onto the pre-allocated buffer).
    buf: Vec<SeqEvent>,
    capacity: usize,
    /// Index of the next slot to write.
    write: usize,
    /// Total events ever recorded (= next sequence number).
    recorded: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events. A zero capacity
    /// discards everything (counters and histograms still work).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            write: 0,
            recorded: 0,
        }
    }

    /// Record one event (overwrites the oldest if full; never allocates
    /// once the ring has filled).
    pub fn push(&mut self, event: Event) {
        let seq = self.recorded;
        self.recorded += 1;
        if self.capacity == 0 {
            return;
        }
        let entry = SeqEvent { seq, event };
        if self.buf.len() < self.capacity {
            self.buf.push(entry);
            self.write = self.buf.len() % self.capacity;
        } else {
            self.buf[self.write] = entry;
            self.write = (self.write + 1) % self.capacity;
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The surviving events, oldest first.
    pub fn to_vec(&self) -> Vec<SeqEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() < self.capacity {
            out.extend_from_slice(&self.buf);
        } else {
            out.extend_from_slice(&self.buf[self.write..]);
            out.extend_from_slice(&self.buf[..self.write]);
        }
        out
    }

    /// Forget everything, keeping the allocation.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.write = 0;
        self.recorded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = EventRing::with_capacity(3);
        for attempt in 1..=5 {
            ring.push(Event::Retransmit { attempt });
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let events = ring.to_vec();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[2].event, Event::Retransmit { attempt: 5 });
    }

    #[test]
    fn partial_ring_keeps_order() {
        let mut ring = EventRing::with_capacity(8);
        ring.push(Event::ConnOpen);
        ring.push(Event::Timeout);
        let events = ring.to_vec();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, Event::ConnOpen);
        assert_eq!(events[1].event, Event::Timeout);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut ring = EventRing::with_capacity(0);
        ring.push(Event::ConnOpen);
        ring.push(Event::Timeout);
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.dropped(), 2);
        assert!(ring.to_vec().is_empty());
    }

    #[test]
    fn reset_forgets_everything() {
        let mut ring = EventRing::with_capacity(2);
        ring.push(Event::ConnOpen);
        ring.reset();
        assert_eq!(ring.recorded(), 0);
        assert!(ring.to_vec().is_empty());
        ring.push(Event::Timeout);
        assert_eq!(ring.to_vec()[0].seq, 0);
    }

    /// Whatever the capacity and stream length, the ring holds the last
    /// `min(len, capacity)` events with consecutive sequence numbers
    /// ending at `len - 1`.
    #[test]
    fn prop_ring_keeps_exactly_the_tail() {
        check("event_ring_prop_tail", |rng| {
            let capacity = rng.usize_in(0, 16);
            let n = rng.usize_in(0, 64);
            let mut ring = EventRing::with_capacity(capacity);
            for i in 0..n {
                ring.push(Event::Retransmit {
                    attempt: i as u32 + 1,
                });
            }
            let events = ring.to_vec();
            assert_eq!(events.len(), n.min(capacity));
            assert_eq!(ring.recorded(), n as u64);
            for (offset, entry) in events.iter().enumerate() {
                let expect_seq = (n - events.len() + offset) as u64;
                assert_eq!(entry.seq, expect_seq);
                assert_eq!(
                    entry.event,
                    Event::Retransmit {
                        attempt: expect_seq as u32 + 1
                    }
                );
            }
        });
    }
}
