//! Connection-churn workload: sessions arrive, transact, and leave.
//!
//! The paper's analysis holds `N` fixed, but a real OLTP front end also
//! churns connections (tellers log in and out; the paper's §4 notes user
//! counts are "sharply limited by other factors"). This workload runs a
//! birth–death process: sessions arrive Poisson at rate `λ`, each
//! performs a geometric number of transactions at the TPC/A pace, then
//! closes. It exercises the code path the static workloads never touch —
//! `insert`/`remove` interleaved with lookups — and checks that no
//! structure decays under churn (stale caches, leaked list nodes).
//!
//! For the cuckoo tier, churn is also where the *insert* path earns its
//! keep: a high-concurrency arrival burst drives bucket occupancy toward
//! the 15/16 watermark, so session opens land in full buckets and must
//! kick residents aside (an eviction storm). The storm is observable —
//! the suite entry's recorder counts every displacement — and bounded:
//! an insert whose kick search loops triggers a growth instead of
//! spinning, so churn can never wedge the open path.

use crate::engine::EventQueue;
use crate::rng::SimRng;
use crate::runner::TraceEvent;
use crate::time::SimTime;
use std::net::Ipv4Addr;
use tcpdemux_core::PacketKind;
use tcpdemux_pcb::ConnectionKey;

/// Configuration for the churn workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Session arrival rate, sessions per second.
    pub arrival_rate: f64,
    /// Mean transactions a session performs before disconnecting.
    pub mean_transactions: f64,
    /// Mean think time between a session's transactions (seconds).
    pub mean_think: f64,
    /// Response time (seconds); the ack returns this much later.
    pub response_time: f64,
    /// Total sessions to run through their full lifecycle.
    pub sessions: u32,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 10.0,
            mean_transactions: 20.0,
            mean_think: 10.0,
            response_time: 0.2,
            sessions: 500,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    SessionArrives(u32),
    Txn(u32),
    Ack(u32),
}

fn key_for_session(n: u32) -> ConnectionKey {
    // Each session gets a fresh ephemeral port and client address, so
    // keys never repeat even as sessions come and go.
    ConnectionKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        1521,
        Ipv4Addr::from(0x0a80_0000 + (n / 16_000)),
        (49_152 + (n % 16_000)) as u16,
    )
}

/// Generate a churn trace: `Open`, transactions, `Close` per session.
pub fn trace(config: ChurnConfig, seed: u64) -> Vec<TraceEvent> {
    assert!(config.arrival_rate > 0.0 && config.sessions > 0);
    assert!(config.mean_transactions >= 1.0);
    let mut rng = SimRng::new(seed);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut events = Vec::new();
    // Remaining transactions per session, indexed by session id.
    let mut remaining: Vec<u64> = Vec::with_capacity(config.sessions as usize);

    let mut t = 0.0f64;
    for session in 0..config.sessions {
        t += rng.exponential(1.0 / config.arrival_rate);
        queue.schedule(SimTime::from_secs_f64(t), Ev::SessionArrives(session));
        remaining.push(rng.geometric(1.0 / config.mean_transactions));
    }

    let r = SimTime::from_secs_f64(config.response_time);
    while let Some((at, ev)) = queue.pop() {
        match ev {
            Ev::SessionArrives(s) => {
                let key = key_for_session(s);
                events.push(TraceEvent::Open { at, key });
                let think = rng.exponential(config.mean_think);
                queue.schedule(at + SimTime::from_secs_f64(think), Ev::Txn(s));
            }
            Ev::Txn(s) => {
                let key = key_for_session(s);
                events.push(TraceEvent::Arrival {
                    at,
                    key,
                    kind: PacketKind::Data,
                });
                events.push(TraceEvent::Departure { at, key }); // query ack
                queue.schedule(at + r, Ev::Ack(s));
            }
            Ev::Ack(s) => {
                let key = key_for_session(s);
                events.push(TraceEvent::Departure { at, key }); // response
                events.push(TraceEvent::Arrival {
                    at,
                    key,
                    kind: PacketKind::Ack,
                });
                remaining[s as usize] -= 1;
                if remaining[s as usize] == 0 {
                    events.push(TraceEvent::Close { at, key });
                } else {
                    let think = rng.exponential(config.mean_think);
                    queue.schedule(at + SimTime::from_secs_f64(think), Ev::Txn(s));
                }
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use tcpdemux_core::standard_suite;

    #[test]
    fn every_session_opens_and_closes_once() {
        let cfg = ChurnConfig {
            sessions: 100,
            ..ChurnConfig::default()
        };
        let events = trace(cfg, 1);
        let opens = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Open { .. }))
            .count();
        let closes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Close { .. }))
            .count();
        assert_eq!(opens, 100);
        assert_eq!(closes, 100);
    }

    #[test]
    fn structures_drain_to_empty() {
        // After every session closes, every structure must be empty: no
        // leaked list nodes, no phantom chain entries.
        let cfg = ChurnConfig {
            sessions: 300,
            ..ChurnConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 2), &mut suite);
        for report in &reports {
            assert_eq!(report.lost_packets, 0, "{}", report.name);
        }
        for entry in &suite {
            assert_eq!(entry.demux.len(), 0, "{} leaked connections", entry.name);
            assert!(entry.demux.is_empty());
        }
    }

    #[test]
    fn lookups_between_open_and_close_always_hit() {
        let cfg = ChurnConfig {
            sessions: 200,
            mean_transactions: 5.0,
            ..ChurnConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 3), &mut suite);
        for report in &reports {
            assert_eq!(report.stats.not_found, 0, "{}", report.name);
            assert!(report.stats.lookups > 0);
        }
    }

    #[test]
    fn hashing_still_wins_under_churn() {
        let cfg = ChurnConfig {
            arrival_rate: 50.0, // high concurrency: many live sessions
            sessions: 800,
            mean_transactions: 30.0,
            ..ChurnConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 4), &mut suite);
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .stats
                .mean_examined()
        };
        assert!(get("sequent(19)") < get("bsd") / 3.0);
        assert!(get("direct-index") <= get("sequent(100)"));
    }

    #[test]
    fn cuckoo_insert_storms_surface_through_telemetry() {
        // A high-concurrency arrival burst (800 sessions alive at once,
        // long lifetimes) pushes the cuckoo tier's buckets to the 15/16
        // watermark repeatedly as it grows, so some session opens must
        // displace residents. Those kicks — the insert-path cost the
        // static workloads never pay — must land in the entry's recorder,
        // and despite the storms the tier must stay correct: every lookup
        // between open and close still hits, and the table drains empty.
        let cfg = ChurnConfig {
            arrival_rate: 200.0,
            sessions: 800,
            mean_transactions: 30.0,
            ..ChurnConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 11), &mut suite);
        let report = reports.iter().find(|r| r.name == "cuckoo").unwrap();
        assert_eq!(report.stats.not_found, 0);
        assert_eq!(report.lost_packets, 0);

        let entry = suite.iter().find(|e| e.name == "cuckoo").unwrap();
        assert!(entry.demux.is_empty(), "cuckoo leaked connections");
        let snap = entry.recorder.snapshot();
        let kicks = snap.counter(tcpdemux_telemetry::CounterId::CuckooKicks);
        assert!(
            kicks > 0,
            "800 concurrent sessions should storm the insert path, got 0 kicks"
        );
        // The per-insert kick histogram saw every open, and its total
        // matches the raw counter minus growth-driven rehash moves (which
        // are counted but not attributed to any single insert).
        let hist = snap.histogram(tcpdemux_telemetry::HistogramId::CuckooInsertKicks);
        assert!(hist.count() >= u64::from(cfg.sessions));
        assert!(hist.sum() <= kicks);
    }

    #[test]
    fn session_keys_are_unique() {
        let mut keys: Vec<_> = (0..50_000).map(key_for_session).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 50_000);
    }

    #[test]
    fn reproducible() {
        let cfg = ChurnConfig::default();
        assert_eq!(trace(cfg, 9), trace(cfg, 9));
        assert_ne!(trace(cfg, 9), trace(cfg, 10));
    }
}
