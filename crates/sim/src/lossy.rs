//! A lossy-link scenario: two real [`Stack`]s exchanging request/response
//! traffic over [`FaultInjector`] links, recovering from drops and
//! corruption purely through the stacks' own timer-driven retransmission.
//!
//! This is the end-to-end proof for the loss-recovery machinery: no
//! test-side redelivery, no oracle — every lost or mangled frame must be
//! recovered by an RTO expiry inside [`Stack::advance_time`], and the
//! driver only plays the role of the wire and of two tiny applications
//! (a client issuing fixed-size requests, a server answering each one).
//!
//! The driver is a discrete-event loop: deliver whatever is in flight at
//! the current tick (in-memory links have zero latency), and when both
//! directions go quiet, jump the clock straight to the earliest
//! retransmission deadline ([`Stack::next_timer_deadline`]) — the idiom
//! the timing-wheel literature calls "event-driven time advance".

use std::collections::VecDeque;
use std::net::Ipv4Addr;
use tcpdemux_core::SequentDemux;
use tcpdemux_hash::Multiplicative;
use tcpdemux_stack::{FaultInjector, FaultOutcome, Stack, StackConfig, TxScratch};
use tcpdemux_telemetry::Snapshot;

/// Fixed request/response size: big enough to be real payload, small
/// enough that one exchange is one segment each way.
pub const MESSAGE_LEN: usize = 32;

/// The server port (the paper's TPC/A examples use the Oracle listener).
pub const PORT: u16 = 1521;

/// Parameters of one lossy-link run.
#[derive(Debug, Clone, Copy)]
pub struct LossyLinkConfig {
    /// Probability each frame is dropped, per direction.
    pub drop_chance: f64,
    /// Probability each surviving frame has one bit flipped.
    pub corrupt_chance: f64,
    /// Request/response exchanges the client must complete.
    pub exchanges: u32,
    /// RNG seed for both fault injectors (direction-mixed).
    pub seed: u64,
    /// Give-up horizon: the run fails if the clock passes this tick.
    pub max_ticks: u64,
    /// Per-connection retransmission budget (see
    /// [`StackConfig::max_retries`]).
    pub max_retries: u32,
}

impl Default for LossyLinkConfig {
    fn default() -> Self {
        Self {
            drop_chance: 0.2,
            corrupt_chance: 0.05,
            exchanges: 100,
            seed: 0xC0FF_EE00,
            max_ticks: 10_000_000,
            max_retries: 12,
        }
    }
}

/// What a lossy-link run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossyLinkReport {
    /// Exchanges the client completed (each `MESSAGE_LEN` bytes each way).
    pub completed: u32,
    /// Tick at which the run ended.
    pub ticks: u64,
    /// Segments the client retransmitted.
    pub client_retransmits: u64,
    /// Segments the server retransmitted.
    pub server_retransmits: u64,
    /// Frames the links dropped.
    pub drops: u64,
    /// Frames the links corrupted (all must die at a checksum).
    pub corrupted: u64,
    /// Corrupted frames rejected by wire validation on receive.
    pub checksum_rejections: u64,
    /// Whether either stack aborted its connection (retry budget spent).
    pub aborted: bool,
}

impl LossyLinkReport {
    /// Application payload bytes per tick actually delivered end to end
    /// (both directions), the experiment's goodput metric.
    pub fn goodput(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        (self.completed as f64 * 2.0 * MESSAGE_LEN as f64) / self.ticks as f64
    }
}

fn sequent() -> Box<SequentDemux<Multiplicative>> {
    Box::new(SequentDemux::new(Multiplicative, 19))
}

/// Push one frame through a fault injector onto a delivery queue.
fn transmit(
    link: &mut FaultInjector,
    frame: Vec<u8>,
    queue: &mut VecDeque<Vec<u8>>,
    report: &mut LossyLinkReport,
) {
    match link.transmit(&frame) {
        FaultOutcome::Passed(f) => queue.push_back(f),
        FaultOutcome::Corrupted(f) => {
            report.corrupted += 1;
            queue.push_back(f);
        }
        FaultOutcome::Dropped => report.drops += 1,
    }
}

/// A [`run_lossy_link_with_telemetry`] result: the scenario report plus
/// each stack's full telemetry snapshot (counters, histograms, event
/// trace), captured at the end of the run.
#[derive(Debug, Clone)]
pub struct LossyLinkTelemetry {
    /// What the run did, as in [`run_lossy_link`].
    pub report: LossyLinkReport,
    /// The client stack's telemetry at the end of the run.
    pub client: Snapshot,
    /// The server stack's telemetry at the end of the run.
    pub server: Snapshot,
}

impl LossyLinkTelemetry {
    /// The run as deterministic JSON lines: a `run` header, then each
    /// side's full snapshot under a `side` header. Same config + same
    /// seed produce byte-identical output (see the telemetry crate's
    /// determinism notes), which is what the golden-file check in
    /// `verify.sh` diffs against.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"run\",\"scenario\":\"lossy_link\",\"completed\":{},\"ticks\":{},\"client_retransmits\":{},\"server_retransmits\":{},\"drops\":{},\"corrupted\":{},\"checksum_rejections\":{},\"aborted\":{}}}\n",
            self.report.completed,
            self.report.ticks,
            self.report.client_retransmits,
            self.report.server_retransmits,
            self.report.drops,
            self.report.corrupted,
            self.report.checksum_rejections,
            self.report.aborted,
        ));
        for (name, snapshot) in [("client", &self.client), ("server", &self.server)] {
            out.push_str(&format!("{{\"type\":\"side\",\"name\":\"{name}\"}}\n"));
            out.push_str(&snapshot.to_json_lines());
        }
        out
    }
}

/// Run request/response exchanges between two stacks over lossy links
/// until `cfg.exchanges` complete, a connection aborts, or the clock
/// passes `cfg.max_ticks`.
pub fn run_lossy_link(cfg: &LossyLinkConfig) -> LossyLinkReport {
    run_stacks(cfg).0
}

/// [`run_lossy_link`], additionally returning both stacks' telemetry
/// snapshots — the full structured record of what loss recovery did.
pub fn run_lossy_link_with_telemetry(cfg: &LossyLinkConfig) -> LossyLinkTelemetry {
    let (report, client, server) = run_stacks(cfg);
    LossyLinkTelemetry {
        report,
        client: client.stats().telemetry,
        server: server.stats().telemetry,
    }
}

/// The driver loop; returns the report and both stacks for inspection.
fn run_stacks(cfg: &LossyLinkConfig) -> (LossyLinkReport, Stack, Stack) {
    let server_addr = Ipv4Addr::new(10, 0, 0, 1);
    let client_addr = Ipv4Addr::new(10, 0, 5, 5);
    let mut server = Stack::with_config(
        StackConfig::new(server_addr)
            .with_max_retries(cfg.max_retries)
            .with_demux(|| sequent()),
    );
    let mut client = Stack::with_config(
        StackConfig::new(client_addr)
            .with_max_retries(cfg.max_retries)
            .with_demux(|| sequent()),
    );
    server.listen(PORT).expect("fresh stack");

    // Independent deterministic fault streams per direction.
    let mut c2s = FaultInjector::new(cfg.drop_chance, cfg.corrupt_chance, cfg.seed | 1);
    let mut s2c = FaultInjector::new(
        cfg.drop_chance,
        cfg.corrupt_chance,
        cfg.seed.rotate_left(17) | 1,
    );
    let mut to_server: VecDeque<Vec<u8>> = VecDeque::new();
    let mut to_client: VecDeque<Vec<u8>> = VecDeque::new();
    let mut report = LossyLinkReport::default();
    let mut scratch = TxScratch::new();

    let (cp, syn) = client.connect(server_addr, PORT).expect("connect");
    transmit(&mut c2s, syn, &mut to_server, &mut report);

    let mut sp = None;
    let mut requests_sent: u32 = 0;
    let mut response_bytes: u64 = 0;
    let mut now: u64 = 0;

    loop {
        // Deliver everything in flight at this tick; zero-latency links
        // mean replies (and app sends they trigger) go out immediately.
        while !to_server.is_empty() || !to_client.is_empty() {
            while let Some(frame) = to_server.pop_front() {
                match server.receive(&frame) {
                    Ok(result) => {
                        for reply in result.replies {
                            transmit(&mut s2c, reply, &mut to_client, &mut report);
                        }
                    }
                    Err(_) => report.checksum_rejections += 1,
                }
            }
            if sp.is_none() {
                sp = server.accept(PORT);
            }
            // Server application: answer every complete request.
            if let Some(sp) = sp {
                while server
                    .socket(sp)
                    .is_some_and(|s| s.available() >= MESSAGE_LEN)
                {
                    let request = server
                        .socket_mut(sp)
                        .expect("live socket")
                        .read(MESSAGE_LEN);
                    let mut response = request;
                    for byte in response.iter_mut() {
                        *byte = byte.wrapping_add(1);
                    }
                    if server.send(sp, &response).is_ok() {
                        server.poll_transmit(&mut scratch);
                        for frame in scratch.frames.drain(..) {
                            transmit(&mut s2c, frame, &mut to_client, &mut report);
                        }
                    }
                }
            }
            while let Some(frame) = to_client.pop_front() {
                match client.receive(&frame) {
                    Ok(result) => {
                        for reply in result.replies {
                            transmit(&mut c2s, reply, &mut to_server, &mut report);
                        }
                    }
                    Err(_) => report.checksum_rejections += 1,
                }
            }
            // Client application: issue the next request once connected
            // and once the previous response has fully arrived.
            response_bytes += client
                .socket_mut(cp)
                .map(|s| s.read_all().len() as u64)
                .unwrap_or(0);
            report.completed = (response_bytes / MESSAGE_LEN as u64) as u32;
            let want_next = client.is_established(cp)
                && requests_sent < cfg.exchanges
                && requests_sent == report.completed;
            if want_next {
                let body = vec![b'a' + (requests_sent % 26) as u8; MESSAGE_LEN];
                if client.send(cp, &body).is_ok() {
                    requests_sent += 1;
                    client.poll_transmit(&mut scratch);
                    for frame in scratch.frames.drain(..) {
                        transmit(&mut c2s, frame, &mut to_server, &mut report);
                    }
                }
            }
        }

        if report.completed >= cfg.exchanges || report.aborted {
            break;
        }

        // Quiet wire: jump to the earliest retransmission deadline.
        let deadline = match (client.next_timer_deadline(), server.next_timer_deadline()) {
            (Some(c), Some(s)) => c.min(s),
            (Some(c), None) => c,
            (None, Some(s)) => s,
            // Nothing in flight and nothing armed: the run cannot make
            // progress (only reachable if both sides gave up).
            (None, None) => break,
        };
        now = deadline.max(now);
        if now > cfg.max_ticks {
            break;
        }
        for (stack, link, queue) in [
            (&mut client, &mut c2s, &mut to_server),
            (&mut server, &mut s2c, &mut to_client),
        ] {
            let advance = stack.advance_time(now);
            report.aborted |= !advance.aborted.is_empty();
            for frame in advance.retransmits {
                transmit(link, frame, queue, &mut report);
            }
        }
    }

    report.ticks = now;
    report.client_retransmits = client.stats().stack.retransmits;
    report.server_retransmits = server.stats().stack.retransmits;
    (report, client, server)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_completes_without_retransmission() {
        let report = run_lossy_link(&LossyLinkConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            exchanges: 25,
            ..LossyLinkConfig::default()
        });
        assert_eq!(report.completed, 25);
        assert_eq!(report.client_retransmits + report.server_retransmits, 0);
        assert_eq!(report.drops, 0);
        assert!(!report.aborted);
        assert_eq!(report.ticks, 0, "zero-latency links never idle");
    }

    #[test]
    fn lossy_link_converges_through_retransmission() {
        let report = run_lossy_link(&LossyLinkConfig {
            drop_chance: 0.25,
            corrupt_chance: 0.05,
            exchanges: 40,
            seed: 7,
            ..LossyLinkConfig::default()
        });
        assert_eq!(report.completed, 40, "{report:?}");
        assert!(!report.aborted, "{report:?}");
        assert!(report.drops > 0, "the link did drop frames: {report:?}");
        assert!(
            report.client_retransmits + report.server_retransmits > 0,
            "recovery must have used retransmission: {report:?}"
        );
        assert_eq!(
            report.corrupted, report.checksum_rejections,
            "every corrupted frame died at a checksum: {report:?}"
        );
    }

    #[test]
    fn telemetry_snapshot_agrees_with_report() {
        use tcpdemux_telemetry::{CounterId, HistogramId};

        let out = run_lossy_link_with_telemetry(&LossyLinkConfig {
            drop_chance: 0.25,
            corrupt_chance: 0.05,
            exchanges: 40,
            seed: 7,
            ..LossyLinkConfig::default()
        });
        assert_eq!(out.report.completed, 40, "{:?}", out.report);
        assert_eq!(
            out.client.counter(CounterId::Retransmits),
            out.report.client_retransmits
        );
        assert_eq!(
            out.server.counter(CounterId::Retransmits),
            out.report.server_retransmits
        );
        // Loss recovery exercised the backoff path, so both the examined
        // and the RTO histograms carry data.
        assert!(!out.client.histogram(HistogramId::Examined).is_empty());
        assert!(!out.client.histogram(HistogramId::RtoTicks).is_empty());
        // Both sides opened exactly one connection.
        assert_eq!(out.client.counter(CounterId::ConnOpened), 1);
        assert_eq!(out.server.counter(CounterId::ConnOpened), 1);
    }

    #[test]
    fn hopeless_link_aborts_instead_of_spinning_forever() {
        let report = run_lossy_link(&LossyLinkConfig {
            drop_chance: 1.0,
            corrupt_chance: 0.0,
            exchanges: 1,
            max_retries: 3,
            ..LossyLinkConfig::default()
        });
        assert_eq!(report.completed, 0);
        assert!(report.aborted, "{report:?}");
    }
}
