//! Random variates for the workload generators.
//!
//! Everything derives from a seeded xoshiro256++ generator (seed
//! expanded by SplitMix64) provided in-tree by [`tcpdemux_testprop`],
//! so every simulation run is exactly reproducible from its seed on any
//! machine with **no external crates**. The exponential and
//! truncated-exponential samplers are implemented by inverse transform;
//! the truncated variant matches TPC/A's think-time rule (a
//! negative-exponential *conditioned* on not exceeding the truncation
//! point, realized by rejection).
//!
//! # Canonical seeds
//!
//! The RNG algorithm changed in the hermetic-workspace refactor (from
//! `rand::StdRng`, which is ChaCha12-based, to the in-tree
//! xoshiro256++), so *streams changed* and every golden number pinned
//! against the old byte streams was re-derived. The canonical seeds
//! used by the pinned tests and by `EXPERIMENTS.md` are:
//!
//! | seed | used by |
//! |------|---------|
//! | `1..=5`          | TPC/A replication experiments (`replicate.rs`) |
//! | `1..=8`, `1992`  | distribution/stream tests in this module |
//! | `0`, `1`, `31`, `42` | sim engine / runner / TPC/A smoke tests |
//!
//! Two runs with the same seed produce byte-identical stats — this is
//! asserted by `tests/` and `scripts/verify.sh`. Re-pinning a golden
//! number is only legitimate when the *stream* changes (an RNG or
//! sampler change), never to paper over a model regression; cite the
//! paper equation in a comment when you do.

use tcpdemux_testprop::Xoshiro256pp;

/// A seeded source of the workload generators' random variates.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: Xoshiro256pp,
}

impl SimRng {
    /// Create from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.rng.below(n)
    }

    /// Exponential with the given mean, by inverse transform:
    /// `−mean·ln(1−U)`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = self.rng.next_f64();
        -mean * (-u).ln_1p()
    }

    /// Truncated exponential: exponential with `mean`, conditioned on the
    /// value not exceeding `max` (rejection sampling). TPC/A requires
    /// `max ≥ 10 × mean`, making rejection vanishingly rare (`e⁻¹⁰`).
    pub fn truncated_exponential(&mut self, mean: f64, max: f64) -> f64 {
        assert!(max > 0.0 && max >= mean, "truncation below the mean");
        loop {
            let v = self.exponential(mean);
            if v <= max {
                return v;
            }
        }
    }

    /// Geometric number of extra packets: returns `k ≥ 1` with
    /// `P(k) = (1−p)^{k−1} p` — the packet-train length model of
    /// Jain & Routhier (mean `1/p`).
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p) && p > 0.0);
        let u = self.rng.next_f64();
        // Inverse transform: ceil(ln(1−u)/ln(1−p)).
        if p >= 1.0 {
            return 1;
        }
        let k = ((-u).ln_1p() / (-p).ln_1p()).ceil();
        (k as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = SimRng::new(8);
        let same: Vec<f64> = (0..10).map(|_| SimRng::new(7).uniform()).collect();
        assert!(same.iter().all(|&x| x == same[0]));
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn matches_testprop_stream() {
        // SimRng and the property harness must draw from the SAME
        // generator family: seed k here equals raw xoshiro256++ seeded
        // with k. This pins the determinism contract across crates.
        let mut sim = SimRng::new(1992);
        let mut raw = Xoshiro256pp::seed_from_u64(1992);
        for _ in 0..32 {
            assert_eq!(sim.uniform(), raw.next_f64());
        }
    }

    #[test]
    fn exponential_mean_and_memorylessness() {
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let mean = 10.0;
        let samples: Vec<f64> = (0..n).map(|_| rng.exponential(mean)).collect();
        let avg: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((avg - mean).abs() < 0.15, "avg {avg}");
        // CDF at the mean: 1 − e⁻¹ ≈ 0.632.
        let below_mean = samples.iter().filter(|&&x| x < mean).count() as f64 / n as f64;
        assert!((below_mean - 0.632).abs() < 0.01, "{below_mean}");
    }

    #[test]
    fn truncated_exponential_respects_bound() {
        let mut rng = SimRng::new(2);
        let mean = 10.0;
        let max = 100.0;
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = rng.truncated_exponential(mean, max);
            assert!((0.0..=max).contains(&v));
            sum += v;
        }
        // The conditioning barely moves the mean (by ~11e⁻¹⁰·mean).
        let avg = sum / 100_000.0;
        assert!((avg - mean).abs() < 0.2, "avg {avg}");
    }

    #[test]
    fn geometric_mean() {
        let mut rng = SimRng::new(3);
        let p = 0.25; // mean train length 4
        let n = 100_000;
        let avg: f64 = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        assert!((avg - 4.0).abs() < 0.1, "avg {avg}");
        // Always at least 1.
        assert!((0..1000).all(|_| rng.geometric(0.9) >= 1));
        assert_eq!(rng.geometric(1.0), 1);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn uniform_is_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
