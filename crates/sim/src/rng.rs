//! Random variates for the workload generators.
//!
//! Everything derives from a seeded [`rand::rngs::StdRng`], so every
//! simulation run is exactly reproducible from its seed. The exponential
//! and truncated-exponential samplers are implemented by inverse
//! transform; the truncated variant matches TPC/A's think-time rule (a
//! negative-exponential *conditioned* on not exceeding the truncation
//! point, realized by rejection).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of the workload generators' random variates.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Create from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Exponential with the given mean, by inverse transform:
    /// `−mean·ln(1−U)`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = self.rng.gen();
        -mean * (-u).ln_1p()
    }

    /// Truncated exponential: exponential with `mean`, conditioned on the
    /// value not exceeding `max` (rejection sampling). TPC/A requires
    /// `max ≥ 10 × mean`, making rejection vanishingly rare (`e⁻¹⁰`).
    pub fn truncated_exponential(&mut self, mean: f64, max: f64) -> f64 {
        assert!(max > 0.0 && max >= mean, "truncation below the mean");
        loop {
            let v = self.exponential(mean);
            if v <= max {
                return v;
            }
        }
    }

    /// Geometric number of extra packets: returns `k ≥ 1` with
    /// `P(k) = (1−p)^{k−1} p` — the packet-train length model of
    /// Jain & Routhier (mean `1/p`).
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p) && p > 0.0);
        let u: f64 = self.rng.gen();
        // Inverse transform: ceil(ln(1−u)/ln(1−p)).
        if p >= 1.0 {
            return 1;
        }
        let k = ((-u).ln_1p() / (-p).ln_1p()).ceil();
        (k as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = SimRng::new(8);
        let same: Vec<f64> = (0..10).map(|_| SimRng::new(7).uniform()).collect();
        assert!(same.iter().all(|&x| x == same[0]));
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn exponential_mean_and_memorylessness() {
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let mean = 10.0;
        let samples: Vec<f64> = (0..n).map(|_| rng.exponential(mean)).collect();
        let avg: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((avg - mean).abs() < 0.15, "avg {avg}");
        // CDF at the mean: 1 − e⁻¹ ≈ 0.632.
        let below_mean = samples.iter().filter(|&&x| x < mean).count() as f64 / n as f64;
        assert!((below_mean - 0.632).abs() < 0.01, "{below_mean}");
    }

    #[test]
    fn truncated_exponential_respects_bound() {
        let mut rng = SimRng::new(2);
        let mean = 10.0;
        let max = 100.0;
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = rng.truncated_exponential(mean, max);
            assert!((0.0..=max).contains(&v));
            sum += v;
        }
        // The conditioning barely moves the mean (by ~11e⁻¹⁰·mean).
        let avg = sum / 100_000.0;
        assert!((avg - mean).abs() < 0.2, "avg {avg}");
    }

    #[test]
    fn geometric_mean() {
        let mut rng = SimRng::new(3);
        let p = 0.25; // mean train length 4
        let n = 100_000;
        let avg: f64 = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        assert!((avg - 4.0).abs() < 0.1, "avg {avg}");
        // Always at least 1.
        assert!((0..1000).all(|_| rng.geometric(0.9) >= 1));
        assert_eq!(rng.geometric(1.0), 1);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn uniform_is_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
