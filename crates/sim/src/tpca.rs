//! The TPC/A workload simulation (paper §2).
//!
//! `N` users each cycle through: *enter transaction* → wait `R` for the
//! response → *think* (truncated exponential, mean 10 s). The server's
//! packet timeline per transaction, matching the paper's four-packet
//! model:
//!
//! ```text
//! t          : transaction (query) arrives         -> demux (Data)
//! t          : query's transport-level ack sent    -> send-cache update
//! t + R      : response sent                       -> send-cache update
//! t + R + D  : response's transport-level ack back -> demux (Ack)
//! next query : t + R + D + think
//! ```
//!
//! The client-side halves of the round trip fold into `R` and `D` exactly
//! as the paper's timeline figures (Figures 5–11) do.

use crate::engine::EventQueue;
use crate::rng::SimRng;
use crate::runner::{run_trace, AlgoReport, TraceEvent};
use crate::time::SimTime;
use tcpdemux_core::{standard_suite, PacketKind, SuiteEntry};
use tcpdemux_hash::quality::tpca_key_population;
use tcpdemux_pcb::ConnectionKey;

/// Configuration for a TPC/A simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpcaSimConfig {
    /// Number of simulated users (= connections).
    pub users: u32,
    /// Transactions to measure (after warm-up).
    pub transactions: u64,
    /// Transactions to run (and discard) before measuring, letting the
    /// lookup structures reach their steady-state ordering.
    pub warmup_transactions: u64,
    /// Response time `R` in seconds.
    pub response_time: f64,
    /// Network round trip `D` in seconds.
    pub round_trip: f64,
    /// Mean think time in seconds (TPC/A minimum: 10).
    pub mean_think: f64,
    /// Think-time truncation point as a multiple of the mean (TPC/A
    /// minimum: 10).
    pub truncation_multiple: f64,
    /// Query segments per transaction (default 1). The paper's §3.4
    /// recounts runs with "old versions of database software that sent
    /// three times as many packets for each transaction as necessary",
    /// which inflated cache hit ratios to 30 % (up to 67 % if the extras
    /// arrive back to back) without reducing the PCBs searched per
    /// transaction. Set to 3 to reproduce that pitfall.
    pub queries_per_txn: u32,
}

impl Default for TpcaSimConfig {
    fn default() -> Self {
        Self {
            users: 2000,
            transactions: 20_000,
            warmup_transactions: 4_000,
            response_time: 0.2,
            round_trip: 0.01,
            mean_think: 10.0,
            truncation_multiple: 10.0,
            queries_per_txn: 1,
        }
    }
}

/// A TPC/A traffic simulator.
#[derive(Debug)]
pub struct TpcaSim {
    config: TpcaSimConfig,
    seed: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A user's transaction (query) arrives at the server.
    Txn(u32),
    /// The server transmits the response for a user's transaction.
    RspSend(u32),
    /// The transport-level acknowledgement of the response arrives.
    AckArrival(u32),
}

impl TpcaSim {
    /// Create a simulator; equal `(config, seed)` pairs produce identical
    /// traces.
    pub fn new(config: TpcaSimConfig, seed: u64) -> Self {
        assert!(config.users >= 2, "need at least two users");
        assert!(config.response_time > 0.0 && config.round_trip >= 0.0);
        assert!(config.mean_think > 0.0 && config.truncation_multiple >= 1.0);
        Self { config, seed }
    }

    /// The connection keys, one per user.
    pub fn keys(&self) -> Vec<ConnectionKey> {
        tpca_key_population(self.config.users as usize)
    }

    /// Generate the full event trace, returning `(warmup, measured)`
    /// segments. `Open` events for every connection lead the warm-up.
    pub fn trace(&self) -> (Vec<TraceEvent>, Vec<TraceEvent>) {
        let cfg = &self.config;
        let keys = self.keys();
        let mut rng = SimRng::new(self.seed);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut split_at: Option<usize> = None;

        for key in &keys {
            events.push(TraceEvent::Open {
                at: SimTime::ZERO,
                key: *key,
            });
        }

        // Users begin mid-think so the start is already in steady state.
        for user in 0..cfg.users {
            let first =
                rng.truncated_exponential(cfg.mean_think, cfg.mean_think * cfg.truncation_multiple);
            queue.schedule(SimTime::from_secs_f64(first), Ev::Txn(user));
        }

        let total_txns = cfg.warmup_transactions + cfg.transactions;
        let mut started = 0u64;
        let r = SimTime::from_secs_f64(cfg.response_time);
        let rd = SimTime::from_secs_f64(cfg.response_time + cfg.round_trip);

        while let Some((at, ev)) = queue.pop() {
            match ev {
                Ev::Txn(user) => {
                    if started >= total_txns {
                        // The transaction budget is spent; users whose
                        // events were already queued simply stop.
                        continue;
                    }
                    if started == cfg.warmup_transactions && split_at.is_none() {
                        split_at = Some(events.len());
                    }
                    started += 1;
                    let key = keys[user as usize];
                    for _ in 0..cfg.queries_per_txn.max(1) {
                        events.push(TraceEvent::Arrival {
                            at,
                            key,
                            kind: PacketKind::Data,
                        });
                    }
                    // Transport-level ack of the query goes out at once.
                    events.push(TraceEvent::Departure { at, key });
                    queue.schedule(at + r, Ev::RspSend(user));
                    queue.schedule(at + rd, Ev::AckArrival(user));
                }
                Ev::RspSend(user) => {
                    events.push(TraceEvent::Departure {
                        at,
                        key: keys[user as usize],
                    });
                }
                Ev::AckArrival(user) => {
                    events.push(TraceEvent::Arrival {
                        at,
                        key: keys[user as usize],
                        kind: PacketKind::Ack,
                    });
                    if started < total_txns {
                        let think = rng.truncated_exponential(
                            cfg.mean_think,
                            cfg.mean_think * cfg.truncation_multiple,
                        );
                        queue.schedule(at + SimTime::from_secs_f64(think), Ev::Txn(user));
                    }
                }
            }
        }

        let split = split_at.unwrap_or(events.len());
        let measured = events.split_off(split);
        (events, measured)
    }

    /// Run the trace through a caller-supplied suite: warm up, reset
    /// nothing (the structures keep their steady-state order), and report
    /// statistics over the measured segment only.
    pub fn run(&self, suite: &mut [SuiteEntry]) -> Vec<AlgoReport> {
        let (warmup, measured) = self.trace();
        let _ = run_trace(warmup, suite);
        run_trace(measured, suite)
    }

    /// Like [`TpcaSim::run`], but drive arrivals through the batched
    /// lookup path in batches of up to `batch_size` packets. Reports are
    /// identical to [`TpcaSim::run`]'s (see
    /// [`crate::runner::run_trace_batched`]).
    pub fn run_batched(&self, suite: &mut [SuiteEntry], batch_size: usize) -> Vec<AlgoReport> {
        let (warmup, measured) = self.trace();
        let _ = crate::runner::run_trace_batched(warmup, suite, batch_size);
        crate::runner::run_trace_batched(measured, suite, batch_size)
    }

    /// Run against [`standard_suite`].
    pub fn run_standard_suite(&self) -> Vec<AlgoReport> {
        let mut suite = standard_suite();
        self.run(&mut suite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_analytic as analytic;

    fn small_config() -> TpcaSimConfig {
        TpcaSimConfig {
            users: 200,
            transactions: 6_000,
            warmup_transactions: 1_000,
            response_time: 0.2,
            round_trip: 0.01,
            ..TpcaSimConfig::default()
        }
    }

    #[test]
    fn trace_is_reproducible() {
        let sim = TpcaSim::new(small_config(), 11);
        let (w1, m1) = sim.trace();
        let (w2, m2) = TpcaSim::new(small_config(), 11).trace();
        assert_eq!(w1, w2);
        assert_eq!(m1, m2);
        let (w3, _) = TpcaSim::new(small_config(), 12).trace();
        assert_ne!(w1, w3);
    }

    #[test]
    fn trace_structure() {
        let cfg = TpcaSimConfig {
            users: 10,
            transactions: 50,
            warmup_transactions: 10,
            ..TpcaSimConfig::default()
        };
        let sim = TpcaSim::new(cfg, 1);
        let (warmup, measured) = sim.trace();

        // Warmup leads with one Open per user.
        let opens = warmup
            .iter()
            .filter(|e| matches!(e, TraceEvent::Open { .. }))
            .count();
        assert_eq!(opens, 10);
        assert!(measured
            .iter()
            .all(|e| !matches!(e, TraceEvent::Open { .. })));

        // Every transaction contributes 2 arrivals and 2 departures.
        let all: Vec<_> = warmup.iter().chain(measured.iter()).collect();
        let arrivals = all
            .iter()
            .filter(|e| matches!(e, TraceEvent::Arrival { .. }))
            .count();
        let departures = all
            .iter()
            .filter(|e| matches!(e, TraceEvent::Departure { .. }))
            .count();
        assert_eq!(arrivals, 2 * 60);
        assert_eq!(departures, 2 * 60);

        // Data and Ack arrivals alternate per transaction: equal counts.
        let data = all
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Arrival {
                        kind: PacketKind::Data,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(data, 60);

        // Timestamps are nondecreasing within each segment.
        for seg in [&warmup, &measured] {
            for w in seg.windows(2) {
                assert!(w[0].at() <= w[1].at());
            }
        }
    }

    #[test]
    fn no_lost_packets() {
        let sim = TpcaSim::new(small_config(), 3);
        let reports = sim.run_standard_suite();
        for r in &reports {
            assert_eq!(r.lost_packets, 0, "{}", r.name);
            // Exactly one data packet per measured transaction; a handful
            // of warm-up transactions' acks are still in flight at the
            // measurement boundary, so ack lookups may exceed by at most
            // the number of users.
            assert_eq!(r.data_stats.lookups, 6_000, "{}", r.name);
            assert!(
                (12_000..12_000 + 200).contains(&r.stats.lookups),
                "{}: {}",
                r.name,
                r.stats.lookups
            );
        }
    }

    #[test]
    fn bsd_matches_equation_1() {
        let sim = TpcaSim::new(small_config(), 5);
        let reports = sim.run_standard_suite();
        let bsd = reports.iter().find(|r| r.name == "bsd").unwrap();
        let predicted = analytic::bsd::cost(200.0);
        let got = bsd.stats.mean_examined();
        assert!(
            (got - predicted).abs() / predicted < 0.05,
            "sim {got} vs Eq.1 {predicted}"
        );
    }

    #[test]
    fn mtf_matches_equation_6() {
        let sim = TpcaSim::new(small_config(), 7);
        let reports = sim.run_standard_suite();
        let mtf = reports.iter().find(|r| r.name == "mtf").unwrap();
        // The analytic model counts PCBs *preceding* the target; the
        // simulator counts PCBs *examined* (one more). Compare accordingly.
        let predicted = analytic::mtf::average_cost(200.0, 0.2) + 1.0;
        let got = mtf.stats.mean_examined();
        assert!(
            (got - predicted).abs() / predicted < 0.08,
            "sim {got} vs Eq.6 {predicted}"
        );
        // And the ack/entry split should match Eq. 5 vs N(2R).
        let entry_pred = analytic::mtf::entry_search_length(200.0, 0.2) + 1.0;
        let ack_pred = analytic::mtf::ack_search_length(200.0, 0.2) + 1.0;
        let entry_got = mtf.data_stats.mean_examined();
        let ack_got = mtf.ack_stats.mean_examined();
        assert!(
            (entry_got - entry_pred).abs() / entry_pred < 0.08,
            "entry {entry_got} vs {entry_pred}"
        );
        assert!(
            (ack_got - ack_pred).abs() / ack_pred < 0.25,
            "ack {ack_got} vs {ack_pred}"
        );
    }

    #[test]
    fn sequent_matches_equation_22() {
        let sim = TpcaSim::new(small_config(), 9);
        let reports = sim.run_standard_suite();
        let seq = reports.iter().find(|r| r.name == "sequent(19)").unwrap();
        let predicted = analytic::sequent::cost(200.0, 19.0, 0.2);
        let got = seq.stats.mean_examined();
        // Hash-chain imbalance adds variance; the shape must hold within
        // a generous band.
        assert!(
            (got - predicted).abs() / predicted < 0.30,
            "sim {got} vs Eq.22 {predicted}"
        );
    }

    #[test]
    fn ordering_matches_figure_13() {
        // The paper's qualitative claim at any scale: direct < sequent <
        // {mtf, send-recv} < bsd on TPC/A traffic.
        let sim = TpcaSim::new(small_config(), 13);
        let reports = sim.run_standard_suite();
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("{name}"))
                .stats
                .mean_examined()
        };
        assert!(get("direct-index") < get("sequent(100)"));
        assert!(get("sequent(100)") < get("sequent(19)"));
        assert!(get("sequent(19)") < get("mtf"));
        assert!(get("mtf") < get("bsd"));
        assert!(get("send-recv") < get("bsd") + 3.0);
        // Order-of-magnitude headline.
        assert!(get("bsd") / get("sequent(19)") > 5.0);
    }

    #[test]
    fn hit_ratio_pitfall_with_redundant_packets() {
        // §3.4: chatty software tripling the packets per transaction
        // inflates the cache hit ratio dramatically while the PCBs
        // searched *per transaction* do not improve. "Focusing strictly
        // on hit ratio is a common pitfall."
        let run = |queries_per_txn: u32| {
            let cfg = TpcaSimConfig {
                users: 200,
                transactions: 4_000,
                warmup_transactions: 500,
                queries_per_txn,
                ..TpcaSimConfig::default()
            };
            let reports = TpcaSim::new(cfg, 31).run_standard_suite();
            let seq = reports.iter().find(|r| r.name == "sequent(19)").unwrap();
            let per_txn = seq.stats.pcbs_examined as f64
                / (seq.data_stats.lookups as f64 / f64::from(queries_per_txn));
            (seq.stats.hit_rate(), per_txn)
        };
        let (hit_1x, per_txn_1x) = run(1);
        let (hit_3x, per_txn_3x) = run(3);

        // Hit ratio balloons (the back-to-back duplicates all hit)...
        assert!(hit_3x > hit_1x + 0.25, "hit {hit_1x} -> {hit_3x}");
        assert!(hit_3x > 0.45, "{hit_3x}");
        // ...but the work per transaction is at least as large.
        assert!(
            per_txn_3x >= per_txn_1x * 0.98,
            "per-txn cost {per_txn_1x} -> {per_txn_3x} must not improve"
        );
    }

    #[test]
    #[should_panic(expected = "at least two users")]
    fn one_user_rejected() {
        let cfg = TpcaSimConfig {
            users: 1,
            ..TpcaSimConfig::default()
        };
        let _ = TpcaSim::new(cfg, 0);
    }
}
