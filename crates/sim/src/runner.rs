//! Driving demultiplexers from a packet trace.
//!
//! Every workload generator ultimately produces a sequence of
//! [`TraceEvent`]s — the server's view of the network. [`run_trace`] feeds
//! one trace to many algorithms, recording per-algorithm and
//! per-packet-kind statistics. Feeding the *same* trace to every
//! algorithm makes comparisons paired: differences in mean PCBs examined
//! are purely algorithmic, not sampling noise.

use crate::time::SimTime;
use tcpdemux_core::{Histogram, LookupResult, LookupStats, PacketKind, SuiteEntry};
use tcpdemux_pcb::{ConnectionKey, Pcb, PcbArena, TcpState};
use tcpdemux_telemetry::{CloseCause, Event, HistogramId, Recorder, Snapshot};

/// One event in a server-side trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet arrived and must be demultiplexed.
    Arrival {
        /// When it arrived.
        at: SimTime,
        /// Its connection key (server perspective).
        key: ConnectionKey,
        /// Data segment or pure acknowledgement.
        kind: PacketKind,
    },
    /// The server sent a packet on a connection (updates send-side caches).
    Departure {
        /// When it was sent.
        at: SimTime,
        /// Its connection key (server perspective).
        key: ConnectionKey,
    },
    /// A connection was established (insert into the lookup structures).
    Open {
        /// When.
        at: SimTime,
        /// The new connection's key.
        key: ConnectionKey,
    },
    /// A connection was torn down (remove from the lookup structures).
    Close {
        /// When.
        at: SimTime,
        /// The departing connection's key.
        key: ConnectionKey,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Departure { at, .. }
            | TraceEvent::Open { at, .. }
            | TraceEvent::Close { at, .. } => at,
        }
    }
}

/// Results of running one algorithm over one trace.
#[derive(Debug, Clone)]
pub struct AlgoReport {
    /// Algorithm name (from [`SuiteEntry::name`]).
    pub name: String,
    /// Statistics over all arrivals.
    pub stats: LookupStats,
    /// Statistics over data arrivals only.
    pub data_stats: LookupStats,
    /// Statistics over acknowledgement arrivals only.
    pub ack_stats: LookupStats,
    /// Distribution of per-lookup costs (p50/p99/max expose the miss
    /// penalty the mean hides — the paper's §3.4 pitfall). A copy of the
    /// snapshot's `examined` histogram, kept as a field for convenience.
    pub histogram: Histogram,
    /// Number of lookups that failed to find a PCB (should be zero for
    /// well-formed traces; nonzero indicates a workload bug).
    pub lost_packets: u64,
    /// Full telemetry for this algorithm's run: counters, histograms and
    /// the trailing event trace, taken from [`SuiteEntry::recorder`]
    /// after the measured trace (recorders are reset when a run starts,
    /// so warm-up traffic never leaks in).
    pub snapshot: Snapshot,
}

/// Reset every recorder in a slice so a measurement interval starts from
/// zero everywhere at once.
///
/// A single-shard run passes `slice::from_ref(&entry.recorder)`; a
/// sharded run passes all K per-shard recorders (e.g.
/// [`ShardedStack::recorders`](tcpdemux_stack::ShardedStack::recorders))
/// so no shard carries warm-up traffic into the measured window.
pub fn reset_recorders(recorders: &[Recorder]) {
    for recorder in recorders {
        recorder.reset();
    }
}

/// Snapshot a slice of recorders and merge them into one [`Snapshot`].
///
/// Each recorder is read exactly once, so per-shard telemetry folds into
/// the aggregate without double-counting: counters and histogram buckets
/// add, and the event trace is the *first* recorder's (per-shard traces
/// interleave arbitrarily — concatenating them would fabricate an
/// ordering). An empty slice merges to an empty snapshot.
pub fn merged_snapshot(recorders: &[Recorder]) -> Snapshot {
    let mut iter = recorders.iter();
    let Some(first) = iter.next() else {
        return Snapshot::empty();
    };
    let mut merged = first.snapshot();
    for recorder in iter {
        merged.merge_aggregates(&recorder.snapshot());
    }
    merged
}

/// Empty per-algorithm reports, with every entry's recorder reset so the
/// run ahead is the only thing its snapshot will contain.
fn fresh_reports(suite: &[SuiteEntry]) -> Vec<AlgoReport> {
    suite
        .iter()
        .map(|e| {
            reset_recorders(std::slice::from_ref(&e.recorder));
            AlgoReport {
                name: e.name.clone(),
                stats: LookupStats::new(),
                data_stats: LookupStats::new(),
                ack_stats: LookupStats::new(),
                histogram: Histogram::new(),
                lost_packets: 0,
                snapshot: Snapshot::empty(),
            }
        })
        .collect()
}

/// Capture each entry's telemetry into its finished report. The cost
/// histogram is sourced from the snapshot — the recorder is the single
/// source of truth for distributions.
fn seal_reports(suite: &[SuiteEntry], reports: &mut [AlgoReport]) {
    for (entry, report) in suite.iter().zip(reports.iter_mut()) {
        report.snapshot = merged_snapshot(std::slice::from_ref(&entry.recorder));
        report.histogram = report.snapshot.histogram(HistogramId::Examined).clone();
    }
}

fn record_arrival(report: &mut AlgoReport, recorder: &Recorder, kind: PacketKind, r: LookupResult) {
    let found = r.pcb.is_some();
    if !found {
        report.lost_packets += 1;
    }
    report.stats.record(r.examined, found, r.cache_hit);
    recorder.demux_lookup(r.examined, found, r.cache_hit);
    match kind {
        PacketKind::Data => report.data_stats.record(r.examined, found, r.cache_hit),
        PacketKind::Ack => report.ack_stats.record(r.examined, found, r.cache_hit),
    }
}

/// Run a trace through a suite of algorithms.
///
/// `Open` events create a PCB in the shared arena (one per distinct key)
/// and insert it into every algorithm; `Arrival` events perform the
/// instrumented lookup; `Departure` events update send-side caches;
/// `Close` events remove the connection everywhere.
pub fn run_trace<I>(trace: I, suite: &mut [SuiteEntry]) -> Vec<AlgoReport>
where
    I: IntoIterator<Item = TraceEvent>,
{
    let mut arena = PcbArena::new();
    let mut reports = fresh_reports(suite);
    // Key -> PcbId mapping for Open/Close bookkeeping (not counted as
    // lookup work; it models the connection-management path, which the
    // paper does not charge to demultiplexing).
    let mut live: std::collections::HashMap<ConnectionKey, tcpdemux_pcb::PcbId> =
        std::collections::HashMap::new();

    for event in trace {
        match event {
            TraceEvent::Open { key, .. } => {
                let id = *live
                    .entry(key)
                    .or_insert_with(|| arena.insert(Pcb::new_in_state(key, TcpState::Established)));
                for entry in suite.iter_mut() {
                    entry.demux.insert(key, id);
                    entry.recorder.event(Event::ConnOpen);
                }
            }
            TraceEvent::Close { key, .. } => {
                if let Some(id) = live.remove(&key) {
                    for entry in suite.iter_mut() {
                        entry.demux.remove(&key);
                        entry.recorder.event(Event::ConnClose {
                            cause: CloseCause::Graceful,
                        });
                    }
                    arena.remove(id);
                }
            }
            TraceEvent::Departure { key, .. } => {
                for entry in suite.iter_mut() {
                    entry.demux.note_send(&key);
                }
            }
            TraceEvent::Arrival { key, kind, .. } => {
                for (entry, report) in suite.iter_mut().zip(reports.iter_mut()) {
                    let r = entry.demux.lookup(&key, kind);
                    record_arrival(report, &entry.recorder, kind, r);
                }
            }
        }
    }
    seal_reports(suite, &mut reports);
    reports
}

/// Like [`run_trace`], but arrivals flow through
/// [`tcpdemux_core::Demux::lookup_batch`] in batches of up to
/// `batch_size` packets.
///
/// A pending batch is flushed early whenever a connection-management or
/// departure event interleaves, so every lookup observes exactly the
/// table state the sequential runner would have shown it. The reports are
/// therefore identical to [`run_trace`]'s on any trace (pinned by tests);
/// what changes is the wall-clock cost of producing them, which the
/// `batch_rx` bench measures.
pub fn run_trace_batched<I>(
    trace: I,
    suite: &mut [SuiteEntry],
    batch_size: usize,
) -> Vec<AlgoReport>
where
    I: IntoIterator<Item = TraceEvent>,
{
    assert!(batch_size > 0, "batch size must be nonzero");
    let mut arena = PcbArena::new();
    let mut reports = fresh_reports(suite);
    let mut live: std::collections::HashMap<ConnectionKey, tcpdemux_pcb::PcbId> =
        std::collections::HashMap::new();
    let mut pending: Vec<(ConnectionKey, PacketKind)> = Vec::with_capacity(batch_size);
    let mut results: Vec<LookupResult> = Vec::with_capacity(batch_size);

    fn flush(
        pending: &mut Vec<(ConnectionKey, PacketKind)>,
        results: &mut Vec<LookupResult>,
        suite: &mut [SuiteEntry],
        reports: &mut [AlgoReport],
    ) {
        if pending.is_empty() {
            return;
        }
        for (entry, report) in suite.iter_mut().zip(reports.iter_mut()) {
            entry.demux.lookup_batch(pending, results);
            entry.recorder.batch(pending.len() as u32);
            for (&(_, kind), &r) in pending.iter().zip(results.iter()) {
                record_arrival(report, &entry.recorder, kind, r);
            }
        }
        pending.clear();
    }

    for event in trace {
        match event {
            TraceEvent::Arrival { key, kind, .. } => {
                pending.push((key, kind));
                if pending.len() >= batch_size {
                    flush(&mut pending, &mut results, suite, &mut reports);
                }
            }
            other => {
                flush(&mut pending, &mut results, suite, &mut reports);
                match other {
                    TraceEvent::Open { key, .. } => {
                        let id = *live.entry(key).or_insert_with(|| {
                            arena.insert(Pcb::new_in_state(key, TcpState::Established))
                        });
                        for entry in suite.iter_mut() {
                            entry.demux.insert(key, id);
                            entry.recorder.event(Event::ConnOpen);
                        }
                    }
                    TraceEvent::Close { key, .. } => {
                        if let Some(id) = live.remove(&key) {
                            for entry in suite.iter_mut() {
                                entry.demux.remove(&key);
                                entry.recorder.event(Event::ConnClose {
                                    cause: CloseCause::Graceful,
                                });
                            }
                            arena.remove(id);
                        }
                    }
                    TraceEvent::Departure { key, .. } => {
                        for entry in suite.iter_mut() {
                            entry.demux.note_send(&key);
                        }
                    }
                    TraceEvent::Arrival { .. } => unreachable!("matched above"),
                }
            }
        }
    }
    flush(&mut pending, &mut results, suite, &mut reports);
    seal_reports(suite, &mut reports);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tcpdemux_core::standard_suite;

    fn key(n: u32) -> ConnectionKey {
        ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1521,
            Ipv4Addr::from(0x0a02_0000 + n),
            40_000,
        )
    }

    #[test]
    fn open_arrival_close_lifecycle() {
        let trace = vec![
            TraceEvent::Open {
                at: SimTime(0),
                key: key(0),
            },
            TraceEvent::Open {
                at: SimTime(0),
                key: key(1),
            },
            TraceEvent::Arrival {
                at: SimTime(1),
                key: key(0),
                kind: PacketKind::Data,
            },
            TraceEvent::Departure {
                at: SimTime(2),
                key: key(0),
            },
            TraceEvent::Arrival {
                at: SimTime(3),
                key: key(0),
                kind: PacketKind::Ack,
            },
            TraceEvent::Close {
                at: SimTime(4),
                key: key(1),
            },
            TraceEvent::Arrival {
                at: SimTime(5),
                key: key(1),
                kind: PacketKind::Data,
            },
        ];
        let mut suite = standard_suite();
        let reports = run_trace(trace, &mut suite);
        for report in &reports {
            assert_eq!(report.stats.lookups, 3, "{}", report.name);
            assert_eq!(report.data_stats.lookups, 2);
            assert_eq!(report.ack_stats.lookups, 1);
            // The arrival after Close must miss — exactly one lost packet.
            assert_eq!(report.lost_packets, 1, "{}", report.name);
            // The histogram saw every lookup and agrees with the stats.
            assert_eq!(report.histogram.count(), 3);
            assert!(
                (report.histogram.mean() - report.stats.mean_examined()).abs() < 1e-9,
                "{}",
                report.name
            );
            // The telemetry snapshot is the same story, structured.
            use tcpdemux_telemetry::CounterId;
            let snap = &report.snapshot;
            assert_eq!(snap.counter(CounterId::Lookups), 3, "{}", report.name);
            assert_eq!(snap.counter(CounterId::DemuxMisses), 1);
            assert_eq!(snap.counter(CounterId::ConnOpened), 2);
            assert_eq!(snap.counter(CounterId::ConnClosed), 1);
            assert_eq!(
                snap.counter(CounterId::PcbsExamined),
                report.stats.pcbs_examined
            );
            assert_eq!(snap.histogram(HistogramId::Examined).count(), 3);
            // Trace: 2 opens + 3 lookups + 1 close = 6 events.
            assert_eq!(snap.events_recorded(), 6, "{}", report.name);
        }
    }

    #[test]
    fn event_timestamps_accessible() {
        let e = TraceEvent::Arrival {
            at: SimTime(9),
            key: key(0),
            kind: PacketKind::Data,
        };
        assert_eq!(e.at(), SimTime(9));
        assert_eq!(
            TraceEvent::Close {
                at: SimTime(3),
                key: key(0)
            }
            .at(),
            SimTime(3)
        );
    }

    #[test]
    fn duplicate_open_is_idempotent() {
        let trace = vec![
            TraceEvent::Open {
                at: SimTime(0),
                key: key(0),
            },
            TraceEvent::Open {
                at: SimTime(1),
                key: key(0),
            },
            TraceEvent::Arrival {
                at: SimTime(2),
                key: key(0),
                kind: PacketKind::Data,
            },
        ];
        let mut suite = standard_suite();
        let reports = run_trace(trace, &mut suite);
        for report in &reports {
            assert_eq!(report.lost_packets, 0);
        }
        for entry in &suite {
            assert_eq!(entry.demux.len(), 1, "{}", entry.name);
        }
    }

    fn lifecycle_trace() -> Vec<TraceEvent> {
        let mut trace: Vec<TraceEvent> = (0..20)
            .map(|i| TraceEvent::Open {
                at: SimTime(i),
                key: key(i as u32),
            })
            .collect();
        for i in 0..400u64 {
            trace.push(TraceEvent::Arrival {
                at: SimTime(20 + i),
                key: key(((i * 7) % 25) as u32), // 20 live + 5 misses
                kind: if i % 3 == 0 {
                    PacketKind::Ack
                } else {
                    PacketKind::Data
                },
            });
            if i % 37 == 0 {
                trace.push(TraceEvent::Departure {
                    at: SimTime(20 + i),
                    key: key((i % 20) as u32),
                });
            }
            if i % 97 == 0 {
                trace.push(TraceEvent::Close {
                    at: SimTime(20 + i),
                    key: key((i % 20) as u32),
                });
            }
        }
        trace
    }

    fn reports_equal(a: &[AlgoReport], b: &[AlgoReport]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.stats, y.stats, "{}", x.name);
            assert_eq!(x.data_stats, y.data_stats, "{}", x.name);
            assert_eq!(x.ack_stats, y.ack_stats, "{}", x.name);
            assert_eq!(x.lost_packets, y.lost_packets, "{}", x.name);
            assert_eq!(x.histogram.count(), y.histogram.count(), "{}", x.name);
        }
    }

    #[test]
    fn batched_runner_matches_sequential() {
        let trace = lifecycle_trace();
        let baseline = run_trace(trace.clone(), &mut standard_suite());
        for batch_size in [1usize, 8, 32, 128] {
            let batched = run_trace_batched(trace.clone(), &mut standard_suite(), batch_size);
            reports_equal(&baseline, &batched);
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be nonzero")]
    fn batched_runner_rejects_zero() {
        let _ = run_trace_batched(Vec::new(), &mut standard_suite(), 0);
    }

    #[test]
    fn paired_comparison_same_lookup_counts() {
        let trace: Vec<TraceEvent> = (0..10)
            .map(|i| TraceEvent::Open {
                at: SimTime(i),
                key: key(i as u32),
            })
            .chain((0..100).map(|i| TraceEvent::Arrival {
                at: SimTime(10 + i),
                key: key((i % 10) as u32),
                kind: PacketKind::Data,
            }))
            .collect();
        let mut suite = standard_suite();
        let reports = run_trace(trace, &mut suite);
        for r in &reports {
            assert_eq!(r.stats.lookups, 100);
            assert_eq!(r.lost_packets, 0);
        }
        // Direct index must be the cheapest; BSD the most expensive here.
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .stats
                .mean_examined()
        };
        assert!(get("direct-index") <= get("sequent(19)"));
        assert!(get("sequent(19)") <= get("bsd"));
    }
}
