//! Deterministic round-robin polling workload.
//!
//! §3.2: "if the think times were deterministic (exactly 10 seconds
//! always), Crowcroft's algorithm would look through all 2,000 PCBs on
//! each transaction entry. One example of a system with this behavior is a
//! central server polling its clients, as seen in many point-of-sale
//! terminal applications." This workload realizes that adversary: the
//! server polls each client in a fixed rotation, and every client answers
//! in turn.

use crate::runner::TraceEvent;
use crate::time::SimTime;
use tcpdemux_core::PacketKind;
use tcpdemux_hash::quality::tpca_key_population;

/// Configuration for the polling workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollingConfig {
    /// Number of polled terminals (connections).
    pub terminals: u32,
    /// Complete polling cycles to run.
    pub cycles: u32,
    /// Microseconds between consecutive polls.
    pub poll_interval_micros: u64,
}

impl Default for PollingConfig {
    fn default() -> Self {
        Self {
            terminals: 200,
            cycles: 20,
            poll_interval_micros: 1000,
        }
    }
}

/// Generate the polling trace: per poll, the server sends the poll
/// (a `Departure`) and the terminal's answer arrives (an `Arrival`).
pub fn trace(config: PollingConfig) -> Vec<TraceEvent> {
    assert!(config.terminals >= 1 && config.cycles >= 1);
    let keys = tpca_key_population(config.terminals as usize);
    let mut events: Vec<TraceEvent> = keys
        .iter()
        .map(|&key| TraceEvent::Open {
            at: SimTime::ZERO,
            key,
        })
        .collect();
    let mut now = SimTime::ZERO;
    for _cycle in 0..config.cycles {
        for &key in &keys {
            now += SimTime(config.poll_interval_micros);
            events.push(TraceEvent::Departure { at: now, key });
            events.push(TraceEvent::Arrival {
                at: now,
                key,
                kind: PacketKind::Data,
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use tcpdemux_core::standard_suite;

    fn reports(config: PollingConfig) -> Vec<crate::runner::AlgoReport> {
        let mut suite = standard_suite();
        let full = trace(config);
        // Warm up one cycle so every structure reaches steady state, then
        // measure the rest.
        let events_per_cycle = 2 * config.terminals as usize;
        let opens = config.terminals as usize;
        let warmup: Vec<_> = full[..opens + events_per_cycle].to_vec();
        let measured: Vec<_> = full[opens + events_per_cycle..].to_vec();
        let _ = run_trace(warmup, &mut suite);
        run_trace(measured, &mut suite)
    }

    #[test]
    fn mtf_degrades_to_full_scan() {
        let cfg = PollingConfig {
            terminals: 100,
            cycles: 5,
            ..PollingConfig::default()
        };
        let rs = reports(cfg);
        let mtf = rs.iter().find(|r| r.name == "mtf").unwrap();
        // Every single poll under MTF scans all N PCBs — the paper's
        // deterministic worst case, *worse* than plain BSD.
        assert!(
            (mtf.stats.mean_examined() - 100.0).abs() < 1e-9,
            "{}",
            mtf.stats.mean_examined()
        );
        let bsd = rs.iter().find(|r| r.name == "bsd").unwrap();
        assert!(mtf.stats.mean_examined() > bsd.stats.mean_examined());
    }

    #[test]
    fn send_recv_cache_shines_on_polling() {
        // The poll goes out just before the answer comes back: the
        // send-side cache holds exactly the right PCB. Partridge & Pink's
        // scheme was designed for this locality.
        let cfg = PollingConfig {
            terminals: 100,
            cycles: 5,
            ..PollingConfig::default()
        };
        let rs = reports(cfg);
        let sr = rs.iter().find(|r| r.name == "send-recv").unwrap();
        assert!(
            sr.stats.mean_examined() <= 2.0,
            "{}",
            sr.stats.mean_examined()
        );
        assert!(sr.stats.hit_rate() > 0.99);
    }

    #[test]
    fn sequent_scans_chains_round_robin() {
        // Within each chain the rotation is also round-robin, so each
        // lookup scans its whole chain (~N/H) plus the cache probe — still
        // an order of magnitude below MTF's N.
        let cfg = PollingConfig {
            terminals: 190,
            cycles: 5,
            ..PollingConfig::default()
        };
        let rs = reports(cfg);
        let seq = rs.iter().find(|r| r.name == "sequent(19)").unwrap();
        let mean = seq.stats.mean_examined();
        assert!(
            (5.0..30.0).contains(&mean),
            "expected ≈ N/H + 1 = 11, got {mean}"
        );
    }

    #[test]
    fn deterministic_trace() {
        let cfg = PollingConfig::default();
        assert_eq!(trace(cfg), trace(cfg));
    }
}
