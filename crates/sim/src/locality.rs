//! Zipf-distributed connection popularity ("network locality").
//!
//! Mogul's SIGCOMM '91 measurements — the motivation the paper cites for
//! Partridge & Pink's cache — showed that a few connections carry most
//! packets. This workload draws each packet's connection from a Zipf
//! distribution with tunable skew: exponent 0 is uniform (the OLTP
//! regime), larger exponents concentrate traffic (the regime where the
//! one-entry caches recover).

use crate::rng::SimRng;
use crate::runner::TraceEvent;
use crate::time::SimTime;
use tcpdemux_core::PacketKind;
use tcpdemux_hash::quality::tpca_key_population;

/// Configuration for the locality workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// Number of connections.
    pub connections: u32,
    /// Zipf exponent `s ≥ 0` (0 = uniform).
    pub exponent: f64,
    /// Packets to emit.
    pub packets: u64,
    /// Microseconds between packets.
    pub inter_packet_micros: u64,
}

impl Default for LocalityConfig {
    fn default() -> Self {
        Self {
            connections: 500,
            exponent: 1.0,
            packets: 50_000,
            inter_packet_micros: 100,
        }
    }
}

/// A sampler over ranks `0..n` with probability `∝ 1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the cumulative table for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1 && s >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u)
    }

    /// The probability of the most popular rank.
    pub fn top_probability(&self) -> f64 {
        self.cdf[0]
    }
}

/// Generate a locality trace (with leading `Open`s).
pub fn trace(config: LocalityConfig, seed: u64) -> Vec<TraceEvent> {
    assert!(config.connections >= 1);
    let keys = tpca_key_population(config.connections as usize);
    let sampler = ZipfSampler::new(keys.len(), config.exponent);
    let mut rng = SimRng::new(seed);
    let mut events: Vec<TraceEvent> = keys
        .iter()
        .map(|&key| TraceEvent::Open {
            at: SimTime::ZERO,
            key,
        })
        .collect();
    let mut now = SimTime::ZERO;
    for _ in 0..config.packets {
        now += SimTime(config.inter_packet_micros);
        events.push(TraceEvent::Arrival {
            at: now,
            key: keys[sampler.sample(&mut rng)],
            kind: PacketKind::Data,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use tcpdemux_core::standard_suite;

    #[test]
    fn zipf_zero_is_uniform() {
        let sampler = ZipfSampler::new(100, 0.0);
        let mut rng = SimRng::new(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.4, "max {max} min {min}");
    }

    #[test]
    fn zipf_skew_concentrates() {
        let s1 = ZipfSampler::new(100, 1.0);
        let s2 = ZipfSampler::new(100, 2.0);
        assert!(s2.top_probability() > s1.top_probability());
        assert!(s1.top_probability() > 1.0 / 100.0);
        // s = 2 over 100 ranks: top rank has p = 1/ζ₁₀₀(2) ≈ 0.62.
        assert!((s2.top_probability() - 0.62).abs() < 0.02);
    }

    #[test]
    fn sample_is_in_range() {
        let sampler = ZipfSampler::new(7, 1.5);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn caches_recover_with_skew() {
        // As locality rises, the BSD cache hit rate must rise (Mogul's
        // observation) and MTF's mean cost must fall (popular PCBs stay
        // near the front). Note BSD's *cost* need not fall: the popular
        // rank-0 key sits at the tail of BSD's static list, so its misses
        // stay maximally expensive — the paper's §3.4 pitfall that "the
        // hit ratio is only part of the story".
        let mut prev_hit = -1.0;
        let mut prev_mtf_cost = f64::INFINITY;
        for s in [0.0, 1.0, 2.0] {
            let cfg = LocalityConfig {
                connections: 200,
                exponent: s,
                packets: 20_000,
                ..LocalityConfig::default()
            };
            let mut suite = standard_suite();
            let reports = run_trace(trace(cfg, 3), &mut suite);
            let bsd = reports.iter().find(|r| r.name == "bsd").unwrap();
            let mtf = reports.iter().find(|r| r.name == "mtf").unwrap();
            assert!(
                bsd.stats.hit_rate() > prev_hit,
                "s={s}: hit rate must increase"
            );
            assert!(
                mtf.stats.mean_examined() < prev_mtf_cost,
                "s={s}: MTF cost must decrease"
            );
            prev_hit = bsd.stats.hit_rate();
            prev_mtf_cost = mtf.stats.mean_examined();
        }
    }

    #[test]
    fn sequent_still_wins_at_moderate_skew() {
        let cfg = LocalityConfig {
            connections: 500,
            exponent: 1.0,
            packets: 30_000,
            ..LocalityConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 4), &mut suite);
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .stats
                .mean_examined()
        };
        assert!(get("sequent(19)") < get("bsd"));
        assert!(get("sequent(19)") < get("mtf"));
    }

    #[test]
    fn reproducible() {
        let cfg = LocalityConfig::default();
        assert_eq!(trace(cfg, 5), trace(cfg, 5));
    }
}
