//! Simulation time: integer microseconds.
//!
//! Integer time makes event ordering exact and reproducible; microsecond
//! resolution is three orders of magnitude below the paper's smallest
//! parameter (the 1 ms round trip), so discretization error is invisible.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from seconds (fractional seconds fine down to 1 µs).
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and nonnegative, got {secs}"
        );
        SimTime((secs * 1e6).round() as u64)
    }

    /// This instant in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference (zero if `earlier` is actually later).
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_roundtrip() {
        let t = SimTime::from_secs_f64(0.2);
        assert_eq!(t.as_micros(), 200_000);
        assert!((t.as_secs_f64() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn microsecond_resolution() {
        assert_eq!(SimTime::from_secs_f64(1e-6).as_micros(), 1);
        assert_eq!(SimTime::from_secs_f64(0.0).as_micros(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(30);
        assert_eq!(a + b, SimTime(130));
        assert_eq!(a - b, SimTime(70));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime(130));
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime(70));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
