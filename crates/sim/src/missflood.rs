//! Miss-flood workload: an IPS-style front end under collision attack.
//!
//! The paper's workloads assume every arriving packet belongs to a live
//! connection, so a lookup always ends at a PCB. An intrusion-prevention
//! system (or any middlebox watching a span port) sees the opposite mix:
//! millions of short-lived flows plus deliberate junk, where most
//! lookups *miss* — and a miss is the worst case for a chained
//! structure, because it walks the entire chain before giving up. Worse,
//! an adversary who knows the hash function can craft spoofed keys that
//! all collide into one chain, turning every attack packet into a
//! maximum-length walk (the classic algorithmic-complexity attack on
//! hash tables).
//!
//! This scenario runs that exact mix through a comparison suite:
//!
//! * a working set of long-lived **live flows** whose packets must all
//!   hit;
//! * **churn sessions** that open, exchange a few packets, and close
//!   while the flood is in progress, exercising insert/remove sync in
//!   any wrapper that mirrors the backing structure (the fingerprint
//!   front filter must track every one of these exactly or a later live
//!   lookup turns into a false negative);
//! * **attack packets** whose keys are crafted with [`attack_keys`] to
//!   collide into a single Multiplicative chain and are guaranteed
//!   misses.
//!
//! Unlike [`crate::runner::run_trace`], misses here are *expected*, so
//! the driver is its own loop: it asserts per-arrival that every
//! algorithm agrees on the PCB (paired equivalence), that live lookups
//! always hit, and that attack lookups always miss — a front-filter
//! false negative anywhere fails the run loudly rather than showing up
//! as a skewed statistic.

use crate::rng::SimRng;
use std::net::Ipv4Addr;
use tcpdemux_core::{LookupStats, PacketKind, SuiteEntry};
use tcpdemux_hash::{KeyHasher, Multiplicative};
use tcpdemux_pcb::{ConnectionKey, Pcb, PcbArena, TcpState};
use tcpdemux_telemetry::Snapshot;

/// Configuration for the miss-flood scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissFloodConfig {
    /// Long-lived flows inserted before the flood; their packets must
    /// always find a PCB.
    pub live_flows: u32,
    /// Short-lived sessions that open, transact, and close during the
    /// flood (filter insert/remove churn under fire).
    pub churn_sessions: u32,
    /// Data packets each churn session exchanges while open, and the
    /// per-live-flow packet budget for the legitimate traffic stream.
    pub packets_per_flow: u32,
    /// Guaranteed-miss attack packets, each with a distinct spoofed key
    /// crafted to collide into one chain.
    pub attack_packets: u32,
    /// Chain count of the Sequent tier the attack targets; the crafted
    /// keys all land in one bucket of a `Multiplicative`-hashed table
    /// with this many chains.
    pub collision_chains: usize,
}

impl Default for MissFloodConfig {
    fn default() -> Self {
        Self {
            live_flows: 256,
            churn_sessions: 512,
            packets_per_flow: 4,
            attack_packets: 4_096,
            collision_chains: 19,
        }
    }
}

/// Results of running one algorithm through the miss-flood mix.
#[derive(Debug, Clone)]
pub struct MissFloodReport {
    /// Algorithm name (from [`SuiteEntry::name`]).
    pub name: String,
    /// Statistics over every arrival — live, churn, and attack.
    pub stats: LookupStats,
    /// Statistics over legitimate arrivals only (live flows and open
    /// churn sessions); `not_found` must be zero.
    pub live_stats: LookupStats,
    /// Statistics over attack arrivals only; every one misses, so
    /// `mean_examined` here is the structure's per-packet cost of
    /// saying "no".
    pub attack_stats: LookupStats,
    /// Full telemetry for the run, taken from [`SuiteEntry::recorder`]
    /// after the flood (recorders are reset when the run starts).
    pub snapshot: Snapshot,
}

/// A long-lived live flow's key. Subnet `10.1.0.0/16`, disjoint from
/// churn and attack key spaces.
fn live_key(n: u32) -> ConnectionKey {
    ConnectionKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        1521,
        Ipv4Addr::from(0x0a01_0000 + (n / 16_000)),
        (49_152 + (n % 16_000)) as u16,
    )
}

/// A churn session's key. Subnet `10.2.0.0/16`.
fn churn_key(n: u32) -> ConnectionKey {
    ConnectionKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        1521,
        Ipv4Addr::from(0x0a02_0000 + (n / 16_000)),
        (49_152 + (n % 16_000)) as u16,
    )
}

/// The `n`-th candidate spoofed key, from the attack's own subnet
/// (`172.16.0.0/12`) so it can never alias a legitimate flow.
fn spoof_candidate(n: u32) -> ConnectionKey {
    ConnectionKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        1521,
        Ipv4Addr::from(0xac10_0000 + (n / 16_000)),
        (49_152 + (n % 16_000)) as u16,
    )
}

/// Craft `count` distinct spoofed keys that all hash into the chain of
/// [`live_key`]`(0)` under [`Multiplicative`] with `chains` buckets —
/// the attacker aims the flood at a chain that also holds legitimate
/// state, so every attack packet walks past real PCBs before missing.
///
/// This is an offline dictionary attack: enumerate candidate
/// address/port pairs and keep the ~`1/chains` fraction that collide.
/// It needs no weakness in the hash beyond its being public.
pub fn attack_keys(count: usize, chains: usize) -> Vec<ConnectionKey> {
    assert!(chains > 0, "collision target needs at least one chain");
    let target = Multiplicative.bucket(&live_key(0), chains);
    let mut keys = Vec::with_capacity(count);
    let mut n = 0u32;
    while keys.len() < count {
        let candidate = spoof_candidate(n);
        if Multiplicative.bucket(&candidate, chains) == target {
            keys.push(candidate);
        }
        n = n
            .checked_add(1)
            .expect("exhausted the spoofed key space before finding enough collisions");
    }
    keys
}

/// One churn session's lifecycle position.
struct ChurnSession {
    id: u32,
    packets_left: u32,
}

/// Run the miss-flood mix through a suite of algorithms.
///
/// Every recorder in the suite is reset first, so the returned
/// snapshots contain exactly this run. The driver interleaves the three
/// streams (live traffic, churn lifecycles, attack packets) in a
/// seed-deterministic order and checks, per arrival, that all
/// algorithms return the same PCB. Panics — deliberately — if a
/// legitimate lookup misses (a false negative) or an attack lookup
/// hits (a phantom PCB).
pub fn run(config: MissFloodConfig, seed: u64, suite: &mut [SuiteEntry]) -> Vec<MissFloodReport> {
    assert!(config.live_flows > 0, "need at least one live flow");
    let mut rng = SimRng::new(seed);
    let mut arena = PcbArena::new();
    for entry in suite.iter_mut() {
        entry.recorder.reset();
    }
    let mut reports: Vec<MissFloodReport> = suite
        .iter()
        .map(|e| MissFloodReport {
            name: e.name.clone(),
            stats: LookupStats::new(),
            live_stats: LookupStats::new(),
            attack_stats: LookupStats::new(),
            snapshot: Snapshot::empty(),
        })
        .collect();

    // Establish the live working set.
    let live: Vec<ConnectionKey> = (0..config.live_flows).map(live_key).collect();
    let mut live_pcbs = Vec::with_capacity(live.len());
    for &key in &live {
        let id = arena.insert(Pcb::new_in_state(key, TcpState::Established));
        live_pcbs.push(id);
        for entry in suite.iter_mut() {
            entry.demux.insert(key, id);
        }
    }

    let attack = attack_keys(config.attack_packets as usize, config.collision_chains);

    // Remaining work per stream; each step draws a category with
    // probability proportional to what is left, so the flood and the
    // legitimate traffic interleave rather than running back to back.
    let mut live_left = u64::from(config.live_flows) * u64::from(config.packets_per_flow);
    let mut attack_left = attack.len() as u64;
    let mut next_attack = 0usize;
    let mut churn_unstarted = config.churn_sessions;
    let mut open_sessions: Vec<ChurnSession> = Vec::new();
    // Each churn session still owes open + packets + close steps.
    let churn_steps_per_session = u64::from(config.packets_per_flow) + 2;
    let mut churn_left = u64::from(config.churn_sessions) * churn_steps_per_session;

    // A legitimate arrival: must hit, and every algorithm must agree on
    // which PCB it hits.
    fn legit_arrival(
        suite: &mut [SuiteEntry],
        reports: &mut [MissFloodReport],
        key: &ConnectionKey,
        kind: PacketKind,
    ) {
        let mut agreed = None;
        for (entry, report) in suite.iter_mut().zip(reports.iter_mut()) {
            let r = entry.demux.lookup(key, kind);
            assert!(
                r.pcb.is_some(),
                "{}: false negative — live flow {key:?} not found",
                entry.name
            );
            match agreed {
                None => agreed = Some(r.pcb),
                Some(expected) => assert_eq!(
                    r.pcb, expected,
                    "{}: disagrees on the PCB for {key:?}",
                    entry.name
                ),
            }
            report.stats.record(r.examined, true, r.cache_hit);
            report.live_stats.record(r.examined, true, r.cache_hit);
            entry.recorder.demux_lookup(r.examined, true, r.cache_hit);
        }
    }

    while live_left + attack_left + churn_left > 0 {
        let pick = rng.below(live_left + attack_left + churn_left);
        if pick < live_left {
            live_left -= 1;
            let key = live[rng.below(live.len() as u64) as usize];
            let kind = if rng.below(2) == 0 {
                PacketKind::Data
            } else {
                PacketKind::Ack
            };
            legit_arrival(suite, &mut reports, &key, kind);
        } else if pick < live_left + attack_left {
            attack_left -= 1;
            let key = attack[next_attack];
            next_attack += 1;
            for (entry, report) in suite.iter_mut().zip(reports.iter_mut()) {
                let r = entry.demux.lookup(&key, PacketKind::Data);
                assert!(
                    r.pcb.is_none(),
                    "{}: spoofed key {key:?} matched a real PCB",
                    entry.name
                );
                report.stats.record(r.examined, false, r.cache_hit);
                report.attack_stats.record(r.examined, false, r.cache_hit);
                entry.recorder.demux_lookup(r.examined, false, r.cache_hit);
            }
        } else {
            churn_left -= 1;
            // Open a fresh session when none are open, or by coin flip
            // while unstarted ones remain; otherwise advance a random
            // open session through its packets and eventual close.
            let open_new = churn_unstarted > 0 && (open_sessions.is_empty() || rng.below(2) == 0);
            if open_new {
                churn_unstarted -= 1;
                let id = config.churn_sessions - churn_unstarted - 1;
                let key = churn_key(id);
                let pcb = arena.insert(Pcb::new_in_state(key, TcpState::Established));
                for entry in suite.iter_mut() {
                    entry.demux.insert(key, pcb);
                }
                open_sessions.push(ChurnSession {
                    id,
                    packets_left: config.packets_per_flow,
                });
            } else {
                let slot = rng.below(open_sessions.len() as u64) as usize;
                let session = &mut open_sessions[slot];
                let key = churn_key(session.id);
                if session.packets_left > 0 {
                    session.packets_left -= 1;
                    legit_arrival(suite, &mut reports, &key, PacketKind::Data);
                } else {
                    open_sessions.swap_remove(slot);
                    let mut removed = None;
                    for entry in suite.iter_mut() {
                        let r = entry.demux.remove(&key);
                        assert!(r.is_some(), "{}: lost churn session {key:?}", entry.name);
                        match removed {
                            None => removed = Some(r),
                            Some(expected) => assert_eq!(r, expected, "{}", entry.name),
                        }
                    }
                    if let Some(Some(id)) = removed {
                        arena.remove(id);
                    }
                }
            }
        }
    }

    assert!(open_sessions.is_empty(), "driver left churn sessions open");
    for (entry, report) in suite.iter().zip(reports.iter_mut()) {
        assert_eq!(
            entry.demux.len(),
            live.len(),
            "{}: table should hold exactly the live flows after the flood",
            entry.name
        );
        report.snapshot = entry.recorder.snapshot();
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_core::standard_suite;
    use tcpdemux_telemetry::{CounterId, HistogramId};

    fn small() -> MissFloodConfig {
        MissFloodConfig {
            live_flows: 128,
            churn_sessions: 256,
            packets_per_flow: 3,
            attack_packets: 2_048,
            collision_chains: 19,
        }
    }

    #[test]
    fn attack_keys_collide_into_one_chain() {
        let keys = attack_keys(500, 19);
        assert_eq!(keys.len(), 500);
        let target = Multiplicative.bucket(&keys[0], 19);
        for key in &keys {
            assert_eq!(Multiplicative.bucket(key, 19), target);
        }
        // Distinct keys: a flood of repeats would be trivially cacheable.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
        // And aimed at live state, not an empty chain.
        assert_eq!(target, Multiplicative.bucket(&live_key(0), 19));
    }

    #[test]
    fn live_traffic_hits_and_attack_misses_everywhere() {
        let cfg = small();
        let mut suite = standard_suite();
        let reports = run(cfg, 31, &mut suite);
        for report in &reports {
            assert_eq!(report.live_stats.not_found, 0, "{}", report.name);
            assert_eq!(
                report.attack_stats.lookups,
                u64::from(cfg.attack_packets),
                "{}",
                report.name
            );
            assert_eq!(
                report.attack_stats.not_found, report.attack_stats.lookups,
                "{}",
                report.name
            );
            assert_eq!(
                report.stats.lookups,
                report.live_stats.lookups + report.attack_stats.lookups,
                "{}",
                report.name
            );
        }
    }

    #[test]
    fn front_filter_rejects_the_flood() {
        let cfg = small();
        let mut suite = standard_suite();
        let reports = run(cfg, 7, &mut suite);
        for name in ["front+sequent(19)", "front+cuckoo"] {
            let report = reports.iter().find(|r| r.name == name).unwrap();
            let rejects = report.snapshot.counter(CounterId::FrontRejects);
            let fps = report.snapshot.counter(CounterId::FrontFalsePositives);
            // Every miss is either rejected by the filter or a
            // fingerprint collision that fell through.
            assert_eq!(rejects + fps, report.attack_stats.not_found, "{name}");
            // Collisions are rare: 8 candidate 16-bit lanes per probe.
            assert!(
                fps <= 16,
                "{name}: {fps} false positives in {} attack packets",
                cfg.attack_packets
            );
            // Filter inserts sampled occupancy as the table churned.
            let occupancy = report.snapshot.histogram(HistogramId::FrontOccupancy);
            assert!(occupancy.count() > 0, "{name}");
        }
    }

    #[test]
    fn front_filter_neutralizes_the_collision_attack() {
        let cfg = small();
        let mut suite = standard_suite();
        let reports = run(cfg, 42, &mut suite);
        let attack_mean = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .attack_stats
                .mean_examined()
        };
        // Bare chaining walks the whole crafted chain per attack packet;
        // the front filter answers from one or two filter words.
        let bare = attack_mean("sequent(19)");
        let front = attack_mean("front+sequent(19)");
        assert!(
            front < bare / 8.0,
            "front filter should neutralize the flood: bare={bare:.2}, front={front:.2}"
        );
        // The crafted chain is far longer than the balanced average.
        assert!(
            bare > 4.0,
            "collision attack failed to pile up a chain: {bare:.2}"
        );
        // Hit-path cost is unharmed: live traffic through the filtered
        // tier costs no more than through the bare tier (plus the
        // filter's own probe, which examines no PCBs).
        let live_mean = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .live_stats
                .mean_examined()
        };
        assert!(live_mean("front+sequent(19)") <= live_mean("sequent(19)") + 1e-9);
    }

    #[test]
    fn reproducible() {
        let cfg = small();
        let a = run(cfg, 9, &mut standard_suite());
        let b = run(cfg, 9, &mut standard_suite());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.stats, y.stats, "{}", x.name);
            assert_eq!(x.live_stats, y.live_stats, "{}", x.name);
            assert_eq!(x.attack_stats, y.attack_stats, "{}", x.name);
        }
    }
}
