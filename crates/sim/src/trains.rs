//! Packet-train (bulk transfer) workload.
//!
//! Jain & Routhier observed that network traffic arrives in *trains*:
//! bursts of consecutive packets on the same connection. Bulk-data TCP
//! (the traffic Van Jacobson's work optimized, §1) is the extreme case.
//! This workload draws a connection uniformly, then emits a
//! geometrically-distributed train of data packets on it — the regime in
//! which the BSD one-entry cache shines, included so the benchmarks show
//! *both* sides of the paper's trade-off (the hash scheme must not lose
//! here: "while still maintaining good performance for packet-train
//! traffic").

use crate::rng::SimRng;
use crate::runner::TraceEvent;
use crate::time::SimTime;
use tcpdemux_core::PacketKind;
use tcpdemux_hash::quality::tpca_key_population;

/// Configuration for the packet-train workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of concurrent connections.
    pub connections: u32,
    /// Mean train length (packets per burst); must be ≥ 1.
    pub mean_train_len: f64,
    /// Total packets to emit.
    pub packets: u64,
    /// Microseconds between consecutive packets.
    pub inter_packet_micros: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            connections: 32,
            mean_train_len: 16.0,
            packets: 50_000,
            inter_packet_micros: 100,
        }
    }
}

/// Generate a packet-train trace (with leading `Open`s).
pub fn trace(config: TrainConfig, seed: u64) -> Vec<TraceEvent> {
    assert!(config.connections >= 1);
    assert!(config.mean_train_len >= 1.0);
    let keys = tpca_key_population(config.connections as usize);
    let mut rng = SimRng::new(seed);
    let mut events: Vec<TraceEvent> = keys
        .iter()
        .map(|&key| TraceEvent::Open {
            at: SimTime::ZERO,
            key,
        })
        .collect();

    let mut emitted = 0u64;
    let mut now = SimTime::ZERO;
    let p = 1.0 / config.mean_train_len;
    while emitted < config.packets {
        let key = keys[rng.below(u64::from(config.connections)) as usize];
        let len = rng.geometric(p).min(config.packets - emitted);
        for _ in 0..len {
            now += SimTime(config.inter_packet_micros);
            events.push(TraceEvent::Arrival {
                at: now,
                key,
                kind: PacketKind::Data,
            });
            emitted += 1;
        }
        // The receiver acknowledges the train; its ack is *sent* by the
        // host under study, updating send-side caches.
        events.push(TraceEvent::Departure { at: now, key });
    }
    events
}

/// The expected one-entry-cache hit rate for mean train length `L`
/// drawn geometrically: every packet after the first in a train hits, so
/// the hit rate is `1 − 1/L`.
pub fn expected_bsd_hit_rate(mean_train_len: f64) -> f64 {
    assert!(mean_train_len >= 1.0);
    1.0 - 1.0 / mean_train_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_trace;
    use tcpdemux_core::standard_suite;

    #[test]
    fn trace_has_requested_packets() {
        let cfg = TrainConfig {
            packets: 1000,
            ..TrainConfig::default()
        };
        let events = trace(cfg, 1);
        let arrivals = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Arrival { .. }))
            .count();
        assert_eq!(arrivals, 1000);
    }

    #[test]
    fn bsd_cache_hit_rate_matches_train_model() {
        let cfg = TrainConfig {
            connections: 64,
            mean_train_len: 16.0,
            packets: 40_000,
            ..TrainConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 2), &mut suite);
        let bsd = reports.iter().find(|r| r.name == "bsd").unwrap();
        let predicted = expected_bsd_hit_rate(16.0);
        let got = bsd.stats.hit_rate();
        // Back-to-back trains on the same connection merge, nudging the
        // hit rate slightly above 1 − 1/L.
        assert!(
            (got - predicted).abs() < 0.03,
            "hit rate {got} vs predicted {predicted}"
        );
        // And the mean cost is tiny — nothing like the OLTP regime.
        assert!(
            bsd.stats.mean_examined() < 5.0,
            "{}",
            bsd.stats.mean_examined()
        );
    }

    #[test]
    fn sequent_does_not_lose_on_trains() {
        // "while still maintaining good performance for packet-train
        // traffic": the hash scheme's cost on trains must stay within a
        // PCB or so of BSD's.
        let cfg = TrainConfig {
            connections: 64,
            mean_train_len: 16.0,
            packets: 40_000,
            ..TrainConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 3), &mut suite);
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name == name)
                .unwrap()
                .stats
                .mean_examined()
        };
        assert!(get("sequent(19)") <= get("bsd") + 1.0);
        // MTF also excels on trains.
        assert!(get("mtf") < 5.0);
    }

    #[test]
    fn single_connection_all_hits_after_first() {
        let cfg = TrainConfig {
            connections: 1,
            mean_train_len: 8.0,
            packets: 1000,
            ..TrainConfig::default()
        };
        let mut suite = standard_suite();
        let reports = run_trace(trace(cfg, 4), &mut suite);
        for r in &reports {
            assert!(
                r.stats.mean_examined() <= 1.01,
                "{}: {}",
                r.name,
                r.stats.mean_examined()
            );
        }
    }

    #[test]
    fn reproducible() {
        let cfg = TrainConfig::default();
        assert_eq!(trace(cfg, 9), trace(cfg, 9));
        assert_ne!(trace(cfg, 9), trace(cfg, 10));
    }
}
