//! Plain-text trace serialization.
//!
//! Workload traces can be written to disk and replayed later (or fed to
//! an external tool) in a one-event-per-line format:
//!
//! ```text
//! O <micros> <local>:<port> <remote>:<port>      # connection opened
//! C <micros> <local>:<port> <remote>:<port>      # connection closed
//! D <micros> <local>:<port> <remote>:<port>      # packet sent by host
//! A <micros> <local>:<port> <remote>:<port> d|a  # packet arrived (data/ack)
//! ```
//!
//! The format is deliberately trivial — greppable, diffable, and free of
//! external dependencies — and round-trips exactly.

use crate::runner::TraceEvent;
use crate::time::SimTime;
use core::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;
use tcpdemux_core::PacketKind;
use tcpdemux_pcb::ConnectionKey;

/// Errors produced while parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

fn write_key(out: &mut String, key: &ConnectionKey) {
    use core::fmt::Write;
    let _ = write!(
        out,
        "{}:{} {}:{}",
        key.local_addr, key.local_port, key.remote_addr, key.remote_port
    );
}

/// Serialize a trace to its text form.
pub fn write_trace<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    for event in events {
        match event {
            TraceEvent::Open { at, key } => {
                let _ = write!(out, "O {} ", at.as_micros());
                write_key(&mut out, key);
            }
            TraceEvent::Close { at, key } => {
                let _ = write!(out, "C {} ", at.as_micros());
                write_key(&mut out, key);
            }
            TraceEvent::Departure { at, key } => {
                let _ = write!(out, "D {} ", at.as_micros());
                write_key(&mut out, key);
            }
            TraceEvent::Arrival { at, key, kind } => {
                let _ = write!(out, "A {} ", at.as_micros());
                write_key(&mut out, key);
                let _ = write!(
                    out,
                    " {}",
                    match kind {
                        PacketKind::Data => "d",
                        PacketKind::Ack => "a",
                    }
                );
            }
        }
        out.push('\n');
    }
    out
}

fn parse_endpoint(token: &str, line: usize) -> Result<(Ipv4Addr, u16), TraceParseError> {
    let err = |reason: &str| TraceParseError {
        line,
        reason: format!("{reason}: {token:?}"),
    };
    let (addr, port) = token.rsplit_once(':').ok_or_else(|| err("missing ':'"))?;
    let addr = Ipv4Addr::from_str(addr).map_err(|_| err("bad address"))?;
    let port = port.parse::<u16>().map_err(|_| err("bad port"))?;
    Ok((addr, port))
}

/// Parse the text form back into events. Blank lines and lines starting
/// with `#` are ignored.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| TraceParseError {
            line: line_no,
            reason: reason.to_string(),
        };
        let mut fields = line.split_whitespace();
        let tag = fields.next().ok_or_else(|| err("empty line"))?;
        let at = fields
            .next()
            .ok_or_else(|| err("missing timestamp"))?
            .parse::<u64>()
            .map_err(|_| err("bad timestamp"))?;
        let at = SimTime(at);
        let local = parse_endpoint(fields.next().ok_or_else(|| err("missing local"))?, line_no)?;
        let remote = parse_endpoint(fields.next().ok_or_else(|| err("missing remote"))?, line_no)?;
        let key = ConnectionKey::new(local.0, local.1, remote.0, remote.1);
        let event = match tag {
            "O" => TraceEvent::Open { at, key },
            "C" => TraceEvent::Close { at, key },
            "D" => TraceEvent::Departure { at, key },
            "A" => {
                let kind = match fields.next() {
                    Some("d") => PacketKind::Data,
                    Some("a") => PacketKind::Ack,
                    other => {
                        return Err(TraceParseError {
                            line: line_no,
                            reason: format!("bad packet kind {other:?}"),
                        })
                    }
                };
                TraceEvent::Arrival { at, key, kind }
            }
            other => {
                return Err(TraceParseError {
                    line: line_no,
                    reason: format!("unknown tag {other:?}"),
                })
            }
        };
        if fields.next().is_some() {
            return Err(err("trailing fields"));
        }
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpca::{TpcaSim, TpcaSimConfig};

    #[test]
    fn roundtrips_a_real_workload() {
        let sim = TpcaSim::new(
            TpcaSimConfig {
                users: 20,
                transactions: 50,
                warmup_transactions: 10,
                ..TpcaSimConfig::default()
            },
            7,
        );
        let (warmup, measured) = sim.trace();
        for segment in [warmup, measured] {
            let text = write_trace(segment.iter());
            let parsed = parse_trace(&text).unwrap();
            assert_eq!(parsed, segment);
        }
    }

    #[test]
    fn format_is_human_readable() {
        use std::net::Ipv4Addr;
        let key = tcpdemux_pcb::ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1521,
            Ipv4Addr::new(10, 0, 9, 9),
            40001,
        );
        let events = [
            TraceEvent::Open {
                at: SimTime(0),
                key,
            },
            TraceEvent::Arrival {
                at: SimTime(1500),
                key,
                kind: PacketKind::Ack,
            },
        ];
        let text = write_trace(events.iter());
        assert_eq!(
            text,
            "O 0 10.0.0.1:1521 10.0.9.9:40001\nA 1500 10.0.0.1:1521 10.0.9.9:40001 a\n"
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a comment\n\nO 0 1.2.3.4:80 5.6.7.8:9000\n";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("X 0 1.2.3.4:80 5.6.7.8:9000", "unknown tag"),
            ("A zz 1.2.3.4:80 5.6.7.8:9000 d", "bad timestamp"),
            ("A 0 1.2.3.480 5.6.7.8:9000 d", "missing ':'"),
            ("A 0 1.2.3:80 5.6.7.8:9000 d", "bad address"),
            ("A 0 1.2.3.4:99999 5.6.7.8:9000 d", "bad port"),
            ("A 0 1.2.3.4:80 5.6.7.8:9000 x", "bad packet kind"),
            ("A 0 1.2.3.4:80 5.6.7.8:9000", "bad packet kind"),
            ("O 0 1.2.3.4:80 5.6.7.8:9000 extra", "trailing"),
            ("O 0", "missing local"),
        ];
        for (bad, expected) in cases {
            let text = format!("# leading comment\n{bad}\n");
            let err = parse_trace(&text).unwrap_err();
            assert_eq!(err.line, 2, "{bad}");
            assert!(err.reason.contains(expected), "{bad}: got {:?}", err.reason);
            assert!(err.to_string().contains("line 2"));
        }
    }

    #[test]
    fn parsed_trace_runs_identically() {
        // A trace replayed from text produces identical statistics.
        use crate::runner::run_trace;
        use tcpdemux_core::standard_suite;

        let sim = TpcaSim::new(
            TpcaSimConfig {
                users: 30,
                transactions: 200,
                warmup_transactions: 0,
                ..TpcaSimConfig::default()
            },
            21,
        );
        let (_, measured) = sim.trace();
        let text = write_trace(measured.iter());
        let replayed = parse_trace(&text).unwrap();

        let mut suite_a = standard_suite();
        let mut suite_b = standard_suite();
        let reports_a = run_trace(measured, &mut suite_a);
        let reports_b = run_trace(replayed, &mut suite_b);
        for (a, b) in reports_a.iter().zip(reports_b.iter()) {
            assert_eq!(a.stats, b.stats, "{}", a.name);
        }
    }
}
