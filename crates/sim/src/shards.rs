//! Deterministic multi-shard scenario driver.
//!
//! Runs a complete request/response workload against a
//! [`ShardedStack`] server — handshakes, data transfer, teardown — with
//! one client [`Stack`] per connection, shuttling every frame through the
//! sharded runtime's ingress rings ([`ShardedStack::enqueue`] /
//! [`ShardedStack::drain`]). Everything is single-threaded and the event
//! order is a pure function of the config, so two runs with the same
//! seed produce byte-identical results.
//!
//! The point of the driver is the *shard-count invariance* experiment:
//! steering and per-shard state must be invisible to applications, so
//! running the same seed at K=1 and K=4 must yield identical
//! per-connection byte streams on both sides (pinned by
//! `tests/shard_properties.rs`). It also feeds the `mt_stack` bench a
//! deterministic single-threaded baseline.

use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;
use tcpdemux_pcb::{ConnectionKey, PcbId};
use tcpdemux_stack::{
    PlacementStats, RingStats, RxOutcome, ShardId, ShardedStack, Stack, StackConfig, StatsSnapshot,
    TxScratch,
};

use crate::rng::SimRng;

/// The server's address in every scenario.
pub const SHARD_SIM_SERVER: Ipv4Addr = Ipv4Addr::new(10, 42, 0, 1);
/// The listening port in every scenario.
pub const SHARD_SIM_PORT: u16 = 1521;

/// Which traffic mix a scenario run generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardWorkload {
    /// TPC/A-shaped: small request, small response, one exchange per
    /// connection per round (the paper's §2 workload, sans think times —
    /// the driver is about correctness and steering, not queueing).
    Tpca,
    /// Bulk-transfer-shaped: tiny request, multi-segment response
    /// (packet trains, §3.1).
    Bulk,
}

/// Scenario parameters. Equal configs produce byte-identical runs.
#[derive(Debug, Clone, Copy)]
pub struct ShardScenarioConfig {
    /// Number of shards for the server runtime.
    pub shards: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Request/response rounds per connection.
    pub rounds: usize,
    /// RNG seed for payload sizes and contents.
    pub seed: u64,
    /// Traffic mix.
    pub workload: ShardWorkload,
    /// Capacity of each shard's ingress ring.
    pub ring_capacity: usize,
}

impl ShardScenarioConfig {
    /// A TPC/A-mix scenario at the given shard count and seed.
    pub fn tpca(shards: usize, seed: u64) -> Self {
        Self {
            shards,
            connections: 32,
            rounds: 4,
            seed,
            workload: ShardWorkload::Tpca,
            ring_capacity: 256,
        }
    }

    /// A bulk-mix scenario at the given shard count and seed.
    pub fn bulk(shards: usize, seed: u64) -> Self {
        Self {
            shards,
            connections: 8,
            rounds: 4,
            seed,
            workload: ShardWorkload::Bulk,
            ring_capacity: 256,
        }
    }
}

/// The application-visible byte streams of one connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnStreams {
    /// Bytes the server application read from its socket.
    pub server_rx: Vec<u8>,
    /// Bytes the client application read from its socket.
    pub client_rx: Vec<u8>,
}

/// Everything a scenario run produced.
#[derive(Debug)]
pub struct ShardScenarioReport {
    /// Per-connection byte streams, keyed by the *server-perspective*
    /// four-tuple. This is the shard-count-invariant quantity.
    pub per_connection: BTreeMap<ConnectionKey, ConnStreams>,
    /// Merged stats across all shards (one introspection surface).
    pub stats: StatsSnapshot,
    /// Steering placements (local vs cross-shard `connect` hints).
    pub placements: PlacementStats,
    /// Per-shard ingress-ring counters.
    pub rings: Vec<RingStats>,
    /// Frames pushed into the server's ingress rings.
    pub frames_to_server: u64,
    /// Frames delivered to client stacks.
    pub frames_to_clients: u64,
}

struct ClientSlot {
    stack: Stack,
    pcb: PcbId,
    addr: Ipv4Addr,
    inbox: VecDeque<Vec<u8>>,
    server_key: ConnectionKey,
    server_loc: Option<(ShardId, PcbId)>,
}

/// Run one scenario to completion. See the module docs for the shape.
pub fn run_shard_scenario(cfg: &ShardScenarioConfig) -> ShardScenarioReport {
    assert!(cfg.shards > 0 && cfg.connections > 0);
    let server = ShardedStack::with_config(
        StackConfig::new(SHARD_SIM_SERVER).with_ring_capacity(cfg.ring_capacity),
        cfg.shards,
    );
    server.listen(SHARD_SIM_PORT).expect("fresh port");

    let mut to_server: VecDeque<Vec<u8>> = VecDeque::new();
    let mut frames_to_server = 0u64;
    let mut frames_to_clients = 0u64;

    // Handshake every client through the rings.
    let mut clients: Vec<ClientSlot> = (0..cfg.connections)
        .map(|i| {
            let addr = Ipv4Addr::new(10, 42, 1 + (i >> 8) as u8, (i & 0xff) as u8);
            let mut stack = Stack::with_config(StackConfig::new(addr));
            let (pcb, syn) = stack
                .connect(SHARD_SIM_SERVER, SHARD_SIM_PORT)
                .expect("connect");
            to_server.push_back(syn);
            let client_key = stack.connection_key(pcb).expect("live pcb");
            // The server sees the mirrored four-tuple.
            let server_key = ConnectionKey::new(
                SHARD_SIM_SERVER,
                SHARD_SIM_PORT,
                client_key.local_addr,
                client_key.local_port,
            );
            ClientSlot {
                stack,
                pcb,
                addr,
                inbox: VecDeque::new(),
                server_key,
                server_loc: None,
            }
        })
        .collect();
    pump(
        &server,
        &mut clients,
        &mut to_server,
        &mut frames_to_server,
        &mut frames_to_clients,
    );
    for client in &clients {
        assert!(
            client.stack.is_established(client.pcb),
            "handshake failed for {}",
            client.addr
        );
    }

    // Locate each accepted connection: the accept queue tells us the
    // owning shard, the PCB's key tells us which client it belongs to.
    let mut accepted: BTreeMap<ConnectionKey, (ShardId, PcbId)> = BTreeMap::new();
    while let Some((shard, pcb)) = server.accept(SHARD_SIM_PORT) {
        let key = server
            .with_shard(shard, |stack| stack.connection_key(pcb))
            .expect("accepted pcb has a key");
        accepted.insert(key, (shard, pcb));
    }
    assert_eq!(
        accepted.len(),
        cfg.connections,
        "every SYN must be accepted"
    );
    for client in &mut clients {
        client.server_loc = Some(accepted[&client.server_key]);
    }

    // Request/response rounds. All requests of a round are enqueued
    // before any draining happens, so frames from different connections
    // genuinely share the rings.
    let mut streams: BTreeMap<ConnectionKey, ConnStreams> = clients
        .iter()
        .map(|c| (c.server_key, ConnStreams::default()))
        .collect();
    let mut rng = SimRng::new(cfg.seed);
    let mut scratch = TxScratch::new();
    for _round in 0..cfg.rounds {
        let mut responses: Vec<(usize, Vec<u8>)> = Vec::new();
        for (i, client) in clients.iter_mut().enumerate() {
            let (request, response) = exchange_payloads(cfg.workload, &mut rng);
            let accepted = client.stack.send(client.pcb, &request).expect("send");
            assert_eq!(accepted, request.len(), "request fits the send buffer");
            client.stack.poll_transmit(&mut scratch);
            to_server.extend(scratch.frames.drain(..));
            responses.push((i, response));
        }
        pump(
            &server,
            &mut clients,
            &mut to_server,
            &mut frames_to_server,
            &mut frames_to_clients,
        );
        for (i, response) in responses {
            let client = &mut clients[i];
            let (shard, pcb) = client.server_loc.expect("accepted");
            // The server application echoes its read and sends the
            // response in MSS-safe chunks.
            let read = server.with_shard(shard, |stack| {
                stack.socket_mut(pcb).expect("server socket").read_all()
            });
            streams
                .get_mut(&client.server_key)
                .expect("known connection")
                .server_rx
                .extend_from_slice(&read);
            for chunk in response.chunks(512) {
                let accepted =
                    server.with_shard(shard, |stack| stack.send(pcb, chunk).expect("send"));
                assert_eq!(accepted, chunk.len(), "chunk fits the send buffer");
            }
            server.poll_transmit(shard, &mut scratch);
            client.inbox.extend(scratch.frames.drain(..));
        }
        pump(
            &server,
            &mut clients,
            &mut to_server,
            &mut frames_to_server,
            &mut frames_to_clients,
        );
        for client in &mut clients {
            let delivered = client
                .stack
                .socket_mut(client.pcb)
                .expect("client socket")
                .read_all();
            streams
                .get_mut(&client.server_key)
                .expect("known connection")
                .client_rx
                .extend_from_slice(&delivered);
        }
    }

    // Graceful teardown from the client side exercises FIN handling on
    // whichever shard owns each connection.
    for client in &mut clients {
        let fin = client.stack.close(client.pcb).expect("close");
        to_server.push_back(fin);
    }
    pump(
        &server,
        &mut clients,
        &mut to_server,
        &mut frames_to_server,
        &mut frames_to_clients,
    );

    ShardScenarioReport {
        per_connection: streams,
        stats: server.stats(),
        placements: server.placements(),
        rings: server.ring_stats(),
        frames_to_server,
        frames_to_clients,
    }
}

/// One round's request and expected-response payloads, drawn from the
/// scenario RNG. Both are functions of the seed alone — never of the
/// shard count — which is what makes the invariance experiment valid.
fn exchange_payloads(workload: ShardWorkload, rng: &mut SimRng) -> (Vec<u8>, Vec<u8>) {
    let (req_len, resp_len) = match workload {
        ShardWorkload::Tpca => (64 + rng.below(64) as usize, 128 + rng.below(128) as usize),
        ShardWorkload::Bulk => (16, 2048 + rng.below(2048) as usize),
    };
    let mut request = Vec::with_capacity(req_len);
    for _ in 0..req_len {
        request.push(rng.below(256) as u8);
    }
    let mut response = Vec::with_capacity(resp_len);
    for _ in 0..resp_len {
        response.push(rng.below(256) as u8);
    }
    (request, response)
}

/// Shuttle frames until the network is quiet: push everything bound for
/// the server into its rings, drain every shard in order, route replies
/// to clients by destination address, feed client inboxes, and collect
/// the ACKs they generate — repeating until no frame moved.
fn pump(
    server: &ShardedStack,
    clients: &mut [ClientSlot],
    to_server: &mut VecDeque<Vec<u8>>,
    frames_to_server: &mut u64,
    frames_to_clients: &mut u64,
) {
    loop {
        let mut moved = false;
        while let Some(frame) = to_server.pop_front() {
            moved = true;
            *frames_to_server += 1;
            let mut frame = frame;
            loop {
                match server.enqueue(frame) {
                    Ok(_) => break,
                    Err(full) => {
                        // Ring back-pressure: drain the hot shard and
                        // retry. Replies produced here are routed below.
                        route_batch(server.drain(full.shard, usize::MAX), clients);
                        frame = full.frame;
                    }
                }
            }
        }
        for shard in 0..server.shards() {
            let batch = server.drain(ShardId::new(shard), usize::MAX);
            if !batch.results.is_empty() {
                moved = true;
            }
            route_batch(batch, clients);
        }
        for client in clients.iter_mut() {
            while let Some(frame) = client.inbox.pop_front() {
                moved = true;
                *frames_to_clients += 1;
                let result = client.stack.receive(&frame).expect("client rx");
                assert!(
                    !matches!(result.outcome, RxOutcome::ResetSent),
                    "client {} reset a server frame",
                    client.addr
                );
                to_server.extend(result.replies);
            }
        }
        if !moved {
            return;
        }
    }
}

/// Route every reply frame in a drained batch to the client that owns
/// its destination address (IPv4 bytes 16..20 — these are raw IP frames).
fn route_batch(batch: tcpdemux_stack::BatchRxResult, clients: &mut [ClientSlot]) {
    for result in batch.results {
        let rx = result.expect("server rx");
        for reply in rx.replies {
            let dst = Ipv4Addr::new(reply[16], reply[17], reply[18], reply[19]);
            let client = clients
                .iter_mut()
                .find(|c| c.addr == dst)
                .unwrap_or_else(|| panic!("reply to unknown client {dst}"));
            client.inbox.push_back(reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpca_scenario_round_trips_every_connection() {
        let report = run_shard_scenario(&ShardScenarioConfig {
            connections: 8,
            rounds: 2,
            ..ShardScenarioConfig::tpca(4, 7)
        });
        assert_eq!(report.per_connection.len(), 8);
        for (key, streams) in &report.per_connection {
            assert!(!streams.server_rx.is_empty(), "{key:?} sent nothing");
            assert!(!streams.client_rx.is_empty(), "{key:?} got nothing");
        }
        assert!(report.frames_to_server > 0 && report.frames_to_clients > 0);
    }

    #[test]
    fn same_seed_same_shards_is_byte_identical() {
        let cfg = ShardScenarioConfig::tpca(2, 11);
        let a = run_shard_scenario(&cfg);
        let b = run_shard_scenario(&cfg);
        assert_eq!(a.per_connection, b.per_connection);
        assert_eq!(a.frames_to_server, b.frames_to_server);
    }

    #[test]
    fn bulk_scenario_streams_multi_segment_responses() {
        let report = run_shard_scenario(&ShardScenarioConfig::bulk(2, 3));
        for streams in report.per_connection.values() {
            assert!(streams.client_rx.len() > 1024, "bulk response too small");
        }
    }
}
