//! Multi-seed replication: mean and spread of a simulated metric.
//!
//! A single simulation run is one draw from the workload's distribution;
//! the cross-validation tables should say how wide that distribution is.
//! [`replicate`] runs a closure over several seeds and summarizes the
//! resulting samples (mean, standard deviation, and a ±half-width from
//! the normal approximation), so experiment reports can print
//! `54.6 ± 0.4` instead of a bare point estimate.

/// Summary statistics over replicated simulation runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replication {
    /// Number of runs.
    pub runs: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single run).
    pub std_dev: f64,
}

impl Replication {
    /// Summarize a set of samples. Panics on an empty set.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std_dev = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        Self {
            runs: samples.len(),
            mean,
            std_dev,
        }
    }

    /// Approximate 95 % confidence half-width (`1.96·σ/√n`; normal
    /// approximation, fine for the ≥5 runs experiments use).
    pub fn half_width(&self) -> f64 {
        if self.runs < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.runs as f64).sqrt()
    }

    /// `"mean ± half-width"` with sensible precision.
    pub fn display(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.half_width())
    }
}

/// Run `metric` once per seed and summarize the results.
pub fn replicate(
    seeds: impl IntoIterator<Item = u64>,
    mut metric: impl FnMut(u64) -> f64,
) -> Replication {
    let samples: Vec<f64> = seeds.into_iter().map(&mut metric).collect();
    Replication::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpca::{TpcaSim, TpcaSimConfig};

    #[test]
    fn summary_arithmetic() {
        let r = Replication::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.runs, 5);
        assert!((r.mean - 3.0).abs() < 1e-12);
        assert!((r.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((r.half_width() - 1.96 * r.std_dev / 5f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.display(), "3.0 ± 1.4");
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let r = Replication::from_samples(&[42.0]);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = Replication::from_samples(&[]);
    }

    #[test]
    fn tpca_replication_brackets_the_analytic_value() {
        // Five seeds of a small TPC/A run: the analytic BSD cost must lie
        // within (mean ± 3·half-width) — a loose but meaningful check
        // that the simulator's spread is honest.
        let cfg = TpcaSimConfig {
            users: 100,
            transactions: 2_000,
            warmup_transactions: 400,
            ..TpcaSimConfig::default()
        };
        let rep = replicate(1..=5u64, |seed| {
            let reports = TpcaSim::new(cfg, seed).run_standard_suite();
            reports
                .iter()
                .find(|r| r.name == "bsd")
                .unwrap()
                .stats
                .mean_examined()
        });
        let predicted = tcpdemux_analytic::bsd::cost(100.0);
        let hw = rep.half_width().max(1.0);
        assert!(
            (rep.mean - predicted).abs() < 3.0 * hw,
            "mean {} ± {} vs analytic {}",
            rep.mean,
            hw,
            predicted
        );
        assert!(
            rep.std_dev < predicted * 0.1,
            "spread is small: {}",
            rep.std_dev
        );
    }

    #[test]
    fn replicate_is_deterministic_given_seeds() {
        let f = |seed: u64| (seed as f64) * 2.0;
        let a = replicate(vec![1, 2, 3], f);
        let b = replicate(vec![1, 2, 3], f);
        assert_eq!(a, b);
    }
}
