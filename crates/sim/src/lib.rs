//! Discrete-event simulation of the paper's traffic workloads.
//!
//! The paper validates its analytic models "qualitatively ... by
//! benchmarks" on hardware we do not have; this crate substitutes a
//! discrete-event simulation of the same traffic (see DESIGN.md). The
//! simulator generates the *server-side packet arrival process* of each
//! workload and drives every demultiplexing algorithm with the identical
//! trace, so measured mean PCBs-examined are directly comparable to the
//! analytic predictions and across algorithms (paired comparison — no
//! sampling noise between algorithms).
//!
//! Workloads:
//!
//! * [`tpca`] — the TPC/A model of §2: `N` users, truncated-exponential
//!   think times, response time `R`, round-trip `D`, four packets per
//!   transaction (two of which the server receives).
//! * [`trains`] — bulk-transfer packet trains (the traffic the BSD cache
//!   was designed for).
//! * [`polling`] — deterministic round-robin polling (the point-of-sale
//!   worst case for move-to-front, §3.2).
//! * [`locality`] — Zipf-distributed connection popularity (Mogul's
//!   "network locality" traffic, cited in §3.3).
//! * [`missflood`] — an IPS-style mix where most lookups miss, including
//!   hash-collision attack traffic (the front filter's reason to exist).
//!
//! # Example
//!
//! ```
//! use tcpdemux_sim::tpca::{TpcaSim, TpcaSimConfig};
//!
//! let config = TpcaSimConfig {
//!     users: 200,
//!     transactions: 2_000,
//!     ..TpcaSimConfig::default()
//! };
//! let reports = TpcaSim::new(config, 42).run_standard_suite();
//! let bsd = reports.iter().find(|r| r.name == "bsd").unwrap();
//! let seq = reports.iter().find(|r| r.name == "sequent(19)").unwrap();
//! // Hashing wins by roughly N/H — an order of magnitude at 200 users.
//! assert!(bsd.stats.mean_examined() > 5.0 * seq.stats.mean_examined());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bulk;
pub mod churn;
pub mod engine;
pub mod locality;
pub mod lossy;
pub mod missflood;
pub mod polling;
pub mod replicate;
pub mod rng;
pub mod runner;
pub mod shards;
pub mod time;
pub mod tpca;
pub mod trace_io;
pub mod trains;

pub use lossy::{
    run_lossy_link, run_lossy_link_with_telemetry, LossyLinkConfig, LossyLinkReport,
    LossyLinkTelemetry,
};
pub use runner::{merged_snapshot, reset_recorders, run_trace, AlgoReport, TraceEvent};
pub use shards::{
    run_shard_scenario, ConnStreams, ShardScenarioConfig, ShardScenarioReport, ShardWorkload,
};
pub use time::SimTime;
