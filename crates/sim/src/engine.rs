//! A minimal discrete-event engine: a time-ordered event queue with
//! deterministic FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: fires at `at`; equal times fire in scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: SimTime,
    seq: u64,
}

/// A discrete-event queue over event payloads `E`.
///
/// ```
/// use tcpdemux_sim::engine::EventQueue;
/// use tcpdemux_sim::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(20), "late");
/// q.schedule(SimTime(10), "early");
/// q.schedule(SimTime(10), "early-second");
/// assert_eq!(q.pop(), Some((SimTime(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Entry, EventBox<E>)>>,
    next_seq: u64,
    now: SimTime,
}

/// Wrapper that exempts the payload from the ordering (only `Entry`
/// determines order; payloads need not be `Ord`).
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past (before
    /// the current clock) is a logic error in the caller and panics.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let entry = Entry {
            at,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse((entry, EventBox(event))));
    }

    /// Schedule `event` after a delay from the current clock.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((entry, EventBox(event))) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        q.pop();
        q.schedule_after(SimTime(5), "b");
        assert_eq!(q.pop(), Some((SimTime(15), "b")));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        q.schedule(SimTime(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Events scheduled while running keep global time order.
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(30), 3);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime(10), 1));
        q.schedule(SimTime(20), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
