//! One-way bulk transfer over a lossy link, driven entirely by the
//! windowed send path: the application enqueues with [`Stack::send`],
//! the wire only ever sees what [`Stack::poll_transmit`] emits under
//! `min(peer rwnd, cwnd)`, and every loss is recovered by the stack's
//! own machinery — fast retransmit on duplicate ACKs, RTO expiry inside
//! [`Stack::advance_time`] for lost tails, zero-window probes if the
//! receiver stalls. The driver never redelivers a frame.
//!
//! This is the end-to-end proof for the congestion-controlled transmit
//! engine, the send-side twin of [`crate::lossy`]: same discrete-event
//! loop (deliver everything in flight, then jump the clock to the
//! earliest timer deadline), but the traffic is a long packet train —
//! the §3.1 regime — instead of request/response ping-pong, so the
//! congestion window, not the application, paces the wire.

use std::collections::VecDeque;
use std::net::Ipv4Addr;
use tcpdemux_core::SequentDemux;
use tcpdemux_hash::Multiplicative;
use tcpdemux_stack::{FaultInjector, FaultOutcome, Stack, StackConfig, TxScratch, WindowConfig};
use tcpdemux_telemetry::Snapshot;

/// The server port the train flows toward.
pub const PORT: u16 = 9000;

/// Parameters of one bulk-transfer run.
#[derive(Clone)]
pub struct BulkTransferConfig {
    /// Total payload bytes the sender must deliver (default 1 MiB).
    pub bytes: usize,
    /// Probability each frame is dropped, per direction.
    pub drop_chance: f64,
    /// Probability each surviving frame has one bit flipped.
    pub corrupt_chance: f64,
    /// RNG seed for both fault injectors (direction-mixed).
    pub seed: u64,
    /// Give-up horizon: the run fails if the clock passes this tick.
    pub max_ticks: u64,
    /// Per-connection retransmission budget.
    pub max_retries: u32,
    /// Window/congestion knobs applied to both stacks.
    pub window: WindowConfig,
}

impl Default for BulkTransferConfig {
    fn default() -> Self {
        Self {
            bytes: 1 << 20,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            seed: 0xB01D_FACE,
            max_ticks: 500_000_000,
            max_retries: 16,
            window: WindowConfig::default(),
        }
    }
}

impl std::fmt::Debug for BulkTransferConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BulkTransferConfig")
            .field("bytes", &self.bytes)
            .field("drop_chance", &self.drop_chance)
            .field("corrupt_chance", &self.corrupt_chance)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// What a bulk-transfer run did.
#[derive(Debug, Clone, Default)]
pub struct BulkTransferReport {
    /// Payload bytes delivered and byte-verified at the receiver.
    pub delivered: usize,
    /// Whether every delivered byte matched the sender's stream.
    pub verified: bool,
    /// Tick at which the run ended.
    pub ticks: u64,
    /// Data frames the sender's `poll_transmit` emitted.
    pub frames_sent: u64,
    /// RTO-driven retransmissions (sender side).
    pub retransmits: u64,
    /// Dup-ACK-driven fast retransmissions (sender side).
    pub fast_retransmits: u64,
    /// Zero-window probes the sender emitted.
    pub zero_window_probes: u64,
    /// Frames the links dropped.
    pub drops: u64,
    /// Frames the links corrupted (all must die at a checksum).
    pub corrupted: u64,
    /// Corrupted frames rejected by wire validation on receive.
    pub checksum_rejections: u64,
    /// Whether either stack aborted its connection.
    pub aborted: bool,
    /// Sender cwnd (bytes) sampled after every ACK the sender processed
    /// — the AIMD sawtooth, in order.
    pub cwnd_trace: Vec<u32>,
}

impl BulkTransferReport {
    /// Delivered payload bytes per tick — the goodput metric the A9
    /// experiment sweeps against drop rate. Clean zero-latency runs
    /// finish at tick 0; they divide by one tick instead.
    pub fn goodput(&self) -> f64 {
        self.delivered as f64 / self.ticks.max(1) as f64
    }

    /// Largest cwnd the sender ever reached (bytes).
    pub fn cwnd_peak(&self) -> u32 {
        self.cwnd_trace.iter().copied().max().unwrap_or(0)
    }

    /// Number of multiplicative decreases visible in the trace (samples
    /// where cwnd fell to at most half the previous sample) — the
    /// "teeth" of the sawtooth.
    pub fn cwnd_collapses(&self) -> usize {
        self.cwnd_trace
            .windows(2)
            .filter(|w| w[1] <= w[0] / 2)
            .count()
    }
}

/// A [`run_bulk_transfer_with_telemetry`] result: the report plus both
/// stacks' telemetry snapshots.
#[derive(Debug, Clone)]
pub struct BulkTransferTelemetry {
    /// What the run did, as in [`run_bulk_transfer`].
    pub report: BulkTransferReport,
    /// The sending stack's telemetry at the end of the run.
    pub sender: Snapshot,
    /// The receiving stack's telemetry at the end of the run.
    pub receiver: Snapshot,
}

fn sequent() -> Box<SequentDemux<Multiplicative>> {
    Box::new(SequentDemux::new(Multiplicative, 19))
}

/// Push one frame through a fault injector onto a delivery queue.
fn transmit(
    link: &mut FaultInjector,
    frame: Vec<u8>,
    queue: &mut VecDeque<Vec<u8>>,
    report: &mut BulkTransferReport,
) {
    match link.transmit(&frame) {
        FaultOutcome::Passed(f) => queue.push_back(f),
        FaultOutcome::Corrupted(f) => {
            report.corrupted += 1;
            queue.push_back(f);
        }
        FaultOutcome::Dropped => report.drops += 1,
    }
}

/// The sender's payload byte at stream offset `i` (cheap, deterministic,
/// position-dependent so misordered delivery cannot verify).
fn payload_byte(i: usize) -> u8 {
    (i as u32).wrapping_mul(2_654_435_761).rotate_left(7) as u8
}

/// Run one bulk transfer; see the module docs for the driver contract.
pub fn run_bulk_transfer(cfg: &BulkTransferConfig) -> BulkTransferReport {
    run_stacks(cfg).0
}

/// [`run_bulk_transfer`], additionally returning both stacks' telemetry
/// snapshots (the `CwndBytes` histogram, fast-retransmit and
/// zero-window-probe counters, the event trace).
pub fn run_bulk_transfer_with_telemetry(cfg: &BulkTransferConfig) -> BulkTransferTelemetry {
    let (report, sender, receiver) = run_stacks(cfg);
    BulkTransferTelemetry {
        report,
        sender: sender.stats().telemetry,
        receiver: receiver.stats().telemetry,
    }
}

fn run_stacks(cfg: &BulkTransferConfig) -> (BulkTransferReport, Stack, Stack) {
    let server_addr = Ipv4Addr::new(10, 3, 0, 1);
    let client_addr = Ipv4Addr::new(10, 3, 0, 2);
    let mut receiver = Stack::with_config(
        StackConfig::new(server_addr)
            .with_max_retries(cfg.max_retries)
            .with_window(cfg.window.clone())
            .with_demux(|| sequent()),
    );
    let mut sender = Stack::with_config(
        StackConfig::new(client_addr)
            .with_max_retries(cfg.max_retries)
            .with_window(cfg.window.clone())
            .with_demux(|| sequent()),
    );
    receiver.listen(PORT).expect("fresh stack");

    let mut c2s = FaultInjector::new(cfg.drop_chance, cfg.corrupt_chance, cfg.seed | 1);
    let mut s2c = FaultInjector::new(
        cfg.drop_chance,
        cfg.corrupt_chance,
        cfg.seed.rotate_left(21) | 1,
    );
    let mut to_receiver: VecDeque<Vec<u8>> = VecDeque::new();
    let mut to_sender: VecDeque<Vec<u8>> = VecDeque::new();
    let mut report = BulkTransferReport::default();
    let mut scratch = TxScratch::new();
    let mut read_buf = vec![0u8; 16 * 1024];

    let (cp, syn) = sender.connect(server_addr, PORT).expect("connect");
    transmit(&mut c2s, syn, &mut to_receiver, &mut report);

    let mut sp = None;
    let mut enqueued = 0usize; // stream bytes accepted by the send buffer
    let mut verified = 0usize; // stream bytes read and checked at the far end
    let mut corrupt_delivered = false;
    let mut now: u64 = 0;

    loop {
        // Deliver everything in flight at this tick (zero-latency wire).
        while !to_receiver.is_empty() || !to_sender.is_empty() {
            while let Some(frame) = to_receiver.pop_front() {
                match receiver.receive(&frame) {
                    Ok(result) => {
                        for reply in result.replies {
                            transmit(&mut s2c, reply, &mut to_sender, &mut report);
                        }
                    }
                    Err(_) => report.checksum_rejections += 1,
                }
            }
            if sp.is_none() {
                sp = receiver.accept(PORT);
            }
            // Receiver application: drain the socket through a reused
            // slice and byte-verify the stream position by position.
            if let Some(sp) = sp {
                loop {
                    let n = match receiver.socket_mut(sp) {
                        Some(socket) => socket.read_into(&mut read_buf),
                        None => 0,
                    };
                    if n == 0 {
                        break;
                    }
                    for &byte in &read_buf[..n] {
                        if byte != payload_byte(verified) {
                            corrupt_delivered = true;
                        }
                        verified += 1;
                    }
                }
            }
            while let Some(frame) = to_sender.pop_front() {
                match sender.receive(&frame) {
                    Ok(result) => {
                        for reply in result.replies {
                            transmit(&mut c2s, reply, &mut to_receiver, &mut report);
                        }
                        if let Some(cong) = sender.congestion(cp) {
                            report
                                .cwnd_trace
                                .push(u32::try_from(cong.cwnd).unwrap_or(u32::MAX));
                        }
                    }
                    Err(_) => report.checksum_rejections += 1,
                }
            }
            // Sender application: top up the send buffer, then put on
            // the wire whatever the window permits right now.
            if sender.is_established(cp) {
                while enqueued < cfg.bytes {
                    let end = cfg.bytes.min(enqueued + read_buf.len());
                    let chunk: Vec<u8> = (enqueued..end).map(payload_byte).collect();
                    let accepted = sender.send(cp, &chunk).unwrap_or(0);
                    enqueued += accepted;
                    if accepted < chunk.len() {
                        break; // buffer full; ACKs will free space
                    }
                }
                let emitted = sender.poll_transmit(&mut scratch);
                report.frames_sent += emitted as u64;
                for frame in scratch.frames.drain(..) {
                    transmit(&mut c2s, frame, &mut to_receiver, &mut report);
                }
            }
        }

        if verified >= cfg.bytes || report.aborted {
            break;
        }

        // Quiet wire: jump to the earliest timer deadline (RTO, persist
        // probe, or a delayed ACK the receiver still owes).
        let deadline = match (sender.next_timer_deadline(), receiver.next_timer_deadline()) {
            (Some(c), Some(s)) => c.min(s),
            (Some(c), None) => c,
            (None, Some(s)) => s,
            (None, None) => break,
        };
        now = deadline.max(now);
        if now > cfg.max_ticks {
            break;
        }
        for (stack, link, queue) in [
            (&mut sender, &mut c2s, &mut to_receiver),
            (&mut receiver, &mut s2c, &mut to_sender),
        ] {
            let advance = stack.advance_time(now);
            report.aborted |= !advance.aborted.is_empty();
            report.zero_window_probes += advance.zero_window_probes;
            for frame in advance.retransmits.into_iter().chain(advance.acks) {
                transmit(link, frame, queue, &mut report);
            }
        }
    }

    report.ticks = now;
    report.delivered = verified;
    report.verified = !corrupt_delivered && verified >= cfg.bytes;
    report.retransmits = sender.stats().stack.retransmits;
    report.fast_retransmits = sender
        .stats()
        .telemetry
        .counter(tcpdemux_telemetry::CounterId::FastRetransmits);
    (report, sender, receiver)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_moves_a_megabyte_without_retransmission() {
        let report = run_bulk_transfer(&BulkTransferConfig::default());
        assert_eq!(report.delivered, 1 << 20, "{report:?}");
        assert!(report.verified, "byte verification failed");
        assert_eq!(report.retransmits + report.fast_retransmits, 0);
        assert!(!report.aborted);
        // Slow start must have opened the window well past its start.
        assert!(
            report.cwnd_peak() > 4 * 1460,
            "cwnd never grew: peak {}",
            report.cwnd_peak()
        );
        // The window, not the app, paces the wire: far fewer frames than
        // bytes/MSS would need if every segment were a full MSS is a
        // sanity bound, not the point — the point is completion with
        // zero retransmission and zero clock movement.
        assert_eq!(report.ticks, 0, "zero-latency clean link never idles");
    }

    #[test]
    fn megabyte_survives_25pct_drop_with_no_driver_redelivery() {
        let report = run_bulk_transfer(&BulkTransferConfig {
            drop_chance: 0.25,
            seed: 11,
            ..BulkTransferConfig::default()
        });
        assert_eq!(report.delivered, 1 << 20, "{report:?}");
        assert!(report.verified, "byte verification failed");
        assert!(!report.aborted, "{report:?}");
        assert!(report.drops > 0, "the link did drop frames");
        assert!(
            report.fast_retransmits > 0,
            "dup-ACK recovery must have fired: {report:?}"
        );
        assert!(
            report.retransmits > 0,
            "some losses need the RTO: {report:?}"
        );
    }

    #[test]
    fn lossy_run_shows_the_aimd_sawtooth() {
        let out = run_bulk_transfer_with_telemetry(&BulkTransferConfig {
            drop_chance: 0.10,
            seed: 3,
            ..BulkTransferConfig::default()
        });
        let report = &out.report;
        assert_eq!(report.delivered, 1 << 20, "{report:?}");
        // The sawtooth: the window grew, collapsed on loss, and grew
        // again — visible both in the sampled trace and in the
        // CwndBytes histogram the stack records.
        assert!(report.cwnd_peak() > 4 * 1460);
        assert!(
            report.cwnd_collapses() > 0,
            "no multiplicative decrease in {} samples",
            report.cwnd_trace.len()
        );
        let hist = out
            .sender
            .histogram(tcpdemux_telemetry::HistogramId::CwndBytes);
        assert!(!hist.is_empty(), "stack must observe cwnd over time");
    }

    /// The recovery machinery must hold under many fault-stream seeds,
    /// not one lucky one. `TCPDEMUX_CC_SEEDS` widens the sweep in CI
    /// (scripts/verify.sh runs it at 8) across the A9 drop rates.
    #[test]
    fn bulk_transfer_recovers_across_seeds() {
        let seeds: u64 = std::env::var("TCPDEMUX_CC_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        for seed in 1..=seeds {
            for drop in [0.0, 0.10, 0.25] {
                let report = run_bulk_transfer(&BulkTransferConfig {
                    bytes: 256 << 10,
                    drop_chance: drop,
                    seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..BulkTransferConfig::default()
                });
                assert_eq!(
                    report.delivered,
                    256 << 10,
                    "seed {seed} drop {drop}: {report:?}"
                );
                assert!(report.verified, "seed {seed} drop {drop}: {report:?}");
                assert!(!report.aborted, "seed {seed} drop {drop}: {report:?}");
            }
        }
    }

    #[test]
    fn goodput_degrades_gracefully_with_drop_rate() {
        let mut last = f64::INFINITY;
        for drop in [0.0, 0.10, 0.25] {
            let report = run_bulk_transfer(&BulkTransferConfig {
                bytes: 256 << 10,
                drop_chance: drop,
                seed: 5,
                ..BulkTransferConfig::default()
            });
            assert_eq!(report.delivered, 256 << 10, "drop {drop}: {report:?}");
            let goodput = report.goodput();
            assert!(
                goodput <= last,
                "goodput must not improve with loss: {goodput} after {last}"
            );
            last = goodput;
        }
    }
}
