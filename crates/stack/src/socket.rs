//! Per-connection socket receive buffers.

use core::fmt;

/// A terminal error the stack surfaces to the application through its
/// socket, analogous to the `so_error` a BSD socket reports on the next
/// syscall after an asynchronous failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketError {
    /// The retransmission budget was exhausted without an ACK from the
    /// peer; the connection was aborted (ETIMEDOUT).
    TimedOut,
}

impl fmt::Display for SocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketError::TimedOut => f.write_str("connection timed out"),
        }
    }
}

impl std::error::Error for SocketError {}

/// The application-facing side of one connection: bytes the stack has
/// accepted in order and not yet read.
#[derive(Debug, Default, Clone)]
pub struct SocketBuffer {
    data: Vec<u8>,
    total_received: u64,
    fin_seen: bool,
    error: Option<SocketError>,
}

impl SocketBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append in-order payload bytes (called by the stack).
    pub(crate) fn deliver(&mut self, payload: &[u8]) {
        self.data.extend_from_slice(payload);
        self.total_received += payload.len() as u64;
    }

    /// Mark end-of-stream (peer FIN).
    pub(crate) fn mark_fin(&mut self) {
        self.fin_seen = true;
    }

    /// Record a terminal error (called by the stack when it aborts the
    /// connection, e.g. on retransmission timeout). The first error
    /// sticks; later ones are ignored.
    pub(crate) fn set_error(&mut self, error: SocketError) {
        self.error.get_or_insert(error);
    }

    /// The terminal error, if the connection was aborted by the stack.
    /// Buffered data remains readable after an error.
    pub fn error(&self) -> Option<SocketError> {
        self.error
    }

    /// Bytes available to read.
    pub fn available(&self) -> usize {
        self.data.len()
    }

    /// Total bytes ever delivered on this connection.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }

    /// Whether the peer has closed its direction.
    pub fn is_eof(&self) -> bool {
        self.fin_seen && self.data.is_empty()
    }

    /// Read up to `max` bytes, removing them from the buffer.
    pub fn read(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.data.len());
        let rest = self.data.split_off(n);
        core::mem::replace(&mut self.data, rest)
    }

    /// Read everything currently buffered.
    pub fn read_all(&mut self) -> Vec<u8> {
        core::mem::take(&mut self.data)
    }

    /// Read up to `out.len()` bytes into `out`, removing them from the
    /// buffer; returns how many bytes were copied. Allocation-free: a
    /// bulk-transfer loop drains the socket through one reused slice
    /// instead of materializing a `Vec` per read.
    pub fn read_into(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.data.len());
        out[..n].copy_from_slice(&self.data[..n]);
        self.data.drain(..n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliver_and_read() {
        let mut buf = SocketBuffer::new();
        buf.deliver(b"hello ");
        buf.deliver(b"world");
        assert_eq!(buf.available(), 11);
        assert_eq!(buf.total_received(), 11);
        assert_eq!(buf.read(5), b"hello".to_vec());
        assert_eq!(buf.available(), 6);
        assert_eq!(buf.read_all(), b" world".to_vec());
        assert_eq!(buf.available(), 0);
        // total_received is cumulative, not reduced by reads.
        assert_eq!(buf.total_received(), 11);
    }

    #[test]
    fn read_more_than_available() {
        let mut buf = SocketBuffer::new();
        buf.deliver(b"abc");
        assert_eq!(buf.read(100), b"abc".to_vec());
        assert!(buf.read(1).is_empty());
    }

    #[test]
    fn read_into_drains_through_a_reused_slice() {
        let mut buf = SocketBuffer::new();
        buf.deliver(b"hello world");
        let mut scratch = [0u8; 4];
        assert_eq!(buf.read_into(&mut scratch), 4);
        assert_eq!(&scratch, b"hell");
        assert_eq!(buf.read_into(&mut scratch), 4);
        assert_eq!(&scratch, b"o wo");
        assert_eq!(buf.read_into(&mut scratch), 3);
        assert_eq!(&scratch[..3], b"rld");
        assert_eq!(buf.read_into(&mut scratch), 0);
        assert_eq!(buf.available(), 0);
        assert_eq!(buf.total_received(), 11);
    }

    #[test]
    fn eof_semantics() {
        let mut buf = SocketBuffer::new();
        buf.deliver(b"tail");
        buf.mark_fin();
        assert!(!buf.is_eof(), "data still pending");
        buf.read_all();
        assert!(buf.is_eof());
    }

    #[test]
    fn first_error_sticks_and_data_stays_readable() {
        let mut buf = SocketBuffer::new();
        buf.deliver(b"partial");
        assert_eq!(buf.error(), None);
        buf.set_error(SocketError::TimedOut);
        buf.set_error(SocketError::TimedOut);
        assert_eq!(buf.error(), Some(SocketError::TimedOut));
        assert_eq!(buf.read_all(), b"partial".to_vec());
        assert_eq!(SocketError::TimedOut.to_string(), "connection timed out");
    }
}
