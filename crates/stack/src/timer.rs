//! A hashed timing wheel (Varghese & Lauck, SOSP 1987) — the timer
//! substrate a TCP stack of the paper's era actually used.
//!
//! TCP needs per-connection timers (TIME-WAIT's 2·MSL drain, SYN-RCVD
//! abort, retransmission). A timing wheel makes `schedule`, `cancel`, and
//! per-tick expiry O(1) amortized: time is divided into ticks, the wheel
//! has `S` slots, and a timer due at tick `t` lives in slot `t mod S`
//! carrying its absolute due tick (so timers farther than one rotation
//! simply stay in their slot until their rotation comes around).

use core::fmt;

/// Handle to a scheduled timer, usable to cancel it.
///
/// The handle carries the timer's absolute due tick, which pins down the
/// one slot the entry can live in — `cancel` therefore scans a single
/// slot instead of the whole wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId {
    id: u64,
    due_tick: u64,
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.id)
    }
}

#[derive(Debug)]
struct Entry<T> {
    id: u64,
    due_tick: u64,
    payload: T,
}

/// A hashed timing wheel over payloads `T`.
///
/// Ticks are abstract; the caller decides what a tick means (the stack
/// uses 1 ms). `advance_to` must be called with nondecreasing tick
/// values.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    current_tick: u64,
    next_id: u64,
    live: usize,
}

impl<T> TimerWheel<T> {
    /// Create a wheel with `slots` slots (more slots = fewer stale
    /// entries touched per tick for long timers). Must be nonzero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "wheel needs at least one slot");
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            current_tick: 0,
            next_id: 0,
            live: 0,
        }
    }

    /// The wheel's current tick.
    pub fn now(&self) -> u64 {
        self.current_tick
    }

    /// Number of scheduled (uncancelled, unexpired) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` to expire `after` ticks from now. Time must
    /// actually pass before a timer fires: an `after` of 0 (or 1) expires
    /// on the next `advance_to` past the current tick, never on an
    /// `advance_to(now())` that does not move the clock.
    pub fn schedule(&mut self, after: u64, payload: T) -> TimerId {
        let due_tick = self.current_tick + after.max(1);
        let id = self.next_id;
        self.next_id += 1;
        let slot = (due_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            id,
            due_tick,
            payload,
        });
        self.live += 1;
        TimerId { id, due_tick }
    }

    /// Cancel a timer; returns its payload if it had not yet expired.
    ///
    /// Cost is O(length of the one slot the timer hashes to), not
    /// O(total timers): the handle's due tick names the slot directly.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        let slot_idx = (id.due_tick % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[slot_idx];
        if let Some(pos) = slot.iter().position(|e| e.id == id.id) {
            self.live -= 1;
            return Some(slot.swap_remove(pos).payload);
        }
        None
    }

    /// The earliest due tick among scheduled timers, if any. Lets a
    /// discrete-event driver jump the clock straight to the next
    /// deadline instead of ticking through idle time.
    pub fn next_due_tick(&self) -> Option<u64> {
        self.slots
            .iter()
            .flat_map(|slot| slot.iter().map(|e| e.due_tick))
            .min()
    }

    /// Advance the wheel to `tick`, collecting every expired payload in
    /// due order. `tick` must be ≥ the current tick.
    pub fn advance_to(&mut self, tick: u64) -> Vec<T> {
        assert!(
            tick >= self.current_tick,
            "time went backwards: {} < {}",
            tick,
            self.current_tick
        );
        let slots = self.slots.len() as u64;
        let mut expired: Vec<(u64, u64, T)> = Vec::new();
        // Visit each slot at most once even if the jump spans rotations.
        let span = (tick - self.current_tick + 1).min(slots);
        for offset in 0..span {
            let slot_idx = ((self.current_tick + offset) % slots) as usize;
            let slot = &mut self.slots[slot_idx];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].due_tick <= tick {
                    let entry = slot.swap_remove(i);
                    expired.push((entry.due_tick, entry.id, entry.payload));
                } else {
                    i += 1;
                }
            }
        }
        self.current_tick = tick;
        self.live -= expired.len();
        // Due order, then schedule order for ties.
        expired.sort_by_key(|&(due, id, _)| (due, id));
        expired.into_iter().map(|(_, _, payload)| payload).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_expiry() {
        let mut wheel = TimerWheel::new(8);
        wheel.schedule(3, "a");
        wheel.schedule(5, "b");
        assert_eq!(wheel.len(), 2);
        assert!(wheel.advance_to(2).is_empty());
        assert_eq!(wheel.advance_to(3), vec!["a"]);
        assert_eq!(wheel.advance_to(10), vec!["b"]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.now(), 10);
    }

    #[test]
    fn expiry_is_due_ordered() {
        let mut wheel = TimerWheel::new(4);
        wheel.schedule(9, "later");
        wheel.schedule(2, "sooner");
        wheel.schedule(2, "sooner-second");
        let fired = wheel.advance_to(20);
        assert_eq!(fired, vec!["sooner", "sooner-second", "later"]);
    }

    #[test]
    fn timers_beyond_one_rotation_wait() {
        let mut wheel = TimerWheel::new(4);
        // Due at tick 9; slot 9 % 4 = 1. Advancing to 1 must NOT fire it.
        wheel.schedule(9, "far");
        assert!(wheel.advance_to(1).is_empty());
        assert_eq!(wheel.len(), 1);
        assert!(wheel.advance_to(8).is_empty());
        assert_eq!(wheel.advance_to(9), vec!["far"]);
    }

    #[test]
    fn cancel_prevents_expiry() {
        let mut wheel = TimerWheel::new(8);
        let id = wheel.schedule(4, 42);
        let other = wheel.schedule(4, 7);
        assert_eq!(wheel.cancel(id), Some(42));
        assert_eq!(wheel.cancel(id), None, "double-cancel is None");
        assert_eq!(wheel.advance_to(4), vec![7]);
        let _ = other;
    }

    #[test]
    fn cancel_after_expiry_is_none() {
        let mut wheel = TimerWheel::new(8);
        let id = wheel.schedule(1, ());
        wheel.advance_to(1);
        assert_eq!(wheel.cancel(id), None);
    }

    #[test]
    fn zero_delay_fires_on_next_advance() {
        let mut wheel = TimerWheel::new(8);
        wheel.advance_to(5);
        wheel.schedule(0, "now");
        // Re-advancing to the current tick moves no time: nothing fires.
        assert!(wheel.advance_to(5).is_empty());
        assert_eq!(wheel.len(), 1);
        // The first advance past the current tick fires it.
        assert_eq!(wheel.advance_to(6), vec!["now"]);
    }

    #[test]
    fn no_timer_ever_fires_without_time_passing() {
        let mut wheel = TimerWheel::new(4);
        wheel.advance_to(17);
        for after in 0..6u64 {
            wheel.schedule(after, after);
        }
        // advance_to(now) is a no-op regardless of the delays scheduled.
        assert!(wheel.advance_to(17).is_empty());
        assert_eq!(wheel.len(), 6);
        // after=0 and after=1 both mean "the next tick".
        assert_eq!(wheel.advance_to(18), vec![0, 1]);
    }

    #[test]
    fn cancel_works_after_rotations_and_reports_next_due() {
        let mut wheel = TimerWheel::new(4);
        assert_eq!(wheel.next_due_tick(), None);
        let far = wheel.schedule(11, "far");
        let near = wheel.schedule(2, "near");
        assert_eq!(wheel.next_due_tick(), Some(2));
        // Spin the wheel through several rotations, then cancel the
        // survivor: the slot encoded in the handle must still find it.
        assert_eq!(wheel.advance_to(9), vec!["near"]);
        assert_eq!(wheel.cancel(near), None, "already expired");
        assert_eq!(wheel.next_due_tick(), Some(11));
        assert_eq!(wheel.cancel(far), Some("far"));
        assert_eq!(wheel.next_due_tick(), None);
        assert!(wheel.is_empty());
    }

    #[test]
    fn large_jump_spanning_many_rotations() {
        let mut wheel = TimerWheel::new(4);
        for i in 0..20u64 {
            wheel.schedule(i, i);
        }
        let fired = wheel.advance_to(1000);
        assert_eq!(fired, (0..20).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn backwards_advance_panics() {
        let mut wheel: TimerWheel<()> = TimerWheel::new(4);
        wheel.advance_to(10);
        wheel.advance_to(9);
    }

    #[test]
    fn single_slot_wheel_still_correct() {
        let mut wheel = TimerWheel::new(1);
        wheel.schedule(2, "a");
        wheel.schedule(7, "b");
        assert!(wheel.advance_to(1).is_empty());
        assert_eq!(wheel.advance_to(2), vec!["a"]);
        assert_eq!(wheel.advance_to(7), vec!["b"]);
    }

    #[test]
    fn heavy_churn() {
        let mut wheel = TimerWheel::new(32);
        let mut ids = Vec::new();
        for round in 0u64..50 {
            for i in 0..100u64 {
                ids.push(wheel.schedule(i % 37, (round, i)));
            }
            // Cancel every third timer scheduled this round.
            for chunk in ids.chunks(3) {
                let _ = wheel.cancel(chunk[0]);
            }
            let _ = wheel.advance_to(wheel.now() + 10);
            ids.clear();
        }
        // Drain completely.
        let _ = wheel.advance_to(wheel.now() + 100);
        assert!(wheel.is_empty());
    }
}
