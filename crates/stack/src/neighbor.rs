//! The ARP neighbor cache: IPv4 → MAC mappings with expiry.
//!
//! Entries learned from ARP traffic expire after a lifetime (smoltcp
//! uses one minute; so do we, expressed in the stack's millisecond
//! ticks) and the cache is capacity-bounded: when full, the entry
//! closest to expiry is evicted — a small, honest approximation of the
//! BSD ARP table.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use tcpdemux_wire::EthernetAddress;

/// Default entry lifetime, in ticks (ticks are milliseconds in the
/// stack): one minute.
pub const DEFAULT_LIFETIME: u64 = 60_000;

#[derive(Debug, Clone, Copy)]
struct Entry {
    mac: EthernetAddress,
    expires_at: u64,
}

/// A bounded IPv4 → MAC cache with per-entry expiry.
#[derive(Debug)]
pub struct NeighborCache {
    entries: HashMap<Ipv4Addr, Entry>,
    capacity: usize,
    lifetime: u64,
}

impl NeighborCache {
    /// Create a cache holding at most `capacity` entries whose entries
    /// live for `lifetime` ticks.
    pub fn new(capacity: usize, lifetime: u64) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            entries: HashMap::with_capacity(capacity),
            capacity,
            lifetime,
        }
    }

    /// A cache with the defaults (64 entries, one minute).
    pub fn with_defaults() -> Self {
        Self::new(64, DEFAULT_LIFETIME)
    }

    /// Number of (possibly stale) entries resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Learn (or refresh) a mapping at time `now`.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: EthernetAddress, now: u64) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&ip) {
            // Evict the entry nearest to expiry.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.expires_at)
                .map(|(ip, _)| ip)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            ip,
            Entry {
                mac,
                expires_at: now + self.lifetime,
            },
        );
    }

    /// Look up a live mapping at time `now`; stale entries miss (and are
    /// removed).
    pub fn lookup(&mut self, ip: Ipv4Addr, now: u64) -> Option<EthernetAddress> {
        match self.entries.get(&ip) {
            Some(entry) if entry.expires_at > now => Some(entry.mac),
            Some(_) => {
                self.entries.remove(&ip);
                None
            }
            None => None,
        }
    }

    /// Drop every entry at or past its expiry.
    pub fn expire(&mut self, now: u64) {
        self.entries.retain(|_, e| e.expires_at > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> EthernetAddress {
        EthernetAddress([2, 0, 0, 0, 0, last])
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn learn_and_lookup() {
        let mut cache = NeighborCache::new(8, 100);
        assert!(cache.is_empty());
        cache.learn(ip(1), mac(1), 0);
        assert_eq!(cache.lookup(ip(1), 50), Some(mac(1)));
        assert_eq!(cache.lookup(ip(2), 50), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut cache = NeighborCache::new(8, 100);
        cache.learn(ip(1), mac(1), 0);
        assert_eq!(cache.lookup(ip(1), 99), Some(mac(1)));
        assert_eq!(cache.lookup(ip(1), 100), None, "expiry is exclusive");
        assert!(cache.is_empty(), "stale entry removed by lookup");
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut cache = NeighborCache::new(8, 100);
        cache.learn(ip(1), mac(1), 0);
        cache.learn(ip(1), mac(1), 80);
        assert_eq!(cache.lookup(ip(1), 150), Some(mac(1)));
    }

    #[test]
    fn relearn_updates_mac() {
        // The peer changed NICs: the newer mapping wins.
        let mut cache = NeighborCache::new(8, 100);
        cache.learn(ip(1), mac(1), 0);
        cache.learn(ip(1), mac(2), 10);
        assert_eq!(cache.lookup(ip(1), 20), Some(mac(2)));
    }

    #[test]
    fn capacity_evicts_nearest_expiry() {
        let mut cache = NeighborCache::new(2, 100);
        cache.learn(ip(1), mac(1), 0); // expires 100
        cache.learn(ip(2), mac(2), 50); // expires 150
        cache.learn(ip(3), mac(3), 60); // evicts ip(1)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(ip(1), 60), None);
        assert_eq!(cache.lookup(ip(2), 60), Some(mac(2)));
        assert_eq!(cache.lookup(ip(3), 60), Some(mac(3)));
    }

    #[test]
    fn expire_sweeps() {
        let mut cache = NeighborCache::new(8, 100);
        cache.learn(ip(1), mac(1), 0);
        cache.learn(ip(2), mac(2), 50);
        cache.expire(120);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(ip(2), 120), Some(mac(2)));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = NeighborCache::new(0, 100);
    }
}
