//! Receive-path accounting.

use crate::txpool::TxPoolStats;
use core::fmt;
use tcpdemux_core::LookupStats;
use tcpdemux_telemetry::Snapshot;

/// Counters for everything that can happen to an arriving frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Frames handed to [`Stack::receive`](crate::Stack::receive).
    pub frames_in: u64,
    /// Frames rejected by IPv4 validation (length/version/checksum).
    pub ip_errors: u64,
    /// Frames rejected because the destination address is not ours.
    pub not_for_us: u64,
    /// Frames carrying a protocol the stack does not handle.
    pub bad_protocol: u64,
    /// Segments rejected by TCP validation (length/checksum/options).
    pub tcp_errors: u64,
    /// Segments that matched an established connection.
    pub demux_hits: u64,
    /// Segments that matched only a listener (new connections).
    pub listener_hits: u64,
    /// Segments that matched nothing and provoked an RST.
    pub resets_sent: u64,
    /// Out-of-order segments dropped (re-ACKed, not queued).
    pub out_of_order_drops: u64,
    /// Payload bytes delivered to sockets.
    pub bytes_delivered: u64,
    /// Frames the stack emitted (replies and sends).
    pub frames_out: u64,
    /// Total PCBs examined by demultiplexing (the paper's cost metric).
    pub pcbs_examined: u64,
    /// ICMP messages received and parsed.
    pub icmp_in: u64,
    /// ICMP echo replies sent (pings answered).
    pub icmp_echo_replies: u64,
    /// SYNs dropped because the listener's backlog was full.
    pub syn_drops: u64,
    /// Segments retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// Clean RTT samples absorbed by estimators (Karn-filtered).
    pub rtt_samples: u64,
    /// Connections aborted after exhausting the retransmission budget.
    pub timeout_aborts: u64,
}

impl StackStats {
    /// Frames that failed validation for any reason.
    pub fn total_rejected(&self) -> u64 {
        self.ip_errors + self.not_for_us + self.bad_protocol + self.tcp_errors
    }

    /// Fold another stack's counters into this one (all fields are
    /// monotonic counts, so addition is the whole story).
    pub fn merge(&mut self, other: &StackStats) {
        let Self {
            frames_in,
            ip_errors,
            not_for_us,
            bad_protocol,
            tcp_errors,
            demux_hits,
            listener_hits,
            resets_sent,
            out_of_order_drops,
            bytes_delivered,
            frames_out,
            pcbs_examined,
            icmp_in,
            icmp_echo_replies,
            syn_drops,
            retransmits,
            rtt_samples,
            timeout_aborts,
        } = other;
        self.frames_in += frames_in;
        self.ip_errors += ip_errors;
        self.not_for_us += not_for_us;
        self.bad_protocol += bad_protocol;
        self.tcp_errors += tcp_errors;
        self.demux_hits += demux_hits;
        self.listener_hits += listener_hits;
        self.resets_sent += resets_sent;
        self.out_of_order_drops += out_of_order_drops;
        self.bytes_delivered += bytes_delivered;
        self.frames_out += frames_out;
        self.pcbs_examined += pcbs_examined;
        self.icmp_in += icmp_in;
        self.icmp_echo_replies += icmp_echo_replies;
        self.syn_drops += syn_drops;
        self.retransmits += retransmits;
        self.rtt_samples += rtt_samples;
        self.timeout_aborts += timeout_aborts;
    }

    /// Mean PCBs examined per demultiplexed segment.
    pub fn mean_pcbs_examined(&self) -> f64 {
        let lookups = self.demux_hits + self.listener_hits + self.resets_sent;
        if lookups == 0 {
            0.0
        } else {
            self.pcbs_examined as f64 / lookups as f64
        }
    }
}

impl fmt::Display for StackStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in={} rejected={} hits={} new={} rst={} delivered={}B rtx={} mean_pcbs={:.2}",
            self.frames_in,
            self.total_rejected(),
            self.demux_hits,
            self.listener_hits,
            self.resets_sent,
            self.bytes_delivered,
            self.retransmits,
            self.mean_pcbs_examined(),
        )
    }
}

/// Everything observable about a [`Stack`](crate::Stack) at one instant,
/// returned owned by [`Stack::stats`](crate::Stack::stats).
///
/// This is the one introspection surface: the receive-path counters, the
/// demultiplexer's own lookup statistics, the transmit-pool counters, and
/// the full telemetry snapshot (event trace, histograms, and the
/// enumerated counter set) — replacing the former trio of borrow-returning
/// accessors. Being owned, it can be captured before an operation and
/// compared after, cloned into reports, or shipped across threads.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Receive-path counters.
    pub stack: StackStats,
    /// The demultiplexer's accumulated lookup statistics.
    pub demux: LookupStats,
    /// Transmit-buffer pool counters.
    pub tx_pool: TxPoolStats,
    /// Structured telemetry: counters, histograms, event trace.
    pub telemetry: Snapshot,
}

impl StatsSnapshot {
    /// Merge per-shard snapshots into one aggregate with the same shape a
    /// single [`Stack`](crate::Stack) reports — how
    /// [`ShardedStack::stats`](crate::ShardedStack::stats) presents K
    /// shards through the one introspection surface.
    ///
    /// Counters add; the demux `worst_case` is the max across shards; the
    /// telemetry merge adds counters and histogram buckets while keeping
    /// the *first* snapshot's event trace (per-shard traces interleave
    /// arbitrarily, so concatenating them would fabricate an ordering —
    /// fetch per-shard snapshots for traces). An empty slice merges to an
    /// all-zero snapshot.
    pub fn merge(parts: &[StatsSnapshot]) -> StatsSnapshot {
        let mut iter = parts.iter();
        let Some(first) = iter.next() else {
            return StatsSnapshot {
                stack: StackStats::default(),
                demux: LookupStats::new(),
                tx_pool: TxPoolStats::default(),
                telemetry: Snapshot::empty(),
            };
        };
        let mut merged = first.clone();
        for part in iter {
            merged.stack.merge(&part.stack);
            merged.demux.merge(&part.demux);
            merged.tx_pool.allocations += part.tx_pool.allocations;
            merged.tx_pool.reuses += part.tx_pool.reuses;
            merged.tx_pool.free += part.tx_pool.free;
            merged.telemetry.merge_aggregates(&part.telemetry);
        }
        merged
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stack: {}", self.stack)?;
        writeln!(f, "demux: {}", self.demux)?;
        writeln!(
            f,
            "tx_pool: allocations={} reuses={} free={}",
            self.tx_pool.allocations, self.tx_pool.reuses, self.tx_pool.free
        )?;
        write!(f, "{}", self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let stats = StackStats {
            ip_errors: 2,
            not_for_us: 3,
            bad_protocol: 1,
            tcp_errors: 4,
            ..StackStats::default()
        };
        assert_eq!(stats.total_rejected(), 10);
    }

    #[test]
    fn mean_examined() {
        let stats = StackStats {
            demux_hits: 3,
            listener_hits: 1,
            pcbs_examined: 20,
            ..StackStats::default()
        };
        assert!((stats.mean_pcbs_examined() - 5.0).abs() < 1e-12);
        assert_eq!(StackStats::default().mean_pcbs_examined(), 0.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = StackStats {
            frames_in: 7,
            ..StackStats::default()
        }
        .to_string();
        assert!(s.contains("in=7"), "{s}");
    }
}
