//! Shard identity, frame steering, and the shared placement table.
//!
//! A [`ShardedStack`](crate::ShardedStack) owns K single-threaded
//! [`Stack`](crate::Stack) shards. Everything that must be agreed on
//! *across* shards lives here:
//!
//! * [`ShardId`] — the typed index that [`StackConfig`](crate::StackConfig)
//!   carries and every introspection row reports;
//! * [`steering_key`] — the minimal ingress parse that recovers a
//!   connection key from a raw IPv4 frame without validating checksums
//!   (validation is the owning shard's job; steering only needs the
//!   four-tuple, and a frame too mangled to parse goes to shard 0, whose
//!   stack counts the error exactly as a single stack would);
//! * [`SteerTable`] — the accept/steering table shared by all shards:
//!   which ports listen (listeners are installed on *every* shard,
//!   SO_REUSEPORT-style, so a SYN needs no table consultation — the
//!   symmetric hash alone picks its owner), the global ephemeral-port
//!   allocator (global so two shards can never mint the same four-tuple),
//!   the round-robin accept cursor, and the local/cross placement
//!   counters that make cross-shard `connect` placement a measured
//!   quantity.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use tcpdemux_hash::shard_for;
use tcpdemux_pcb::ConnectionKey;

/// Which shard of a [`ShardedStack`](crate::ShardedStack) owns a
/// connection. A plain single [`Stack`](crate::Stack) is shard 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(u16);

impl ShardId {
    /// Wrap a shard index. Panics above `u16::MAX` shards (far beyond
    /// any sane configuration).
    pub fn new(index: usize) -> Self {
        Self(u16::try_from(index).expect("shard index fits in u16"))
    }

    /// The index back, for slice addressing.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl core::fmt::Display for ShardId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "sh{}", self.0)
    }
}

/// Recover the steering four-tuple from a raw IPv4 frame, oriented from
/// the receiving host's perspective (local = destination). Returns `None`
/// for frames too short or malformed to carry TCP/UDP ports — those
/// cannot belong to any flow and may be handled by any shard.
pub fn steering_key(frame: &[u8]) -> Option<ConnectionKey> {
    if frame.len() < 20 || frame[0] >> 4 != 4 {
        return None;
    }
    let header_len = usize::from(frame[0] & 0x0f) * 4;
    if header_len < 20 || frame.len() < header_len + 4 {
        return None;
    }
    // TCP is 6, UDP is 17; both carry src/dst ports in their first four
    // bytes, which is all steering reads.
    if frame[9] != 6 && frame[9] != 17 {
        return None;
    }
    let addr =
        |at: usize| std::net::Ipv4Addr::new(frame[at], frame[at + 1], frame[at + 2], frame[at + 3]);
    let port = |at: usize| u16::from(frame[at]) << 8 | u16::from(frame[at + 1]);
    Some(ConnectionKey::new(
        addr(16),
        port(header_len + 2),
        addr(12),
        port(header_len),
    ))
}

/// Local/cross placement counts for active opens routed through the
/// table; "cross" means the caller's hinted shard did not own the flow
/// and the connect had to take the owning shard's lock instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Connects whose hinted shard already owned the new flow's key.
    pub local: u64,
    /// Connects resolved to a different shard than hinted.
    pub cross: u64,
}

/// The state every shard must agree on, shared behind one allocation.
#[derive(Debug)]
pub struct SteerTable {
    shards: usize,
    /// Ports with a listener installed (on every shard).
    listen_ports: Mutex<Vec<u16>>,
    /// Next ephemeral port, global across shards: the four-tuple decides
    /// the owning shard, so the port must be unique stack-wide *before*
    /// the owner is known.
    next_ephemeral: AtomicUsize,
    ephemeral_base: u16,
    /// Per-port round-robin cursor for [`accept`](crate::ShardedStack::accept).
    accept_cursor: AtomicUsize,
    placements_local: AtomicU64,
    placements_cross: AtomicU64,
}

impl SteerTable {
    /// A table for `shards` shards allocating ephemeral ports from
    /// `ephemeral_base`.
    pub fn new(shards: usize, ephemeral_base: u16) -> Self {
        assert!(shards > 0, "shard count must be nonzero");
        Self {
            shards,
            listen_ports: Mutex::new(Vec::new()),
            next_ephemeral: AtomicUsize::new(usize::from(ephemeral_base)),
            ephemeral_base,
            accept_cursor: AtomicUsize::new(0),
            placements_local: AtomicU64::new(0),
            placements_cross: AtomicU64::new(0),
        }
    }

    /// Number of shards this table steers for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` — pure function of the symmetric hash, so
    /// both directions of the flow (and both hosts, at equal shard
    /// counts) agree.
    pub fn steer(&self, key: &ConnectionKey) -> ShardId {
        ShardId::new(shard_for(key, self.shards))
    }

    /// Record that `port` now listens (on every shard).
    pub fn note_listen(&self, port: u16) {
        let mut ports = self.listen_ports.lock().expect("steer table lock");
        if !ports.contains(&port) {
            ports.push(port);
        }
    }

    /// Whether `port` has a listener installed.
    pub fn is_listening(&self, port: u16) -> bool {
        self.listen_ports
            .lock()
            .expect("steer table lock")
            .contains(&port)
    }

    /// Hand out the next globally-unique ephemeral port.
    ///
    /// Ticketing through the shared atomic cursor keeps concurrent
    /// callers on distinct candidates, and every candidate is vetted
    /// before it is handed out: ports with a listener installed are
    /// skipped (listeners live on *every* shard, so a connect minted on
    /// one would collide with the accept path), and so is any port the
    /// caller's `in_use` check claims — the sharded runtime probes all
    /// shards' connection tables with the same
    /// [`Stack::ephemeral_port_in_use`](crate::Stack::ephemeral_port_in_use)
    /// predicate the single-stack allocator uses. After a full range of
    /// candidates without a vacancy the allocator reports
    /// [`StackError::NoEphemeralPorts`](crate::StackError::NoEphemeralPorts)
    /// rather than recycling a live port into a duplicate four-tuple.
    pub fn alloc_ephemeral(&self, in_use: impl Fn(u16) -> bool) -> Result<u16, crate::StackError> {
        let span = usize::from(u16::MAX) - usize::from(self.ephemeral_base) + 1;
        let base = usize::from(self.ephemeral_base);
        for _ in 0..span {
            let n = self.next_ephemeral.fetch_add(1, Ordering::Relaxed);
            let port = u16::try_from(base + (n - base) % span).expect("ephemeral in range");
            if !self.is_listening(port) && !in_use(port) {
                return Ok(port);
            }
        }
        Err(crate::StackError::NoEphemeralPorts)
    }

    /// Count one placement outcome: the connect's hinted shard vs the
    /// shard the symmetric hash actually assigned.
    pub fn note_placement(&self, hinted: ShardId, owner: ShardId) {
        if hinted == owner {
            self.placements_local.fetch_add(1, Ordering::Relaxed);
        } else {
            self.placements_cross.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accumulated placement counts.
    pub fn placements(&self) -> PlacementStats {
        PlacementStats {
            local: self.placements_local.load(Ordering::Relaxed),
            cross: self.placements_cross.load(Ordering::Relaxed),
        }
    }

    /// Advance the shared accept cursor, returning the shard to poll
    /// first — round-robin so no shard's accept queue starves.
    pub fn next_accept_shard(&self) -> usize {
        self.accept_cursor.fetch_add(1, Ordering::Relaxed) % self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn shard_id_display_and_index() {
        let id = ShardId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "sh3");
        assert_eq!(ShardId::default(), ShardId::new(0));
    }

    #[test]
    fn steering_key_reads_tcp_tuple() {
        // Hand-rolled 20-byte IPv4 header + 4 bytes of TCP ports.
        let mut frame = vec![0u8; 24];
        frame[0] = 0x45;
        frame[9] = 6;
        frame[12..16].copy_from_slice(&[10, 0, 0, 2]);
        frame[16..20].copy_from_slice(&[10, 0, 0, 1]);
        frame[20..22].copy_from_slice(&40_111u16.to_be_bytes());
        frame[22..24].copy_from_slice(&1521u16.to_be_bytes());
        let key = steering_key(&frame).expect("parses");
        assert_eq!(key.local_addr, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(key.local_port, 1521);
        assert_eq!(key.remote_addr, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(key.remote_port, 40_111);
    }

    #[test]
    fn steering_key_rejects_junk() {
        assert_eq!(steering_key(&[]), None);
        assert_eq!(steering_key(&[0u8; 19]), None);
        let mut not_v4 = vec![0x65u8; 24];
        not_v4[9] = 6;
        assert_eq!(steering_key(&not_v4), None);
        let mut icmp = vec![0x45u8; 24];
        icmp[9] = 1;
        assert_eq!(steering_key(&icmp), None);
        let mut truncated = vec![0x45u8; 22]; // header claims 20, ports cut off
        truncated[9] = 6;
        assert_eq!(steering_key(&truncated), None);
    }

    #[test]
    fn ephemeral_ports_skip_in_use_and_listeners_and_report_exhaustion() {
        let table = SteerTable::new(4, 65_530); // six-port range
        let got: Vec<u16> = (0..4)
            .map(|_| table.alloc_ephemeral(|_| false).expect("range not full"))
            .collect();
        assert_eq!(got, vec![65_530, 65_531, 65_532, 65_533]);
        // Wraparound with most of the range still held: a listener sits
        // on 65_535 and every connection except 65_531's is alive — the
        // allocator must walk past all of them to the one free port
        // instead of recycling a live one.
        table.note_listen(65_535);
        let busy = |p: u16| p != 65_531;
        assert_eq!(table.alloc_ephemeral(busy).expect("one port free"), 65_531);
        // A fully-occupied range is an error, not a recycled duplicate.
        assert!(matches!(
            table.alloc_ephemeral(|_| true),
            Err(crate::StackError::NoEphemeralPorts)
        ));
    }

    #[test]
    fn placement_counters() {
        let table = SteerTable::new(2, 49_152);
        table.note_placement(ShardId::new(0), ShardId::new(0));
        table.note_placement(ShardId::new(0), ShardId::new(1));
        table.note_placement(ShardId::new(1), ShardId::new(1));
        assert_eq!(table.placements(), PlacementStats { local: 2, cross: 1 });
    }

    #[test]
    fn listen_ports_dedupe() {
        let table = SteerTable::new(2, 49_152);
        table.note_listen(80);
        table.note_listen(80);
        table.note_listen(1521);
        assert!(table.is_listening(80));
        assert!(table.is_listening(1521));
        assert!(!table.is_listening(8080));
    }

    #[test]
    fn accept_cursor_round_robins() {
        let table = SteerTable::new(3, 49_152);
        let seq: Vec<usize> = (0..6).map(|_| table.next_accept_shard()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }
}
