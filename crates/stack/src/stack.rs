//! The receive path itself.

use crate::shard::ShardId;
use crate::socket::{SocketBuffer, SocketError};
use crate::stats::{StackStats, StatsSnapshot};
use crate::timer::TimerId;
use crate::txpool::TxPool;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tcpdemux_core::{Demux, LookupResult, PacketKind, SequentDemux};
use tcpdemux_hash::Multiplicative;
use tcpdemux_pcb::{
    CcAction, CongestionControl, CongestionState, ConnectionKey, ListenKey, NewReno, Pcb, PcbArena,
    PcbId, RttEstimator, SendBuffer, SeqNum, TcpEvent, TcpState,
};
use tcpdemux_telemetry::{CloseCause, Event, HistogramId, Recorder};
use tcpdemux_wire::{
    build_tcp_frame_into, build_udp_frame_into, IpProtocol, Ipv4Packet, Ipv4Repr, TcpFlags,
    TcpRepr, TcpSegment, UdpDatagram, UdpRepr, WireError,
};

/// Microseconds per stack timer tick (the stack's tick is 1 ms; the RTT
/// estimator works in microseconds).
const US_PER_TICK: u64 = 1_000;

/// Stack-level (non-wire) errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// The port already has a listener.
    PortInUse(u16),
    /// The PCB handle does not resolve (closed or never existed).
    NoSuchConnection,
    /// The operation requires an established connection.
    NotEstablished,
    /// All ephemeral ports are in use (practically unreachable).
    NoEphemeralPorts,
    /// The state machine refused the operation in the current state.
    InvalidState(TcpState),
}

impl core::fmt::Display for StackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StackError::PortInUse(p) => write!(f, "port {p} already in use"),
            StackError::NoSuchConnection => write!(f, "no such connection"),
            StackError::NotEstablished => write!(f, "connection not established"),
            StackError::NoEphemeralPorts => write!(f, "ephemeral ports exhausted"),
            StackError::InvalidState(s) => write!(f, "invalid in state {s}"),
        }
    }
}

impl std::error::Error for StackError {}

/// What happened to a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Payload bytes were delivered to a socket.
    Delivered {
        /// The connection.
        pcb: PcbId,
        /// Bytes delivered.
        bytes: usize,
    },
    /// A UDP datagram was delivered to an unconnected bound socket (no
    /// PCB involved — the wildcard path).
    DeliveredUnconnected {
        /// Bytes delivered.
        bytes: usize,
    },
    /// A pure acknowledgement was processed.
    AckProcessed {
        /// The connection.
        pcb: PcbId,
    },
    /// A handshake completed; the connection is now established.
    Established {
        /// The connection.
        pcb: PcbId,
    },
    /// A listener accepted a SYN; a SYN-ACK is in `replies`.
    NewConnection {
        /// The embryonic connection (SYN-RECEIVED).
        pcb: PcbId,
    },
    /// The peer sent FIN; its direction of the stream is closed.
    PeerClosed {
        /// The connection.
        pcb: PcbId,
    },
    /// The connection finished closing and was reclaimed.
    Closed,
    /// The connection entered TIME-WAIT and is draining (2·MSL timer
    /// scheduled; see [`StackConfig::time_wait_ticks`]).
    TimeWait {
        /// The draining connection.
        pcb: PcbId,
    },
    /// The segment matched nothing; an RST is in `replies`.
    ResetSent,
    /// The peer reset the connection; it was reclaimed.
    ResetReceived,
    /// Out-of-order or duplicate segment; dropped and re-acknowledged.
    Duplicate {
        /// The connection.
        pcb: PcbId,
    },
    /// The frame was addressed to some other host.
    NotForUs,
    /// The frame carried a protocol this stack does not implement.
    UnhandledProtocol,
    /// A UDP datagram arrived for a port with no socket; an ICMP
    /// port-unreachable is in `replies` (RFC 1122).
    UdpUnreachable,
    /// An ICMP echo request was answered; the reply is in `replies`.
    EchoReplied,
    /// Another ICMP message was received and counted.
    IcmpProcessed,
    /// An ARP request for our address was answered; the reply is in
    /// `replies`.
    ArpReplied,
    /// An ARP message was processed (mapping learned, no reply owed).
    ArpProcessed,
    /// A SYN arrived for a listener whose backlog is full; it was
    /// dropped silently (the client will retransmit).
    SynDropped,
}

/// The result of one received frame: what happened, any frames to send
/// in response, and the demultiplexing cost incurred.
#[derive(Debug, Clone)]
pub struct RxResult {
    /// Classification of the received frame.
    pub outcome: RxOutcome,
    /// Reply frames (ACKs, SYN-ACKs, RSTs) ready for transmission.
    pub replies: Vec<Vec<u8>>,
    /// PCBs examined by the lookup for this frame (the paper's metric).
    pub pcbs_examined: u32,
}

/// The result of one [`Stack::receive_batch`] call.
///
/// `results` holds one entry per input frame, in order, each exactly what
/// [`Stack::receive`] would have returned for that frame. The counters
/// describe how the batch interacted with the demultiplexer: frames
/// resolved by the single batched lookup versus frames that had to be
/// re-looked-up individually because an earlier frame in the same batch
/// changed the connection table (inserted or removed an entry), making
/// the batched answer potentially stale.
#[derive(Debug, Default)]
pub struct BatchRxResult {
    /// Per-frame outcomes, in input order.
    pub results: Vec<Result<RxResult, WireError>>,
    /// Frames whose demux answer came from the batched lookup.
    pub batched_lookups: usize,
    /// Frames re-looked-up individually after a mid-batch table change.
    pub relookups: usize,
}

/// What one [`Stack::advance_time`] call did.
#[derive(Debug, Default)]
pub struct TimeAdvance {
    /// Connections reclaimed by the 2·MSL TIME-WAIT timer.
    pub reclaimed: usize,
    /// Frames to (re)transmit: every queued unacknowledged segment of
    /// every connection whose retransmission timer expired, rebuilt with
    /// the current acknowledgement state. The caller puts them on the
    /// wire exactly like `send`/`receive` output (and may [`Stack::recycle`]
    /// them afterwards).
    pub retransmits: Vec<Vec<u8>>,
    /// Pure ACK frames emitted by delayed-ACK timers that expired during
    /// this advance; the caller transmits them like any reply frame.
    pub acks: Vec<Vec<u8>>,
    /// How many delayed ACKs fired (== `acks.len()`, kept as a counter so
    /// drivers that drain `acks` can still aggregate).
    pub acks_sent: u64,
    /// Zero-window probe re-emissions fired by the persist timer during
    /// this advance (the frames themselves ride in `retransmits`).
    pub zero_window_probes: u64,
    /// Connections aborted because their retransmission budget ran out.
    /// Each one's socket survives with [`SocketError::TimedOut`] set (and
    /// any already-delivered bytes still readable) until the application
    /// reaps it via [`Stack::release_socket`].
    pub aborted: Vec<PcbId>,
}

/// Payloads carried by the stack's timer wheel.
#[derive(Debug, Clone, Copy)]
enum TimerEvent {
    /// The 2·MSL TIME-WAIT drain for a parked connection.
    TimeWait(PcbId, ConnectionKey),
    /// The retransmission timeout for a connection with unacked segments.
    Retransmit(PcbId, ConnectionKey),
    /// A delayed acknowledgement owed on a connection came due.
    DelayedAck(PcbId, ConnectionKey),
}

/// One transmitted, not-yet-acknowledged segment, kept until the peer's
/// cumulative ACK passes `end`. Frames are not stored — a retransmission
/// rebuilds the segment with the *current* ack/window state, as a real
/// stack does — only the payload bytes are, in a buffer borrowed from the
/// [`TxPool`] so steady-state tracking allocates nothing.
#[derive(Debug)]
struct InflightSegment {
    /// First sequence number the segment occupies.
    seq: SeqNum,
    /// One past the last occupied sequence number; the segment is
    /// acknowledged once SND.UNA reaches this.
    end: SeqNum,
    flags: TcpFlags,
    /// MSS option to carry on rebuild (SYN/SYN-ACK segments).
    mss: Option<u16>,
    payload: Vec<u8>,
    /// Stack tick at which the segment was first transmitted.
    sent_at: u64,
    /// Karn's rule: once set, an ACK covering this segment is ambiguous
    /// and must not produce an RTT sample.
    retransmitted: bool,
    /// Zero-window probe: its RTO re-emissions are the persist timer and
    /// never count against the retry budget (a closed window is not a
    /// dead path).
    probe: bool,
}

/// The per-connection retransmission queue and its armed timer.
#[derive(Debug, Default)]
struct RetxQueue {
    segments: VecDeque<InflightSegment>,
    timer: Option<TimerId>,
}

/// Per-connection delayed-ACK bookkeeping (only populated when
/// [`WindowConfig::delayed_ack_ticks`] is set).
#[derive(Debug, Default)]
struct DelayedAckState {
    /// In-order data segments received and not yet acknowledged.
    pending: u32,
    /// The armed ack timer, if any.
    timer: Option<TimerId>,
}

/// How a [`StackConfig`] builds each stack's demultiplexer. A *factory*
/// rather than a boxed instance because [`ShardedStack`] builds one
/// independent demux per shard from a single config.
///
/// [`ShardedStack`]: crate::ShardedStack
pub type DemuxFactory = Arc<dyn Fn() -> Box<dyn Demux> + Send + Sync>;

/// How a [`StackConfig`] builds each stack's congestion controller (one
/// per stack; the controller itself is stateless — per-connection state
/// lives in each PCB's [`CongestionState`]).
pub type CcFactory = Arc<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>;

/// Window, buffering, and congestion-control parameters, folded into
/// [`StackConfig`] via [`StackConfig::with_window`]. A bare `u16`
/// converts (`config.with_window(1024)`) and sets only the advertised
/// receive window, keeping the pre-windowed call sites working.
#[derive(Clone)]
pub struct WindowConfig {
    /// Upper bound on the receive window advertised to the peer. The
    /// *actual* advertisement shrinks as delivered-but-unread bytes pile
    /// up in the socket (`min(advertise, recv_buffer − occupancy)`).
    pub advertise: u16,
    /// Per-connection send-buffer capacity in bytes; [`Stack::send`]
    /// accepts at most this much un-transmitted data.
    pub send_buffer: usize,
    /// Receive-side cap: delivered-but-unread bytes beyond this are
    /// dropped (and re-ACKed) instead of buffered without bound.
    pub recv_buffer: usize,
    /// Delayed-ACK timer in ticks. `None` acknowledges every in-order
    /// data segment immediately (the pre-delayed-ACK behavior);
    /// `Some(t)` coalesces ACKs until `ack_every` segments or `t` ticks.
    pub delayed_ack_ticks: Option<u64>,
    /// With delayed ACKs on, acknowledge immediately every N-th unacked
    /// data segment (RFC 1122 recommends 2).
    pub ack_every: u32,
    /// Initial congestion window in bytes (RFC 5681 allows up to 4·MSS).
    pub initial_cwnd: usize,
    /// Builds the congestion controller (Reno, NewReno, …).
    cc: CcFactory,
}

impl core::fmt::Debug for WindowConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WindowConfig")
            .field("advertise", &self.advertise)
            .field("send_buffer", &self.send_buffer)
            .field("recv_buffer", &self.recv_buffer)
            .field("delayed_ack_ticks", &self.delayed_ack_ticks)
            .field("ack_every", &self.ack_every)
            .field("initial_cwnd", &self.initial_cwnd)
            .finish_non_exhaustive()
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            advertise: 8760,
            send_buffer: 256 * 1024,
            recv_buffer: 64 * 1024,
            delayed_ack_ticks: None,
            ack_every: 2,
            initial_cwnd: 4 * 1460,
            cc: Arc::new(|| Box::new(NewReno)),
        }
    }
}

impl WindowConfig {
    /// Advertise at most `advertise` bytes of receive window.
    pub fn with_advertise(mut self, advertise: u16) -> Self {
        self.advertise = advertise;
        self
    }

    /// Cap each connection's send buffer at `bytes`.
    pub fn with_send_buffer(mut self, bytes: usize) -> Self {
        self.send_buffer = bytes;
        self
    }

    /// Cap each connection's receive-side buffering at `bytes`.
    pub fn with_recv_buffer(mut self, bytes: usize) -> Self {
        self.recv_buffer = bytes;
        self
    }

    /// Delay ACKs up to `ticks`, coalescing every
    /// [`ack_every`](Self::ack_every)-th data segment.
    pub fn with_delayed_ack(mut self, ticks: u64) -> Self {
        self.delayed_ack_ticks = Some(ticks);
        self
    }

    /// Acknowledge immediately every `n`-th unacked data segment when
    /// delayed ACKs are on.
    pub fn with_ack_every(mut self, n: u32) -> Self {
        self.ack_every = n.max(1);
        self
    }

    /// Start each connection's congestion window at `bytes`.
    pub fn with_initial_cwnd(mut self, bytes: usize) -> Self {
        self.initial_cwnd = bytes;
        self
    }

    /// Use `factory` to build the congestion controller (e.g.
    /// `|| Box::new(Reno)`).
    pub fn with_congestion_control(
        mut self,
        factory: impl Fn() -> Box<dyn CongestionControl> + Send + Sync + 'static,
    ) -> Self {
        self.cc = Arc::new(factory);
        self
    }

    /// Build one congestion controller from the configured factory.
    pub(crate) fn build_cc(&self) -> Box<dyn CongestionControl> {
        (self.cc)()
    }
}

impl From<u16> for WindowConfig {
    fn from(advertise: u16) -> Self {
        Self::default().with_advertise(advertise)
    }
}

/// Reusable scratch for [`Stack::poll_transmit`]: the frames the stack
/// wants on the wire this poll. Cleared on entry to each poll; keep one
/// per driver loop so steady-state polling reuses its capacity.
#[derive(Debug, Default)]
pub struct TxScratch {
    /// Frames to transmit, in emission order.
    pub frames: Vec<Vec<u8>>,
}

impl TxScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stack construction parameters — the *one* construction path for both
/// a single [`Stack`] ([`Stack::with_config`]) and a K-shard
/// [`ShardedStack`](crate::ShardedStack). Carries everything a stack
/// needs, including its demultiplexer factory, its telemetry
/// [`Recorder`], and the typed [`ShardId`] it reports in introspection
/// rows.
#[derive(Clone)]
pub struct StackConfig {
    /// This host's IPv4 address.
    pub local_addr: Ipv4Addr,
    /// Window, buffering, and congestion-control parameters.
    pub window: WindowConfig,
    /// MSS advertised in SYN segments.
    pub mss: u16,
    /// First ephemeral port for active opens.
    pub ephemeral_base: u16,
    /// Maximum number of times any one segment is retransmitted before
    /// the connection is aborted with [`SocketError::TimedOut`]
    /// (BSD's `TCP_MAXRXTSHIFT` spirit; RFC 1122 §4.2.3.5's R2).
    pub max_retries: u32,
    /// TIME-WAIT duration in timer ticks (the 2·MSL drain). `None`
    /// reclaims the connection as soon as it reaches TIME-WAIT — the
    /// timer-free model convenient for simulations that never reuse a
    /// four-tuple. `Some(n)` keeps the PCB resident (re-acking stray
    /// FINs, refusing key reuse) until [`Stack::advance_time`] passes
    /// `n` ticks.
    pub time_wait_ticks: Option<u64>,
    /// Which shard this stack is, for introspection rows; a standalone
    /// stack is shard 0. [`ShardedStack`](crate::ShardedStack) overrides
    /// this per shard.
    pub shard: ShardId,
    /// Capacity of each shard's ingress SPSC ring (frames); unused by a
    /// standalone [`Stack`], which has no ingress queue.
    pub ring_capacity: usize,
    /// Telemetry destination; `None` means a private recorder.
    recorder: Option<Recorder>,
    /// Builds the demultiplexer (one per shard).
    demux: DemuxFactory,
}

impl core::fmt::Debug for StackConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StackConfig")
            .field("local_addr", &self.local_addr)
            .field("window", &self.window)
            .field("mss", &self.mss)
            .field("ephemeral_base", &self.ephemeral_base)
            .field("max_retries", &self.max_retries)
            .field("time_wait_ticks", &self.time_wait_ticks)
            .field("shard", &self.shard)
            .field("ring_capacity", &self.ring_capacity)
            .field("recorder", &self.recorder.is_some())
            .finish_non_exhaustive()
    }
}

impl StackConfig {
    /// Defaults appropriate for tests and simulation: the paper's default
    /// hashed demultiplexer (`sequent(19)` over [`Multiplicative`]), a
    /// private recorder, shard 0.
    pub fn new(local_addr: Ipv4Addr) -> Self {
        Self {
            local_addr,
            window: WindowConfig::default(),
            mss: 1460,
            ephemeral_base: 49152,
            max_retries: 8,
            time_wait_ticks: None,
            shard: ShardId::default(),
            ring_capacity: 1024,
            recorder: None,
            demux: Arc::new(|| Box::new(SequentDemux::new(Multiplicative, 19))),
        }
    }

    /// Use `factory` to build this stack's demultiplexer (per shard, for
    /// a sharded runtime).
    pub fn with_demux(
        mut self,
        factory: impl Fn() -> Box<dyn Demux> + Send + Sync + 'static,
    ) -> Self {
        self.demux = Arc::new(factory);
        self
    }

    /// Wrap whatever demultiplexer the current factory builds in a
    /// [`FrontDemux`] fingerprint front filter, so table misses are
    /// rejected from a cache-resident structure before any PCB chain is
    /// walked. Composes with [`StackConfig::with_demux`] in either
    /// order relative to other settings; call it last if both are used.
    ///
    /// [`FrontDemux`]: tcpdemux_core::FrontDemux
    pub fn with_front_filter(mut self) -> Self {
        let inner = Arc::clone(&self.demux);
        self.demux = Arc::new(move || Box::new(tcpdemux_core::FrontDemux::new(inner())));
        self
    }

    /// Send telemetry to `recorder` (e.g. one shared with a bench harness
    /// or suite entry) instead of a private one.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Tag this stack as `shard` in introspection rows.
    pub fn with_shard(mut self, shard: ShardId) -> Self {
        self.shard = shard;
        self
    }

    /// Size each ingress SPSC ring at `capacity` frames (sharded runtime
    /// only).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Build one demultiplexer instance from the configured factory.
    pub(crate) fn build_demux(&self) -> Box<dyn Demux> {
        (self.demux)()
    }

    /// The configured recorder, if any.
    pub(crate) fn recorder(&self) -> Option<Recorder> {
        self.recorder.clone()
    }

    /// Abort a connection after `max_retries` retransmissions of the same
    /// segment go unacknowledged.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Enable real TIME-WAIT handling with the given duration in ticks.
    pub fn with_time_wait(mut self, ticks: u64) -> Self {
        self.time_wait_ticks = Some(ticks);
        self
    }

    /// Use a different local address (overriding the one given to `new`).
    pub fn with_local_addr(mut self, addr: Ipv4Addr) -> Self {
        self.local_addr = addr;
        self
    }

    /// Set the window/buffering/congestion parameters. Accepts a full
    /// [`WindowConfig`] or a bare `u16` advertised receive window.
    pub fn with_window(mut self, window: impl Into<WindowConfig>) -> Self {
        self.window = window.into();
        self
    }

    /// Advertise `mss` in SYN segments (and cap the peer's).
    pub fn with_mss(mut self, mss: u16) -> Self {
        self.mss = mss;
        self
    }

    /// Allocate ephemeral ports for active opens starting at `base`.
    pub fn with_ephemeral_base(mut self, base: u16) -> Self {
        self.ephemeral_base = base;
        self
    }
}

/// One row of [`Stack::connection_table`]: a live connection's key,
/// state, and queue/loss-recovery depths — the structured replacement for
/// parsing a `netstat` text dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionInfo {
    /// The shard owning this connection (shard 0 for a plain [`Stack`]).
    pub shard: ShardId,
    /// The connection's four-tuple.
    pub key: ConnectionKey,
    /// Current TCP state.
    pub state: TcpState,
    /// Bytes delivered to the socket and not yet read by the application.
    pub rx_queued: usize,
    /// Payload bytes sitting on the retransmission queue (sent, not yet
    /// cumulatively acknowledged).
    pub tx_queued: usize,
    /// Segments on the retransmission queue (includes zero-payload SYN,
    /// SYN-ACK, and FIN segments, which occupy sequence space).
    pub inflight_segments: usize,
    /// Consecutive RTO expiries without forward progress (0 = healthy).
    pub rto_attempts: u32,
}

impl core::fmt::Display for ConnectionInfo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "tcp  {:<4} {:<28} {:<24} {} rxq={} txq={} rto_attempts={}",
            self.shard.to_string(),
            format!("{}:{}", self.key.local_addr, self.key.local_port),
            format!("{}:{}", self.key.remote_addr, self.key.remote_port),
            self.state,
            self.rx_queued,
            self.tx_queued,
            self.rto_attempts,
        )
    }
}

/// One row of [`Stack::listener_table`]: a TCP listener (with backlog
/// occupancy) or a bound unconnected UDP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListenerInfo {
    /// The shard this listener row was observed on. A
    /// [`ShardedStack`](crate::ShardedStack) installs every listener on
    /// every shard, so its table has one row per (listener, shard).
    pub shard: ShardId,
    /// The bound local port.
    pub port: u16,
    /// [`IpProtocol::Tcp`] for listeners, [`IpProtocol::Udp`] for bound
    /// datagram ports.
    pub protocol: IpProtocol,
    /// Maximum embryonic + unaccepted connections (TCP only; 0 for UDP).
    pub backlog: usize,
    /// Current embryonic + unaccepted connections (TCP only).
    pub pending: usize,
}

impl core::fmt::Display for ListenerInfo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.protocol {
            IpProtocol::Udp => write!(
                f,
                "udp  {:<4} {:<28} {:<24} BOUND",
                self.shard.to_string(),
                format!("*:{}", self.port),
                "*:*"
            ),
            _ => {
                if self.backlog == usize::MAX {
                    write!(
                        f,
                        "tcp  {:<4} {:<28} {:<24} LISTEN (backlog {}/unbounded)",
                        self.shard.to_string(),
                        format!("*:{}", self.port),
                        "*:*",
                        self.pending,
                    )
                } else {
                    write!(
                        f,
                        "tcp  {:<4} {:<28} {:<24} LISTEN (backlog {}/{})",
                        self.shard.to_string(),
                        format!("*:{}", self.port),
                        "*:*",
                        self.pending,
                        self.backlog,
                    )
                }
            }
        }
    }
}

/// Parameters for [`Stack::listen`], following the `StackConfig::with_*`
/// builder idiom. A bare port converts (`stack.listen(80)`) and means an
/// unbounded backlog; chain [`with_backlog`](Self::with_backlog) for BSD
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListenConfig {
    /// The local port to listen on (all local addresses).
    pub port: u16,
    /// Maximum connections that may be embryonic (SYN-RECEIVED) or
    /// established-but-unaccepted at once; SYNs beyond it are dropped
    /// silently (the BSD behavior — the client retransmits).
    pub backlog: usize,
}

impl ListenConfig {
    /// Listen on `port` with no backlog limit — convenient for harnesses
    /// that process connections without ever calling [`Stack::accept`].
    pub fn port(port: u16) -> Self {
        Self {
            port,
            backlog: usize::MAX,
        }
    }

    /// Cap the backlog at `backlog` pending connections.
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog;
        self
    }

    /// The classic BSD default backlog (4.2BSD's `SOMAXCONN` of
    /// [`Stack::BSD_BACKLOG`]), for period-accurate semantics.
    pub fn with_bsd_backlog(self) -> Self {
        self.with_backlog(Stack::BSD_BACKLOG)
    }
}

impl From<u16> for ListenConfig {
    fn from(port: u16) -> Self {
        Self::port(port)
    }
}

/// A TCP listener: its wildcard key, capacity, and accept queue.
#[derive(Debug)]
struct Listener {
    key: ListenKey,
    backlog: usize,
    /// Connections in SYN-RECEIVED attributed to this listener.
    embryonic: usize,
    /// Established connections awaiting `accept`.
    accept_queue: std::collections::VecDeque<PcbId>,
}

impl Listener {
    fn pending(&self) -> usize {
        self.embryonic + self.accept_queue.len()
    }
}

/// One frame's fate after the batched-receive parse stage. Payloads are
/// kept as byte ranges into the original frame so the parse results carry
/// no borrows (the frames stay with the caller).
#[derive(Debug)]
enum Classified {
    /// Fully handled during parsing: wire errors, frames for other hosts,
    /// unknown protocols, and ICMP (none of which consult the demux).
    Done(Result<RxResult, WireError>),
    /// A valid TCP segment awaiting its demux lookup.
    Tcp {
        key: ConnectionKey,
        kind: PacketKind,
        tcp: TcpRepr,
        payload: (usize, usize),
    },
    /// A valid UDP datagram awaiting its demux lookup.
    Udp {
        key: ConnectionKey,
        payload: (usize, usize),
        header_len: usize,
    },
}

/// Byte range of `inner` within `outer`, where `inner` is a parser-derived
/// subslice of the frame `outer`.
fn subslice_range(outer: &[u8], inner: &[u8]) -> (usize, usize) {
    let start = inner.as_ptr() as usize - outer.as_ptr() as usize;
    debug_assert!(start + inner.len() <= outer.len());
    (start, start + inner.len())
}

/// Reusable scratch space for [`Stack::receive_batch`]. Taken out of the
/// stack for the duration of a batch (the apply loop needs `&mut self`)
/// and put back afterwards, capacity intact.
#[derive(Debug, Default)]
struct RxScratch {
    classified: Vec<Classified>,
    keys: Vec<(ConnectionKey, PacketKind)>,
    lookups: Vec<LookupResult>,
}

/// A host: one IPv4 address, one demultiplexer, many connections.
pub struct Stack {
    config: StackConfig,
    arena: PcbArena,
    demux: Box<dyn Demux>,
    listeners: Vec<Listener>,
    udp_listeners: Vec<ListenKey>,
    /// Which listener (index into `listeners`) each not-yet-accepted
    /// connection belongs to.
    listener_of: HashMap<PcbId, usize>,
    sockets: HashMap<PcbId, SocketBuffer>,
    stats: StackStats,
    tx_pool: TxPool,
    /// Bumped on every demux `insert`/`remove`; lets the batched receive
    /// path detect that an earlier frame in the batch changed the
    /// connection table, invalidating the remaining batched lookups.
    demux_gen: u64,
    /// Scratch buffers reused across `receive_batch` calls so a
    /// steady-state batch allocates nothing but its returned results.
    rx_scratch: RxScratch,
    next_ephemeral: u16,
    next_iss: u32,
    timers: crate::timer::TimerWheel<TimerEvent>,
    /// Unacknowledged segments per connection, awaiting cumulative ACKs
    /// or retransmission.
    retx: HashMap<PcbId, RetxQueue>,
    /// Enqueued-but-untransmitted application bytes per connection; the
    /// windowed transmit path drains these in [`Stack::poll_transmit`].
    sendbufs: HashMap<PcbId, SendBuffer>,
    /// Connections with buffered data awaiting a transmit poll, FIFO.
    tx_pending: VecDeque<PcbId>,
    /// Membership set for `tx_pending` (no duplicate queue entries).
    tx_pending_set: HashSet<PcbId>,
    /// Per-connection delayed-ACK state (unacked in-order data segments
    /// and the armed ack timer, if any).
    delayed: HashMap<PcbId, DelayedAckState>,
    /// The congestion controller driving every connection's cwnd.
    cc: Box<dyn CongestionControl>,
    neighbors: crate::neighbor::NeighborCache,
    now_ticks: u64,
    /// Structured telemetry: every demux lookup, connection lifecycle
    /// change, retransmission, and batch re-lookup records here.
    recorder: Recorder,
}

impl Stack {
    /// Create a stack from its config — the single construction path.
    /// The demultiplexer comes from [`StackConfig::with_demux`]'s factory
    /// and telemetry goes to [`StackConfig::with_recorder`]'s recorder
    /// (or a private one).
    pub fn with_config(config: StackConfig) -> Self {
        let demux = config.build_demux();
        let recorder = config.recorder().unwrap_or_default();
        let cc = config.window.build_cc();
        Self {
            next_ephemeral: config.ephemeral_base,
            config,
            arena: PcbArena::new(),
            demux,
            listeners: Vec::new(),
            udp_listeners: Vec::new(),
            listener_of: HashMap::new(),
            sockets: HashMap::new(),
            stats: StackStats::default(),
            tx_pool: TxPool::default(),
            demux_gen: 0,
            rx_scratch: RxScratch::default(),
            next_iss: 0x1000_0000,
            timers: crate::timer::TimerWheel::new(256),
            retx: HashMap::new(),
            sendbufs: HashMap::new(),
            tx_pending: VecDeque::new(),
            tx_pending_set: HashSet::new(),
            delayed: HashMap::new(),
            cc,
            neighbors: crate::neighbor::NeighborCache::with_defaults(),
            now_ticks: 0,
            recorder,
        }
    }

    /// The shard this stack was configured as (shard 0 standalone).
    pub fn shard_id(&self) -> ShardId {
        self.config.shard
    }

    /// A handle to the stack's telemetry recorder. Clones share the
    /// underlying store, so callers can snapshot, reset, or record
    /// alongside the stack.
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Advance the stack's clock to `tick`: fire TIME-WAIT expirations,
    /// fire retransmission timeouts (returning the frames to re-emit, or
    /// aborting connections whose retry budget is spent), and sweep stale
    /// neighbor-cache entries.
    ///
    /// # Panics
    ///
    /// If `tick` is behind the stack's clock — checked before anything
    /// mutates, so a bad caller cannot leave the clock half-advanced.
    pub fn advance_time(&mut self, tick: u64) -> TimeAdvance {
        assert!(
            tick >= self.now_ticks,
            "time went backwards: {} < {}",
            tick,
            self.now_ticks
        );
        self.now_ticks = tick;
        self.neighbors.expire(tick);
        let expired = self.timers.advance_to(tick);
        let mut advance = TimeAdvance::default();
        for event in expired {
            match event {
                TimerEvent::TimeWait(id, key) => {
                    // The timer may be stale: the slot could have been
                    // reclaimed by an RST already. The arena's generation
                    // check makes a stale handle harmless.
                    if matches!(
                        self.arena.get(id).map(|p| p.state()),
                        Some(TcpState::TimeWait)
                    ) {
                        self.reclaim(id, &key, CloseCause::Graceful);
                        advance.reclaimed += 1;
                    }
                }
                TimerEvent::Retransmit(id, key) => {
                    self.on_retx_timeout(id, &key, &mut advance);
                }
                TimerEvent::DelayedAck(id, key) => {
                    let owed = match self.delayed.get_mut(&id) {
                        Some(state) => {
                            state.timer = None;
                            state.pending > 0
                        }
                        None => false,
                    };
                    if owed && self.arena.get(id).is_some() {
                        let frame = self.make_ack(&key, id);
                        self.note_ack_emitted(id);
                        self.recorder.event(Event::DelayedAck);
                        advance.acks.push(frame);
                        advance.acks_sent += 1;
                    }
                }
            }
        }
        advance
    }

    /// The earliest tick at which a scheduled timer (retransmission or
    /// TIME-WAIT) is due, if any — what a discrete-event driver passes to
    /// [`advance_time`](Self::advance_time) to jump over idle time.
    pub fn next_timer_deadline(&self) -> Option<u64> {
        self.timers.next_due_tick()
    }

    /// Number of connections currently sitting in TIME-WAIT.
    pub fn time_wait_count(&self) -> usize {
        self.arena
            .iter()
            .filter(|(_, p)| p.state() == TcpState::TimeWait)
            .count()
    }

    /// Snapshot of every live connection and its state (like `netstat`'s
    /// per-connection rows, in arena order).
    pub fn connections(&self) -> Vec<(ConnectionKey, TcpState)> {
        self.arena
            .iter()
            .map(|(_, p)| (p.key(), p.state()))
            .collect()
    }

    /// Structured per-connection rows — what `netstat -an` would print,
    /// but as data a test or sim can assert on: key, state, queue depths,
    /// and loss-recovery state. Arena order. Each row's [`Display`] impl
    /// renders the classic text line.
    pub fn connection_table(&self) -> Vec<ConnectionInfo> {
        self.arena
            .iter()
            .map(|(id, p)| ConnectionInfo {
                shard: self.config.shard,
                key: p.key(),
                state: p.state(),
                rx_queued: self.sockets.get(&id).map_or(0, |s| s.available()),
                tx_queued: self
                    .retx
                    .get(&id)
                    .map_or(0, |q| q.segments.iter().map(|s| s.payload.len()).sum()),
                inflight_segments: self.retx.get(&id).map_or(0, |q| q.segments.len()),
                rto_attempts: p.rto_attempts,
            })
            .collect()
    }

    /// Structured per-listener rows: every TCP listener with its backlog
    /// occupancy, then every bound (unconnected) UDP port.
    pub fn listener_table(&self) -> Vec<ListenerInfo> {
        let mut out: Vec<ListenerInfo> = self
            .listeners
            .iter()
            .map(|l| ListenerInfo {
                shard: self.config.shard,
                port: l.key.local_port,
                protocol: IpProtocol::Tcp,
                backlog: l.backlog,
                pending: l.pending(),
            })
            .collect();
        out.extend(self.udp_listeners.iter().map(|l| ListenerInfo {
            shard: self.config.shard,
            port: l.local_port,
            protocol: IpProtocol::Udp,
            backlog: 0,
            pending: 0,
        }));
        out
    }

    /// Park a TIME-WAIT connection: reclaim now (timer-free model) or
    /// schedule the 2·MSL timer.
    fn enter_time_wait(&mut self, id: PcbId, key: &ConnectionKey) -> bool {
        // Reaching TIME-WAIT means our FIN was acknowledged: nothing is
        // in flight anymore, so the retransmission queue dissolves.
        self.drop_retx(id);
        match self.config.time_wait_ticks {
            None => {
                self.reclaim(id, key, CloseCause::Graceful);
                true
            }
            Some(ticks) => {
                self.timers.schedule(ticks, TimerEvent::TimeWait(id, *key));
                false
            }
        }
    }

    /// This host's address.
    pub fn local_addr(&self) -> Ipv4Addr {
        self.config.local_addr
    }

    /// This host's MAC address (derived deterministically from the IPv4
    /// address; the in-memory fabric has no ARP).
    pub fn mac(&self) -> tcpdemux_wire::EthernetAddress {
        tcpdemux_wire::EthernetAddress::from_ipv4(self.config.local_addr)
    }

    /// Process one received *Ethernet* frame: link-layer filtering, then
    /// the normal IPv4 receive path on the payload.
    pub fn receive_ethernet(&mut self, frame: &[u8]) -> Result<RxResult, WireError> {
        use tcpdemux_wire::{EtherType, EthernetFrame, EthernetRepr};
        let eth = EthernetFrame::new_checked(frame).map_err(|e| {
            self.stats.frames_in += 1;
            self.stats.ip_errors += 1;
            e
        })?;
        let repr = EthernetRepr::parse(&eth)?;
        if repr.dst_addr != self.mac() && !repr.dst_addr.is_broadcast() {
            self.stats.frames_in += 1;
            self.stats.not_for_us += 1;
            return Ok(RxResult {
                outcome: RxOutcome::NotForUs,
                replies: Vec::new(),
                pcbs_examined: 0,
            });
        }
        match repr.ethertype {
            EtherType::Ipv4 => self.receive(eth.payload()),
            EtherType::Arp => self.receive_arp(eth.payload()),
            EtherType::Unknown(_) => {
                self.stats.frames_in += 1;
                self.stats.bad_protocol += 1;
                Ok(RxResult {
                    outcome: RxOutcome::UnhandledProtocol,
                    replies: Vec::new(),
                    pcbs_examined: 0,
                })
            }
        }
    }

    fn receive_arp(&mut self, packet: &[u8]) -> Result<RxResult, WireError> {
        use tcpdemux_wire::{ArpOperation, ArpRepr};
        self.stats.frames_in += 1;
        let arp = ArpRepr::parse(packet).map_err(|e| {
            self.stats.ip_errors += 1;
            e
        })?;
        // Learn the sender's mapping from either message kind.
        self.neighbors
            .learn(arp.src_ip, arp.src_mac, self.now_ticks);
        if arp.operation == ArpOperation::Request && arp.dst_ip == self.config.local_addr {
            let reply = arp.reply_to(self.mac());
            let bytes = reply.emit();
            let payload_len = bytes.len().max(tcpdemux_wire::ethernet::MIN_PAYLOAD);
            let mut out = self.tx_pool.take();
            out.clear();
            out.resize(tcpdemux_wire::ethernet::HEADER_LEN + payload_len, 0);
            {
                let mut eth = tcpdemux_wire::EthernetFrame::new_unchecked(&mut out[..]);
                tcpdemux_wire::EthernetRepr {
                    src_addr: self.mac(),
                    dst_addr: arp.src_mac,
                    ethertype: tcpdemux_wire::EtherType::Arp,
                }
                .emit(&mut eth)
                .expect("sized buffer");
                eth.payload_mut()[..bytes.len()].copy_from_slice(&bytes);
            }
            self.stats.frames_out += 1;
            return Ok(RxResult {
                outcome: RxOutcome::ArpReplied,
                replies: vec![out],
                pcbs_examined: 0,
            });
        }
        Ok(RxResult {
            outcome: RxOutcome::ArpProcessed,
            replies: Vec::new(),
            pcbs_examined: 0,
        })
    }

    /// The MAC this stack would use to reach `dst_addr`: the learned ARP
    /// mapping if one is live, else the deterministic derived MAC (the
    /// in-memory fabric's substitute for a real broadcast resolution).
    pub fn resolve(&mut self, dst_addr: Ipv4Addr) -> tcpdemux_wire::EthernetAddress {
        self.neighbors
            .lookup(dst_addr, self.now_ticks)
            .unwrap_or_else(|| tcpdemux_wire::EthernetAddress::from_ipv4(dst_addr))
    }

    /// Wrap an IPv4 packet produced by this stack in an Ethernet frame
    /// addressed to `dst_addr` (via the neighbor cache, falling back to
    /// the derived MAC).
    pub fn encapsulate(&mut self, ip_packet: &[u8], dst_addr: Ipv4Addr) -> Vec<u8> {
        let dst_mac = self.resolve(dst_addr);
        let mut buf = self.tx_pool.take();
        tcpdemux_wire::ethernet::encapsulate_ipv4_into(self.mac(), dst_mac, ip_packet, &mut buf);
        buf
    }

    /// Everything observable about the stack right now, owned: the
    /// receive-path counters, the demultiplexer's lookup statistics, the
    /// transmit-pool counters, and the full telemetry snapshot. Capture
    /// one before an operation and another after to diff any counter.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            stack: self.stats,
            demux: *self.demux.stats(),
            tx_pool: self.tx_pool.stats(),
            telemetry: self.recorder.snapshot(),
        }
    }

    /// Number of live connections (TCP in any state plus connected UDP).
    pub fn connection_count(&self) -> usize {
        self.arena.len()
    }

    /// Whether a connection is in `ESTABLISHED`.
    pub fn is_established(&self, pcb: PcbId) -> bool {
        self.arena
            .get(pcb)
            .map(|p| p.state() == TcpState::Established)
            .unwrap_or(false)
    }

    /// The connection's current state, if it exists.
    pub fn state(&self, pcb: PcbId) -> Option<TcpState> {
        self.arena.get(pcb).map(|p| p.state())
    }

    /// The connection's four-tuple (this stack's perspective), if it
    /// exists.
    pub fn connection_key(&self, pcb: PcbId) -> Option<ConnectionKey> {
        self.arena.get(pcb).map(|p| p.key())
    }

    /// The socket buffer for a connection.
    pub fn socket(&self, pcb: PcbId) -> Option<&SocketBuffer> {
        self.sockets.get(&pcb)
    }

    /// Mutable socket buffer (to read delivered bytes).
    pub fn socket_mut(&mut self, pcb: PcbId) -> Option<&mut SocketBuffer> {
        self.sockets.get_mut(&pcb)
    }

    /// The classic BSD default backlog (4.2BSD's `SOMAXCONN`), for
    /// callers who want period-accurate semantics via
    /// [`ListenConfig::with_bsd_backlog`].
    pub const BSD_BACKLOG: usize = 5;

    /// Start a TCP listener. A bare port listens on all local addresses
    /// with no backlog limit (`stack.listen(80)`); pass a [`ListenConfig`]
    /// to bound the backlog:
    ///
    /// ```
    /// # use tcpdemux_stack::{ListenConfig, Stack, StackConfig};
    /// # use std::net::Ipv4Addr;
    /// # let mut stack = Stack::with_config(
    /// #     StackConfig::new(Ipv4Addr::new(10, 0, 0, 1)),
    /// # );
    /// stack.listen(80).unwrap();
    /// stack.listen(ListenConfig::port(1521).with_backlog(16)).unwrap();
    /// ```
    pub fn listen(&mut self, config: impl Into<ListenConfig>) -> Result<(), StackError> {
        let ListenConfig { port, backlog } = config.into();
        if backlog == 0 {
            return Err(StackError::InvalidState(TcpState::Listen));
        }
        if self.listeners.iter().any(|l| l.key.local_port == port) {
            return Err(StackError::PortInUse(port));
        }
        self.listeners.push(Listener {
            key: ListenKey::any(port),
            backlog,
            embryonic: 0,
            accept_queue: std::collections::VecDeque::new(),
        });
        Ok(())
    }

    /// Dequeue the oldest established-but-unaccepted connection on a
    /// listening port, if any. After `accept`, the connection is the
    /// application's; before it, data segments are still processed and
    /// buffered (as BSD does for connections in the accept queue).
    pub fn accept(&mut self, port: u16) -> Option<PcbId> {
        let idx = self
            .listeners
            .iter()
            .position(|l| l.key.local_port == port)?;
        let id = self.listeners[idx].accept_queue.pop_front()?;
        self.listener_of.remove(&id);
        Some(id)
    }

    /// Number of connections waiting in a port's accept queue.
    pub fn accept_queue_len(&self, port: u16) -> usize {
        self.listeners
            .iter()
            .find(|l| l.key.local_port == port)
            .map(|l| l.accept_queue.len())
            .unwrap_or(0)
    }

    /// Open a UDP socket bound to `port` (unconnected; receives anything
    /// addressed to the port).
    pub fn udp_bind(&mut self, port: u16) -> Result<(), StackError> {
        if self.udp_listeners.iter().any(|l| l.local_port == port) {
            return Err(StackError::PortInUse(port));
        }
        self.udp_listeners.push(ListenKey::any(port));
        Ok(())
    }

    /// Open a *connected* UDP socket: a full four-tuple entered into the
    /// demultiplexer, exactly as Partridge & Pink's "faster UDP" assumes.
    pub fn udp_open(
        &mut self,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Result<PcbId, StackError> {
        let key = ConnectionKey::new(self.config.local_addr, local_port, remote_addr, remote_port);
        let pcb = Pcb::new_in_state(key, TcpState::Established);
        let id = self.arena.insert(pcb);
        self.demux.insert(key, id);
        self.demux_gen += 1;
        self.recorder.event(Event::ConnOpen);
        self.sockets.insert(id, SocketBuffer::new());
        Ok(id)
    }

    /// Whether a local port is currently held by anything that demuxes:
    /// a TCP or UDP listener, or any live connection's local endpoint.
    /// The ephemeral allocators (here and in the sharded runtime's
    /// [`SteerTable`](crate::shard::SteerTable)) consult this before
    /// minting a port, so a recycled port can never coin a
    /// [`ConnectionKey`] that collides with a live flow or listener.
    pub fn ephemeral_port_in_use(&self, port: u16) -> bool {
        self.listeners.iter().any(|l| l.key.local_port == port)
            || self.udp_listeners.iter().any(|l| l.local_port == port)
            || self
                .arena
                .iter()
                .any(|(_, pcb)| pcb.key().local_port == port)
    }

    /// Hand out the next free ephemeral port. The cursor wraps from
    /// `u16::MAX` back to `ephemeral_base`, but a port still held by a
    /// live connection or a listener is skipped — reissuing it would mint
    /// a duplicate [`ConnectionKey`] that demuxes to the wrong PCB. If
    /// every port in the range is occupied the allocator reports
    /// [`StackError::NoEphemeralPorts`] rather than recycling one.
    fn alloc_ephemeral(&mut self) -> Result<u16, StackError> {
        let span = usize::from(u16::MAX) - usize::from(self.config.ephemeral_base) + 1;
        for _ in 0..span {
            let port = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral == u16::MAX {
                self.config.ephemeral_base
            } else {
                self.next_ephemeral + 1
            };
            if !self.ephemeral_port_in_use(port) {
                return Ok(port);
            }
        }
        Err(StackError::NoEphemeralPorts)
    }

    fn alloc_iss(&mut self) -> SeqNum {
        let iss = SeqNum(self.next_iss);
        self.next_iss = self.next_iss.wrapping_add(64_000);
        iss
    }

    /// Begin an active open to `remote:port`. Returns the new connection's
    /// handle and the SYN frame to transmit.
    pub fn connect(
        &mut self,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Result<(PcbId, Vec<u8>), StackError> {
        let local_port = self.alloc_ephemeral()?;
        self.connect_from(local_port, remote_addr, remote_port)
    }

    /// [`connect`](Self::connect) with an explicit local port instead of
    /// a freshly-allocated ephemeral one. The sharded runtime uses this:
    /// the four-tuple decides which shard owns a flow, so the runtime
    /// must allocate the port *globally*, compute the owning shard from
    /// the full key, and only then place the connection there.
    pub fn connect_from(
        &mut self,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Result<(PcbId, Vec<u8>), StackError> {
        let key = ConnectionKey::new(self.config.local_addr, local_port, remote_addr, remote_port);
        let mut pcb = Pcb::new(key);
        pcb.on_event(TcpEvent::AppConnect)
            .expect("CLOSED accepts connect");
        let iss = self.alloc_iss();
        pcb.init_send(iss, self.config.window.advertise);
        pcb.mss = self.config.mss;
        pcb.cong = CongestionState::new(self.config.window.initial_cwnd);
        let id = self.arena.insert(pcb);
        self.demux.insert(key, id);
        self.demux_gen += 1;
        self.recorder.event(Event::ConnOpen);
        self.sockets.insert(id, SocketBuffer::new());

        let syn = TcpRepr {
            src_port: key.local_port,
            dst_port: key.remote_port,
            seq: iss.raw(),
            ack: 0,
            flags: TcpFlags::SYN,
            window: self.config.window.advertise,
            mss: Some(self.config.mss),
            window_scale: None,
        };
        let frame = self.emit_tcp(&key, &syn, b"");
        // The SYN occupies one sequence number and must be answered.
        self.track_segment(id, &key, iss, iss + 1, TcpFlags::SYN, syn.mss, b"", false);
        Ok((id, frame))
    }

    /// Enqueue payload for transmission on an established connection.
    ///
    /// Returns how many bytes the connection's send buffer accepted
    /// (zero when it is full — backpressure, not an error). Nothing goes
    /// on the wire here: [`Stack::poll_transmit`] drains the buffer
    /// under the transmit window `min(peer rwnd, cwnd)`.
    pub fn send(&mut self, pcb: PcbId, payload: &[u8]) -> Result<usize, StackError> {
        {
            let p = self.arena.get(pcb).ok_or(StackError::NoSuchConnection)?;
            if !p.state().can_transfer_data() {
                return Err(StackError::NotEstablished);
            }
        }
        let cap = self.config.window.send_buffer;
        let buf = self
            .sendbufs
            .entry(pcb)
            .or_insert_with(|| SendBuffer::new(cap));
        let accepted = buf.push(payload);
        if !buf.is_empty() {
            self.mark_tx_pending(pcb);
        }
        Ok(accepted)
    }

    /// Bytes enqueued on a connection's send buffer and not yet emitted.
    pub fn send_queued(&self, pcb: PcbId) -> usize {
        self.sendbufs.get(&pcb).map_or(0, |b| b.len())
    }

    /// A connection's congestion-control state (cwnd, ssthresh, recovery
    /// flags), or `None` if the handle is dead.
    pub fn congestion(&self, pcb: PcbId) -> Option<CongestionState> {
        self.arena.get(pcb).map(|p| p.cong)
    }

    /// Queue a connection for the next transmit poll (idempotent).
    fn mark_tx_pending(&mut self, pcb: PcbId) {
        if self.tx_pending_set.insert(pcb) {
            self.tx_pending.push_back(pcb);
        }
    }

    /// Emit everything the transmit window permits, across every
    /// connection with buffered data, into `scratch.frames` (cleared on
    /// entry). Returns the number of frames produced.
    ///
    /// Each connection sends MSS-sized segments while
    /// `min(peer rwnd, cwnd)` exceeds its in-flight bytes. A connection
    /// stalled on a *closed* peer window (rwnd = 0) with nothing in
    /// flight emits a one-byte zero-window probe instead; its
    /// retransmission timer doubles as the persist timer and never
    /// counts against the retry budget.
    pub fn poll_transmit(&mut self, scratch: &mut TxScratch) -> usize {
        scratch.frames.clear();
        let rounds = self.tx_pending.len();
        for _ in 0..rounds {
            let Some(id) = self.tx_pending.pop_front() else {
                break;
            };
            if !self.tx_pending_set.remove(&id) {
                continue; // stale entry: reclaimed while queued
            }
            self.transmit_for(id, scratch);
        }
        scratch.frames.len()
    }

    /// Drain one connection's send buffer under its transmit window.
    fn transmit_for(&mut self, pcb: PcbId, scratch: &mut TxScratch) {
        let Some(mut buf) = self.sendbufs.remove(&pcb) else {
            return;
        };
        let mss = usize::from(self.config.mss);
        loop {
            if buf.is_empty() {
                break;
            }
            let window = self.advertised_window(pcb);
            let Some(p) = self.arena.get_mut(pcb) else {
                // Connection died with data still buffered; drop it.
                return;
            };
            if !p.state().can_transfer_data() {
                break;
            }
            let key = p.key();
            let inflight = p.snd.nxt.raw().wrapping_sub(p.snd.una.raw()) as usize;
            let rwnd = usize::from(p.snd.wnd);
            let wnd = rwnd.min(p.cong.cwnd);
            // Either a normal segment under the open window, or — when
            // the peer's window is *closed* and nothing is in flight — a
            // one-byte zero-window probe that forces the peer to re-ACK
            // its current window (the persist mechanism).
            let (take, probe) = if wnd > inflight {
                (buf.len().min(wnd - inflight).min(mss), false)
            } else if rwnd == 0 && inflight == 0 {
                (1, true)
            } else {
                if rwnd <= inflight {
                    // The peer's window, not cwnd, is the bottleneck; an
                    // incoming ACK will reopen it, no probe needed.
                    self.record_rwnd_stall();
                }
                break;
            };
            let seq = p.snd.nxt;
            p.snd.nxt += take as u32;
            p.note_segment_out(take);
            let ack = p.rcv.nxt;
            let repr = TcpRepr {
                src_port: key.local_port,
                dst_port: key.remote_port,
                seq: seq.raw(),
                ack: ack.raw(),
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window,
                ..TcpRepr::default()
            };
            // `peek` is contiguous from the head; `take` never exceeds
            // it because SendBuffer stores one linear run.
            let payload = &buf.peek()[..take];
            let frame = self.emit_tcp(&key, &repr, payload);
            self.track_segment(
                pcb,
                &key,
                seq,
                seq + take as u32,
                repr.flags,
                None,
                payload,
                probe,
            );
            scratch.frames.push(frame);
            buf.consume(take);
            if probe {
                self.record_rwnd_stall();
                self.recorder.event(Event::ZeroWindowProbe);
                break;
            }
        }
        if !buf.is_empty() {
            self.mark_tx_pending(pcb);
        }
        // Keep the (possibly empty) buffer so its allocation is reused.
        self.sendbufs.insert(pcb, buf);
    }

    /// Record an rwnd-bound transmit stall in stats and telemetry.
    fn record_rwnd_stall(&mut self) {
        self.recorder.event(Event::RwndStall);
    }

    /// The receive window to advertise right now for a connection:
    /// the configured ceiling shrunk by delivered-but-unread socket
    /// occupancy (so a slow reader closes the window instead of letting
    /// the peer overrun the receive buffer).
    fn advertised_window(&self, pcb: PcbId) -> u16 {
        let occupancy = self.sockets.get(&pcb).map_or(0, |s| s.available());
        let free = self.config.window.recv_buffer.saturating_sub(occupancy);
        u16::try_from(free.min(usize::from(self.config.window.advertise))).unwrap_or(u16::MAX)
    }

    /// Send a UDP datagram on a connected UDP socket.
    pub fn udp_send(&mut self, pcb: PcbId, payload: &[u8]) -> Result<Vec<u8>, StackError> {
        let key = self
            .arena
            .get(pcb)
            .ok_or(StackError::NoSuchConnection)?
            .key();
        let ip = Ipv4Repr::new(key.local_addr, key.remote_addr, IpProtocol::Udp);
        let udp = UdpRepr {
            src_port: key.local_port,
            dst_port: key.remote_port,
        };
        self.stats.frames_out += 1;
        self.demux.note_send(&key);
        if let Some(p) = self.arena.get_mut(pcb) {
            p.note_segment_out(payload.len());
        }
        let mut buf = self.tx_pool.take();
        build_udp_frame_into(&ip, &udp, payload, &mut buf);
        Ok(buf)
    }

    /// Close our direction of a connection. Returns the FIN frame.
    ///
    /// Fails with [`StackError::InvalidState`] while enqueued data is
    /// still awaiting transmission — the FIN occupies the sequence
    /// number after the last data byte, so callers drain the send
    /// buffer ([`Stack::poll_transmit`] until [`Stack::send_queued`] is
    /// zero) before closing.
    pub fn close(&mut self, pcb: PcbId) -> Result<Vec<u8>, StackError> {
        let (key, seq, ack, window) = {
            if self.send_queued(pcb) > 0 {
                let state = self
                    .arena
                    .get(pcb)
                    .map(|p| p.state())
                    .ok_or(StackError::NoSuchConnection)?;
                return Err(StackError::InvalidState(state));
            }
            let p = self
                .arena
                .get_mut(pcb)
                .ok_or(StackError::NoSuchConnection)?;
            let state = p.state();
            p.on_event(TcpEvent::AppClose)
                .map_err(|_| StackError::InvalidState(state))?;
            let seq = p.snd.nxt;
            p.snd.nxt += 1; // FIN consumes a sequence number
            (p.key(), seq, p.rcv.nxt, p.rcv.wnd)
        };
        let repr = TcpRepr {
            src_port: key.local_port,
            dst_port: key.remote_port,
            seq: seq.raw(),
            ack: ack.raw(),
            flags: TcpFlags::FIN | TcpFlags::ACK,
            window,
            ..TcpRepr::default()
        };
        let frame = self.emit_tcp(&key, &repr, b"");
        self.track_segment(pcb, &key, seq, seq + 1, repr.flags, None, b"", false);
        Ok(frame)
    }

    /// Abort a connection: send RST and reclaim immediately.
    pub fn abort(&mut self, pcb: PcbId) -> Result<Vec<u8>, StackError> {
        let (key, seq) = {
            let p = self.arena.get(pcb).ok_or(StackError::NoSuchConnection)?;
            (p.key(), p.snd.nxt)
        };
        let repr = TcpRepr {
            src_port: key.local_port,
            dst_port: key.remote_port,
            seq: seq.raw(),
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            ..TcpRepr::default()
        };
        let frame = self.emit_tcp(&key, &repr, b"");
        self.reclaim(pcb, &key, CloseCause::LocalAbort);
        Ok(frame)
    }

    fn reclaim(&mut self, pcb: PcbId, key: &ConnectionKey, cause: CloseCause) {
        self.reclaim_inner(pcb, key, false, cause);
    }

    fn reclaim_inner(
        &mut self,
        pcb: PcbId,
        key: &ConnectionKey,
        keep_socket: bool,
        cause: CloseCause,
    ) {
        self.drop_retx(pcb);
        self.sendbufs.remove(&pcb);
        self.tx_pending_set.remove(&pcb);
        if let Some(state) = self.delayed.remove(&pcb) {
            if let Some(timer) = state.timer {
                self.timers.cancel(timer);
            }
        }
        self.demux.remove(key);
        self.demux_gen += 1;
        self.recorder.event(Event::ConnClose { cause });
        self.arena.remove(pcb);
        if !keep_socket {
            self.sockets.remove(&pcb);
        }
        // A connection dying before accept releases its backlog slot.
        if let Some(idx) = self.listener_of.remove(&pcb) {
            let listener = &mut self.listeners[idx];
            if let Some(pos) = listener.accept_queue.iter().position(|&q| q == pcb) {
                listener.accept_queue.remove(pos);
            } else {
                listener.embryonic -= 1;
            }
        }
    }

    /// Detach and reap the socket of a connection the stack has aborted
    /// (see [`TimeAdvance::aborted`]); the application reads the error
    /// and any residual data from the returned buffer. Returns `None`
    /// while the connection is still live (its socket stays attached) or
    /// if the handle is unknown.
    pub fn release_socket(&mut self, pcb: PcbId) -> Option<SocketBuffer> {
        if self.arena.get(pcb).is_some() {
            return None;
        }
        self.sockets.remove(&pcb)
    }

    /// Cancel a connection's retransmission timer and return its queued
    /// payload buffers to the pool.
    fn drop_retx(&mut self, pcb: PcbId) {
        if let Some(queue) = self.retx.remove(&pcb) {
            if let Some(timer) = queue.timer {
                self.timers.cancel(timer);
            }
            for seg in queue.segments {
                if seg.payload.capacity() > 0 {
                    self.tx_pool.recycle(seg.payload);
                }
            }
        }
    }

    /// Put a just-transmitted segment on the retransmission queue and
    /// make sure the RTO timer is running. Segments that occupy no
    /// sequence space (pure ACKs, RSTs, window probes) are not tracked —
    /// nothing acknowledges them.
    #[allow(clippy::too_many_arguments)]
    fn track_segment(
        &mut self,
        pcb: PcbId,
        key: &ConnectionKey,
        seq: SeqNum,
        end: SeqNum,
        flags: TcpFlags,
        mss: Option<u16>,
        payload: &[u8],
        probe: bool,
    ) {
        if end == seq {
            return;
        }
        let buf = if payload.is_empty() {
            Vec::new()
        } else {
            let mut buf = self.tx_pool.take();
            buf.clear();
            buf.extend_from_slice(payload);
            buf
        };
        let queue = self.retx.entry(pcb).or_default();
        queue.segments.push_back(InflightSegment {
            seq,
            end,
            flags,
            mss,
            payload: buf,
            sent_at: self.now_ticks,
            retransmitted: false,
            probe,
        });
        if queue.timer.is_none() {
            self.arm_retx_timer(pcb, key);
        }
    }

    /// The connection's current RTO in ticks (estimator RTO backed off by
    /// the consecutive-expiry count, floored at one tick).
    fn rto_ticks(&self, pcb: PcbId) -> u64 {
        let rto_us = self
            .arena
            .get(pcb)
            .map(|p| p.current_rto())
            .unwrap_or(RttEstimator::DEFAULT_MIN_RTO);
        (rto_us / US_PER_TICK).max(1)
    }

    /// (Re)arm the retransmission timer for a connection, replacing any
    /// previously armed one.
    fn arm_retx_timer(&mut self, pcb: PcbId, key: &ConnectionKey) {
        let after = self.rto_ticks(pcb);
        if let Some(queue) = self.retx.get_mut(&pcb) {
            if let Some(old) = queue.timer.take() {
                self.timers.cancel(old);
            }
            queue.timer = Some(
                self.timers
                    .schedule(after, TimerEvent::Retransmit(pcb, *key)),
            );
        }
    }

    /// A cumulative ACK advanced SND.UNA to `ack`: retire every fully
    /// covered segment, sample the RTT from clean (never-retransmitted)
    /// ones per Karn's rule, reset the backoff, and re-arm or cancel the
    /// RTO timer.
    fn on_ack(&mut self, pcb: PcbId, key: &ConnectionKey, ack: SeqNum) {
        let now = self.now_ticks;
        let Some(queue) = self.retx.get_mut(&pcb) else {
            return;
        };
        let mut retired = false;
        while let Some(front) = queue.segments.front() {
            if !front.end.le(ack) {
                break;
            }
            let seg = queue.segments.pop_front().expect("front exists");
            retired = true;
            if let Some(p) = self.arena.get_mut(pcb) {
                let elapsed = now.saturating_sub(seg.sent_at) * US_PER_TICK;
                if p.rtt.sample_acked(elapsed, seg.retransmitted) {
                    self.stats.rtt_samples += 1;
                }
            }
            if seg.payload.capacity() > 0 {
                self.tx_pool.recycle(seg.payload);
            }
        }
        if !retired {
            return;
        }
        // New data was acknowledged: the peer is alive, backoff resets.
        if let Some(p) = self.arena.get_mut(pcb) {
            p.rto_attempts = 0;
        }
        if self
            .retx
            .get(&pcb)
            .is_some_and(|queue| queue.segments.is_empty())
        {
            self.drop_retx(pcb);
        } else {
            self.arm_retx_timer(pcb, key);
        }
    }

    /// The RTO fired for a connection: retransmit the *oldest* unacked
    /// segment only (the cumulative ACK it provokes retires everything
    /// it covers — re-emitting the whole queue go-back-N style just
    /// burns the path's remaining capacity), marking it ambiguous for
    /// Karn's rule, shrinking cwnd to one MSS, and doubling the backoff.
    /// Past the retry budget the connection aborts — unless the head is
    /// a zero-window probe, whose re-emission *is* the persist timer and
    /// never exhausts the budget.
    fn on_retx_timeout(&mut self, pcb: PcbId, key: &ConnectionKey, advance: &mut TimeAdvance) {
        // Take the queue out so frames can be rebuilt through
        // `emit_tcp` while holding its head.
        let Some(mut queue) = self.retx.remove(&pcb) else {
            return; // stale fire: the connection died this same batch
        };
        queue.timer = None;
        if queue.segments.is_empty() {
            return;
        }
        let head_is_probe = queue.segments.front().is_some_and(|s| s.probe);
        let Some(p) = self.arena.get_mut(pcb) else {
            // Connection already gone; return the buffers and move on.
            self.retx.insert(pcb, queue);
            self.drop_retx(pcb);
            return;
        };
        if !head_is_probe && p.rto_attempts >= self.config.max_retries {
            // Retry budget spent: abort. No RST — the path is presumed
            // dead — but the socket learns why it died and keeps any
            // bytes that were delivered before the silence.
            let _ = p.on_event(TcpEvent::Timeout);
            self.stats.timeout_aborts += 1;
            self.recorder.event(Event::Timeout);
            if let Some(sock) = self.sockets.get_mut(&pcb) {
                sock.set_error(SocketError::TimedOut);
            }
            self.retx.insert(pcb, queue);
            self.reclaim_inner(pcb, key, true, CloseCause::Timeout);
            advance.aborted.push(pcb);
            return;
        }
        if !head_is_probe {
            p.rto_attempts += 1;
            let inflight = p.snd.nxt.raw().wrapping_sub(p.snd.una.raw()) as usize;
            let mss = usize::from(self.config.mss);
            let snd_nxt = p.snd.nxt;
            let mut st = p.cong;
            self.cc.on_rto(&mut st, inflight, snd_nxt, mss);
            p.cong = st;
        }
        let attempts = p.rto_attempts;
        let ack = p.rcv.nxt;
        let window = p.rcv.wnd;
        {
            let seg = queue.segments.front_mut().expect("checked non-empty");
            seg.retransmitted = true;
            let repr = TcpRepr {
                src_port: key.local_port,
                dst_port: key.remote_port,
                seq: seg.seq.raw(),
                // ACK-bearing segments carry the *current* cumulative
                // ack, not the one from first transmission.
                ack: if seg.flags.contains(TcpFlags::ACK) {
                    ack.raw()
                } else {
                    0
                },
                flags: seg.flags,
                window,
                mss: seg.mss,
                window_scale: None,
            };
            advance
                .retransmits
                .push(self.emit_tcp(key, &repr, &seg.payload));
        }
        if head_is_probe {
            advance.zero_window_probes += 1;
            self.recorder.event(Event::ZeroWindowProbe);
        } else {
            self.stats.retransmits += 1;
            self.recorder.event(Event::Retransmit { attempt: attempts });
        }
        self.retx.insert(pcb, queue);
        self.observe_cwnd(pcb);
        self.arm_retx_timer(pcb, key);
        // The re-armed timer reflects the doubled backoff: record it.
        if !head_is_probe {
            self.recorder.event(Event::RtoBackoff {
                attempts,
                rto_ticks: self.rto_ticks(pcb),
            });
        }
    }

    /// Re-emit the oldest unacked segment right now — fast retransmit on
    /// the third duplicate ACK or a NewReno partial-ACK head re-emission
    /// (`fast`, counted as [`Event::FastRetransmit`]), or an ACK-paced
    /// go-back-N re-emission during RTO recovery (counted as a plain
    /// retransmission). Does not touch the retry budget: the path is
    /// delivering ACKs, it is not dead.
    fn retransmit_head(
        &mut self,
        pcb: PcbId,
        key: &ConnectionKey,
        fast: bool,
        dup_acks: u32,
    ) -> Option<Vec<u8>> {
        let (ack, window) = {
            let p = self.arena.get(pcb)?;
            (p.rcv.nxt, p.rcv.wnd)
        };
        let (repr, payload) = {
            let seg = self.retx.get_mut(&pcb)?.segments.front_mut()?;
            seg.retransmitted = true;
            let repr = TcpRepr {
                src_port: key.local_port,
                dst_port: key.remote_port,
                seq: seg.seq.raw(),
                ack: if seg.flags.contains(TcpFlags::ACK) {
                    ack.raw()
                } else {
                    0
                },
                flags: seg.flags,
                window,
                mss: seg.mss,
                window_scale: None,
            };
            // Escape the queue borrow for `emit_tcp`; the payload goes
            // back on the segment right after.
            (repr, std::mem::take(&mut seg.payload))
        };
        let frame = self.emit_tcp(key, &repr, &payload);
        if let Some(seg) = self.retx.get_mut(&pcb).and_then(|q| q.segments.front_mut()) {
            seg.payload = payload;
        }
        if fast {
            self.recorder.event(Event::FastRetransmit { dup_acks });
        } else {
            self.stats.retransmits += 1;
            self.recorder.event(Event::Retransmit { attempt: 0 });
        }
        self.arm_retx_timer(pcb, key);
        Some(frame)
    }

    /// Record the connection's current cwnd into the [`CwndBytes`]
    /// histogram (the A9 sawtooth evidence).
    ///
    /// [`CwndBytes`]: HistogramId::CwndBytes
    fn observe_cwnd(&mut self, pcb: PcbId) {
        if let Some(p) = self.arena.get(pcb) {
            let cwnd = u32::try_from(p.cong.cwnd).unwrap_or(u32::MAX);
            self.recorder.observe(HistogramId::CwndBytes, cwnd);
        }
    }

    /// A connection's RTT estimator state (for instrumentation and
    /// tests; `None` if the handle is dead).
    pub fn rtt_estimator(&self, pcb: PcbId) -> Option<RttEstimator> {
        self.arena.get(pcb).map(|p| p.rtt)
    }

    fn emit_tcp(&mut self, key: &ConnectionKey, repr: &TcpRepr, payload: &[u8]) -> Vec<u8> {
        let ip = Ipv4Repr::new(key.local_addr, key.remote_addr, IpProtocol::Tcp);
        self.stats.frames_out += 1;
        self.demux.note_send(key);
        let mut buf = self.tx_pool.take();
        build_tcp_frame_into(&ip, repr, payload, &mut buf);
        buf
    }

    /// Return a spent transmit buffer (a frame obtained from `send`,
    /// `receive`'s replies, `connect`'s SYN, …) to the stack's pool so
    /// later emissions reuse its capacity. Optional — un-recycled buffers
    /// simply cost an allocation each — but with recycling, steady-state
    /// transmission allocates nothing (the `tx_pool` counters in
    /// [`Stack::stats`] pin this in tests).
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.tx_pool.recycle(buf);
    }

    /// Process one received frame.
    ///
    /// `Err` means the frame failed wire-level validation (and was
    /// counted); `Ok` carries the classification, any reply frames, and
    /// the demultiplexing cost.
    pub fn receive(&mut self, frame: &[u8]) -> Result<RxResult, WireError> {
        self.stats.frames_in += 1;

        let packet = Ipv4Packet::new_checked(frame).map_err(|e| {
            self.stats.ip_errors += 1;
            e
        })?;
        let ip = Ipv4Repr::parse(&packet).map_err(|e| {
            self.stats.ip_errors += 1;
            e
        })?;
        if ip.dst_addr != self.config.local_addr {
            self.stats.not_for_us += 1;
            return Ok(RxResult {
                outcome: RxOutcome::NotForUs,
                replies: Vec::new(),
                pcbs_examined: 0,
            });
        }
        match ip.protocol {
            IpProtocol::Tcp => self.receive_tcp(&ip, packet.payload()),
            IpProtocol::Udp => {
                let header_len = packet.header_len();
                self.receive_udp(&ip, packet.payload(), frame, header_len)
            }
            IpProtocol::Icmp => self.receive_icmp(&ip, packet.payload()),
            IpProtocol::Unknown(_) => {
                self.stats.bad_protocol += 1;
                Ok(RxResult {
                    outcome: RxOutcome::UnhandledProtocol,
                    replies: Vec::new(),
                    pcbs_examined: 0,
                })
            }
        }
    }

    /// Parse one frame into its batched-receive classification,
    /// performing the same validation (and error counting) as
    /// [`Stack::receive`]'s front half.
    fn classify(&mut self, frame: &[u8]) -> Classified {
        self.stats.frames_in += 1;
        let packet = match Ipv4Packet::new_checked(frame) {
            Ok(p) => p,
            Err(e) => {
                self.stats.ip_errors += 1;
                return Classified::Done(Err(e));
            }
        };
        let ip = match Ipv4Repr::parse(&packet) {
            Ok(ip) => ip,
            Err(e) => {
                self.stats.ip_errors += 1;
                return Classified::Done(Err(e));
            }
        };
        if ip.dst_addr != self.config.local_addr {
            self.stats.not_for_us += 1;
            return Classified::Done(Ok(RxResult {
                outcome: RxOutcome::NotForUs,
                replies: Vec::new(),
                pcbs_examined: 0,
            }));
        }
        match ip.protocol {
            IpProtocol::Tcp => {
                let segment = match TcpSegment::new_checked(packet.payload()) {
                    Ok(s) => s,
                    Err(e) => {
                        self.stats.tcp_errors += 1;
                        return Classified::Done(Err(e));
                    }
                };
                let tcp = match TcpRepr::parse(&segment, ip.src_addr, ip.dst_addr) {
                    Ok(t) => t,
                    Err(e) => {
                        self.stats.tcp_errors += 1;
                        return Classified::Done(Err(e));
                    }
                };
                let payload = subslice_range(frame, segment.payload());
                let key = ConnectionKey::from_incoming_tcp(&ip, &tcp);
                let kind = Self::classify_tcp(&tcp, &frame[payload.0..payload.1]);
                Classified::Tcp {
                    key,
                    kind,
                    tcp,
                    payload,
                }
            }
            IpProtocol::Udp => {
                let header_len = packet.header_len();
                let datagram = match UdpDatagram::new_checked(packet.payload()) {
                    Ok(d) => d,
                    Err(e) => {
                        self.stats.tcp_errors += 1;
                        return Classified::Done(Err(e));
                    }
                };
                let udp = match UdpRepr::parse(&datagram, ip.src_addr, ip.dst_addr) {
                    Ok(u) => u,
                    Err(e) => {
                        self.stats.tcp_errors += 1;
                        return Classified::Done(Err(e));
                    }
                };
                let payload = subslice_range(frame, datagram.payload());
                let key = ConnectionKey::from_incoming_udp(&ip, &udp);
                Classified::Udp {
                    key,
                    payload,
                    header_len,
                }
            }
            // ICMP never consults the demultiplexer; process it here so
            // the apply stage only deals with demux-bearing frames.
            IpProtocol::Icmp => Classified::Done(self.receive_icmp(&ip, packet.payload())),
            IpProtocol::Unknown(_) => {
                self.stats.bad_protocol += 1;
                Classified::Done(Ok(RxResult {
                    outcome: RxOutcome::UnhandledProtocol,
                    replies: Vec::new(),
                    pcbs_examined: 0,
                }))
            }
        }
    }

    /// Process a batch of received frames through one demultiplexer pass.
    ///
    /// Semantically equivalent to calling [`Stack::receive`] on each frame
    /// in order — same per-frame outcomes, replies, and counters — but all
    /// frames are parsed first, then demultiplexed in a *single*
    /// [`Demux::lookup_batch`] call (which hashed structures answer with
    /// one chain walk per bucket), then applied. This is the receive-side
    /// shape of a driver handing the stack a ring's worth of packets per
    /// interrupt.
    ///
    /// If applying a frame changes the connection table (a SYN inserts, an
    /// RST or FIN removes), the remaining batched lookups are stale; those
    /// frames are transparently re-looked-up one at a time, preserving
    /// per-frame results at the cost of extra lookups (counted in
    /// [`BatchRxResult::relookups`], and visible in the demultiplexer's
    /// own `LookupStats`). Steady-state traffic — data and ACKs on
    /// established connections, the paper's workload — never triggers it.
    pub fn receive_batch<F: AsRef<[u8]>>(&mut self, frames: &[F]) -> BatchRxResult {
        let mut classified = std::mem::take(&mut self.rx_scratch.classified);
        classified.clear();
        classified.extend(frames.iter().map(|f| self.classify(f.as_ref())));

        let mut keys = std::mem::take(&mut self.rx_scratch.keys);
        keys.clear();
        // One tight pass over the classified batch: a branch-light
        // filter_map the compiler can keep in registers, so extracting
        // (and, downstream in the demux, hashing) the whole batch's keys
        // pipelines instead of re-deciding per packet inside push calls.
        keys.extend(classified.iter().filter_map(|c| match c {
            Classified::Tcp { key, kind, .. } => Some((*key, *kind)),
            Classified::Udp { key, .. } => Some((*key, PacketKind::Data)),
            Classified::Done(_) => None,
        }));
        let mut lookups = std::mem::take(&mut self.rx_scratch.lookups);
        self.demux.lookup_batch(&keys, &mut lookups);
        self.recorder.batch(keys.len() as u32);
        let gen_at_lookup = self.demux_gen;

        let mut out = BatchRxResult {
            results: Vec::with_capacity(frames.len()),
            batched_lookups: 0,
            relookups: 0,
        };
        let mut next = 0usize;
        for (frame, c) in frames.iter().zip(classified.drain(..)) {
            let frame = frame.as_ref();
            match c {
                Classified::Done(r) => out.results.push(r),
                Classified::Tcp {
                    key,
                    kind,
                    tcp,
                    payload,
                } => {
                    let lookup =
                        self.batch_lookup_for(&key, kind, lookups[next], gen_at_lookup, &mut out);
                    next += 1;
                    let payload = &frame[payload.0..payload.1];
                    out.results
                        .push(Ok(self.apply_tcp(&key, &tcp, payload, lookup)));
                }
                Classified::Udp {
                    key,
                    payload,
                    header_len,
                } => {
                    let lookup = self.batch_lookup_for(
                        &key,
                        PacketKind::Data,
                        lookups[next],
                        gen_at_lookup,
                        &mut out,
                    );
                    next += 1;
                    let payload = &frame[payload.0..payload.1];
                    out.results
                        .push(Ok(self.apply_udp(&key, payload, frame, header_len, lookup)));
                }
            }
        }
        self.rx_scratch.classified = classified;
        self.rx_scratch.keys = keys;
        self.rx_scratch.lookups = lookups;
        out
    }

    /// Use the batched lookup result if the connection table is unchanged
    /// since the batch lookup ran; otherwise redo the lookup against the
    /// current table (the batched answer may name a reclaimed PCB, or
    /// miss a connection an earlier frame in the batch just created).
    fn batch_lookup_for(
        &mut self,
        key: &ConnectionKey,
        kind: PacketKind,
        batched: LookupResult,
        gen_at_lookup: u64,
        out: &mut BatchRxResult,
    ) -> LookupResult {
        if self.demux_gen == gen_at_lookup {
            out.batched_lookups += 1;
            batched
        } else {
            out.relookups += 1;
            self.recorder.event(Event::BatchRelookup);
            self.demux.lookup(key, kind)
        }
    }

    /// Wrap raw ICMP bytes in an IPv4 packet addressed to `dst`.
    fn emit_icmp(&mut self, dst: Ipv4Addr, icmp_bytes: &[u8]) -> Vec<u8> {
        let ip = Ipv4Repr {
            payload_len: icmp_bytes.len(),
            ..Ipv4Repr::new(self.config.local_addr, dst, IpProtocol::Icmp)
        };
        let mut buf = self.tx_pool.take();
        buf.clear();
        buf.resize(ip.total_len(), 0);
        buf[tcpdemux_wire::ipv4::HEADER_LEN..].copy_from_slice(icmp_bytes);
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut packet).expect("sized buffer");
        self.stats.frames_out += 1;
        buf
    }

    fn receive_icmp(&mut self, ip: &Ipv4Repr, message: &[u8]) -> Result<RxResult, WireError> {
        use tcpdemux_wire::IcmpRepr;
        let icmp = IcmpRepr::parse(message).map_err(|e| {
            self.stats.tcp_errors += 1;
            e
        })?;
        self.stats.icmp_in += 1;
        match icmp {
            IcmpRepr::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                // Be pingable: echo the payload straight back.
                let reply = IcmpRepr::EchoReply {
                    ident,
                    seq,
                    payload,
                }
                .emit();
                let frame = self.emit_icmp(ip.src_addr, &reply);
                self.stats.icmp_echo_replies += 1;
                Ok(RxResult {
                    outcome: RxOutcome::EchoReplied,
                    replies: vec![frame],
                    pcbs_examined: 0,
                })
            }
            // Replies to our pings, unreachables, and exotica are counted
            // and surfaced; this harness initiates no pings of its own.
            _ => Ok(RxResult {
                outcome: RxOutcome::IcmpProcessed,
                replies: Vec::new(),
                pcbs_examined: 0,
            }),
        }
    }

    fn receive_udp(
        &mut self,
        ip: &Ipv4Repr,
        datagram: &[u8],
        full_packet: &[u8],
        ip_header_len: usize,
    ) -> Result<RxResult, WireError> {
        let datagram = UdpDatagram::new_checked(datagram).map_err(|e| {
            self.stats.tcp_errors += 1;
            e
        })?;
        let udp = UdpRepr::parse(&datagram, ip.src_addr, ip.dst_addr).map_err(|e| {
            self.stats.tcp_errors += 1;
            e
        })?;
        let key = ConnectionKey::from_incoming_udp(ip, &udp);
        let lookup = self.demux.lookup(&key, PacketKind::Data);
        Ok(self.apply_udp(&key, datagram.payload(), full_packet, ip_header_len, lookup))
    }

    /// The demux-dependent half of UDP receive: everything after the
    /// lookup. `receive` calls it with a fresh per-frame lookup;
    /// `receive_batch` with a result from the batched lookup.
    fn apply_udp(
        &mut self,
        key: &ConnectionKey,
        payload: &[u8],
        full_packet: &[u8],
        ip_header_len: usize,
        lookup: LookupResult,
    ) -> RxResult {
        self.stats.pcbs_examined += u64::from(lookup.examined);
        self.recorder
            .demux_lookup(lookup.examined, lookup.pcb.is_some(), lookup.cache_hit);

        if let Some(id) = lookup.pcb {
            self.stats.demux_hits += 1;
            self.stats.bytes_delivered += payload.len() as u64;
            if let Some(p) = self.arena.get_mut(id) {
                p.note_segment_in(payload.len());
            }
            self.sockets.entry(id).or_default().deliver(payload);
            return RxResult {
                outcome: RxOutcome::Delivered {
                    pcb: id,
                    bytes: payload.len(),
                },
                replies: Vec::new(),
                pcbs_examined: lookup.examined,
            };
        }
        // Unconnected bound sockets: delivery without a PCB entry.
        if self.udp_listeners.iter().any(|l| l.matches(key)) {
            self.stats.listener_hits += 1;
            self.stats.bytes_delivered += payload.len() as u64;
            return RxResult {
                outcome: RxOutcome::DeliveredUnconnected {
                    bytes: payload.len(),
                },
                replies: Vec::new(),
                pcbs_examined: lookup.examined,
            };
        }
        // RFC 1122: a datagram for a dead port provokes ICMP
        // port-unreachable quoting the offender.
        self.stats.resets_sent += 1;
        let unreachable =
            tcpdemux_wire::IcmpRepr::port_unreachable(full_packet, ip_header_len).emit();
        let frame = self.emit_icmp(key.remote_addr, &unreachable);
        RxResult {
            outcome: RxOutcome::UdpUnreachable,
            replies: vec![frame],
            pcbs_examined: lookup.examined,
        }
    }

    fn receive_tcp(&mut self, ip: &Ipv4Repr, segment: &[u8]) -> Result<RxResult, WireError> {
        let segment = TcpSegment::new_checked(segment).map_err(|e| {
            self.stats.tcp_errors += 1;
            e
        })?;
        let tcp = TcpRepr::parse(&segment, ip.src_addr, ip.dst_addr).map_err(|e| {
            self.stats.tcp_errors += 1;
            e
        })?;
        let payload = segment.payload();
        let key = ConnectionKey::from_incoming_tcp(ip, &tcp);

        // The paper's subject: one instrumented lookup per segment.
        let kind = Self::classify_tcp(&tcp, payload);
        let lookup = self.demux.lookup(&key, kind);
        Ok(self.apply_tcp(&key, &tcp, payload, lookup))
    }

    /// Classify an incoming TCP segment for the demultiplexer. Pure ACKs
    /// probe send-side caches first (the paper's footnote 5).
    fn classify_tcp(tcp: &TcpRepr, payload: &[u8]) -> PacketKind {
        if payload.is_empty()
            && tcp.flags.contains(TcpFlags::ACK)
            && !tcp
                .flags
                .intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
        {
            PacketKind::Ack
        } else {
            PacketKind::Data
        }
    }

    /// The demux-dependent half of TCP receive: state-machine processing,
    /// listener matching, and RST generation, given a lookup result.
    fn apply_tcp(
        &mut self,
        key: &ConnectionKey,
        tcp: &TcpRepr,
        payload: &[u8],
        lookup: LookupResult,
    ) -> RxResult {
        self.stats.pcbs_examined += u64::from(lookup.examined);
        self.recorder
            .demux_lookup(lookup.examined, lookup.pcb.is_some(), lookup.cache_hit);

        if let Some(id) = lookup.pcb {
            self.stats.demux_hits += 1;
            let result = self.process_segment(id, key, tcp, payload);
            return RxResult {
                pcbs_examined: lookup.examined,
                ..result
            };
        }

        // No connection: try the listeners for a SYN.
        if tcp.flags.contains(TcpFlags::SYN) && !tcp.flags.contains(TcpFlags::ACK) {
            let matched = self
                .listeners
                .iter()
                .enumerate()
                .filter(|(_, l)| l.key.matches(key))
                .max_by_key(|(_, l)| l.key.specificity())
                .map(|(i, _)| i);
            if let Some(idx) = matched {
                if self.listeners[idx].pending() >= self.listeners[idx].backlog {
                    // Backlog full: drop the SYN silently; the client
                    // will retransmit (BSD semantics).
                    self.stats.syn_drops += 1;
                    return RxResult {
                        outcome: RxOutcome::SynDropped,
                        replies: Vec::new(),
                        pcbs_examined: lookup.examined,
                    };
                }
                self.stats.listener_hits += 1;
                let result = self.accept_syn(key, tcp, idx);
                return RxResult {
                    pcbs_examined: lookup.examined,
                    ..result
                };
            }
        }

        // Nothing matched: RST (unless the offender is itself an RST).
        if tcp.flags.contains(TcpFlags::RST) {
            return RxResult {
                outcome: RxOutcome::ResetSent, // nothing to do; no reply
                replies: Vec::new(),
                pcbs_examined: lookup.examined,
            };
        }
        self.stats.resets_sent += 1;
        let rst = self.make_rst(key, tcp, payload.len());
        RxResult {
            outcome: RxOutcome::ResetSent,
            replies: vec![rst],
            pcbs_examined: lookup.examined,
        }
    }

    fn accept_syn(&mut self, key: &ConnectionKey, tcp: &TcpRepr, listener_idx: usize) -> RxResult {
        let mut pcb = Pcb::new_in_state(*key, TcpState::Listen);
        pcb.on_event(TcpEvent::RecvSyn).expect("LISTEN accepts SYN");
        let iss = self.alloc_iss();
        pcb.init_send(iss, self.config.window.advertise);
        // Our receive window is what *we* advertise; the peer's SYN
        // window seeds SND.WND (what we may send them).
        pcb.init_recv(SeqNum(tcp.seq), self.config.window.advertise);
        pcb.snd.wnd = tcp.window;
        pcb.cong = CongestionState::new(self.config.window.initial_cwnd);
        pcb.mss = tcp.mss.unwrap_or(Pcb::DEFAULT_MSS).min(self.config.mss);
        pcb.note_segment_in(0);
        let id = self.arena.insert(pcb);
        self.demux.insert(*key, id);
        self.demux_gen += 1;
        self.recorder.event(Event::ConnOpen);
        self.sockets.insert(id, SocketBuffer::new());
        self.listeners[listener_idx].embryonic += 1;
        self.listener_of.insert(id, listener_idx);

        let synack = TcpRepr {
            src_port: key.local_port,
            dst_port: key.remote_port,
            seq: iss.raw(),
            ack: tcp.seq.wrapping_add(1),
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: self.config.window.advertise,
            mss: Some(self.config.mss),
            window_scale: None,
        };
        let frame = self.emit_tcp(key, &synack, b"");
        // The SYN-ACK occupies one sequence number; retransmit until the
        // handshake-completing ACK arrives.
        self.track_segment(id, key, iss, iss + 1, synack.flags, synack.mss, b"", false);
        RxResult {
            outcome: RxOutcome::NewConnection { pcb: id },
            replies: vec![frame],
            pcbs_examined: 0,
        }
    }

    fn make_rst(&mut self, key: &ConnectionKey, tcp: &TcpRepr, payload_len: usize) -> Vec<u8> {
        // RFC 793: if the offending segment has ACK, the RST carries its
        // ack as seq; otherwise seq 0 with ACK covering the segment.
        let repr = if tcp.flags.contains(TcpFlags::ACK) {
            TcpRepr {
                src_port: key.local_port,
                dst_port: key.remote_port,
                seq: tcp.ack,
                ack: 0,
                flags: TcpFlags::RST,
                window: 0,
                ..TcpRepr::default()
            }
        } else {
            TcpRepr {
                src_port: key.local_port,
                dst_port: key.remote_port,
                seq: 0,
                ack: tcp.seq.wrapping_add(tcp.segment_len(payload_len)),
                flags: TcpFlags::RST | TcpFlags::ACK,
                window: 0,
                ..TcpRepr::default()
            }
        };
        self.emit_tcp(key, &repr, b"")
    }

    fn make_ack(&mut self, key: &ConnectionKey, pcb: PcbId) -> Vec<u8> {
        // Recompute the advertised window from current socket occupancy
        // (a slow reader shrinks it, draining reads re-grow it) and keep
        // rcv.wnd in sync with what actually went on the wire.
        let window = self.advertised_window(pcb);
        let (seq, ack) = {
            let p = self.arena.get_mut(pcb).expect("acking a live connection");
            p.rcv.wnd = window;
            (p.snd.nxt, p.rcv.nxt)
        };
        let repr = TcpRepr {
            src_port: key.local_port,
            dst_port: key.remote_port,
            seq: seq.raw(),
            ack: ack.raw(),
            flags: TcpFlags::ACK,
            window,
            ..TcpRepr::default()
        };
        self.emit_tcp(key, &repr, b"")
    }

    /// A pure ACK just went on the wire: clear the delayed-ACK debt and
    /// cancel any armed ack timer.
    fn note_ack_emitted(&mut self, pcb: PcbId) {
        if let Some(state) = self.delayed.get_mut(&pcb) {
            state.pending = 0;
            if let Some(timer) = state.timer.take() {
                self.timers.cancel(timer);
            }
        }
    }

    /// Decide whether the in-order data segment just delivered gets an
    /// immediate ACK or a delayed one. Returns the ACK frame to append
    /// to the replies, or `None` when the ACK is deferred to the every-N
    /// threshold / the ack timer.
    fn ack_for_delivery(
        &mut self,
        pcb: PcbId,
        key: &ConnectionKey,
        force: bool,
    ) -> Option<Vec<u8>> {
        let Some(ticks) = self.config.window.delayed_ack_ticks else {
            return Some(self.make_ack(key, pcb));
        };
        let every = self.config.window.ack_every.max(1);
        let ack_now = {
            let state = self.delayed.entry(pcb).or_default();
            state.pending += 1;
            force || state.pending >= every
        };
        if ack_now {
            let frame = self.make_ack(key, pcb);
            self.note_ack_emitted(pcb);
            self.recorder.event(Event::DelayedAck);
            return Some(frame);
        }
        let state = self.delayed.entry(pcb).or_default();
        if state.timer.is_none() {
            state.timer = Some(
                self.timers
                    .schedule(ticks, TimerEvent::DelayedAck(pcb, *key)),
            );
        }
        None
    }

    fn process_segment(
        &mut self,
        id: PcbId,
        key: &ConnectionKey,
        tcp: &TcpRepr,
        payload: &[u8],
    ) -> RxResult {
        let no_reply = |outcome| RxResult {
            outcome,
            replies: Vec::new(),
            pcbs_examined: 0,
        };

        // RST: tear down unconditionally (sequence validation of RSTs is
        // out of scope for the lookup study).
        if tcp.flags.contains(TcpFlags::RST) {
            self.reclaim(id, key, CloseCause::Reset);
            return no_reply(RxOutcome::ResetReceived);
        }

        let state = self
            .arena
            .get(id)
            .expect("demux returned a live id")
            .state();

        // Handshake progress.
        match state {
            TcpState::SynSent => {
                if tcp.flags.contains(TcpFlags::SYN) && tcp.flags.contains(TcpFlags::ACK) {
                    {
                        let advertise = self.config.window.advertise;
                        let p = self.arena.get_mut(id).unwrap();
                        p.on_event(TcpEvent::RecvSynAck).expect("SYN-SENT");
                        p.init_recv(SeqNum(tcp.seq), advertise);
                        p.snd.una = SeqNum(tcp.ack);
                        p.snd.wnd = tcp.window;
                        if let Some(mss) = tcp.mss {
                            p.mss = p.mss.min(mss);
                        }
                        p.note_segment_in(0);
                    }
                    // The SYN-ACK acknowledges our SYN: retire it.
                    self.on_ack(id, key, SeqNum(tcp.ack));
                    let ack = self.make_ack(key, id);
                    return RxResult {
                        outcome: RxOutcome::Established { pcb: id },
                        replies: vec![ack],
                        pcbs_examined: 0,
                    };
                }
                if tcp.flags.contains(TcpFlags::SYN) {
                    // Simultaneous open.
                    {
                        let p = self.arena.get_mut(id).unwrap();
                        p.on_event(TcpEvent::RecvSyn).expect("SYN-SENT");
                        p.init_recv(SeqNum(tcp.seq), tcp.window);
                        p.note_segment_in(0);
                    }
                    let ack = self.make_ack(key, id);
                    return RxResult {
                        outcome: RxOutcome::NewConnection { pcb: id },
                        replies: vec![ack],
                        pcbs_examined: 0,
                    };
                }
                return no_reply(RxOutcome::Duplicate { pcb: id });
            }
            TcpState::SynReceived => {
                if tcp.flags.contains(TcpFlags::ACK)
                    && SeqNum(tcp.ack) == self.arena.get(id).unwrap().snd.nxt
                {
                    {
                        let p = self.arena.get_mut(id).unwrap();
                        p.on_event(TcpEvent::RecvAck).expect("SYN-RECEIVED");
                        p.snd.una = SeqNum(tcp.ack);
                        p.snd.wnd = tcp.window;
                        p.note_segment_in(0);
                    }
                    // The ACK covers our SYN-ACK: retire it.
                    self.on_ack(id, key, SeqNum(tcp.ack));
                    // The handshake completed: from embryonic to the
                    // listener's accept queue.
                    if let Some(&idx) = self.listener_of.get(&id) {
                        self.listeners[idx].embryonic -= 1;
                        self.listeners[idx].accept_queue.push_back(id);
                    }
                    // Fall through: the ACK may carry data too.
                    if payload.is_empty() && !tcp.flags.contains(TcpFlags::FIN) {
                        return no_reply(RxOutcome::Established { pcb: id });
                    }
                } else if tcp.flags.contains(TcpFlags::SYN) {
                    // Retransmitted SYN: re-send the SYN-ACK. The queued
                    // SYN-ACK has now effectively been retransmitted, so
                    // Karn's rule disqualifies it from RTT sampling.
                    if let Some(queue) = self.retx.get_mut(&id) {
                        for seg in queue.segments.iter_mut() {
                            seg.retransmitted = true;
                        }
                    }
                    let p = self.arena.get(id).unwrap();
                    let synack = TcpRepr {
                        src_port: key.local_port,
                        dst_port: key.remote_port,
                        seq: p.snd.iss.raw(),
                        ack: p.rcv.nxt.raw(),
                        flags: TcpFlags::SYN | TcpFlags::ACK,
                        window: p.rcv.wnd,
                        mss: Some(self.config.mss),
                        window_scale: None,
                    };
                    let frame = self.emit_tcp(key, &synack, b"");
                    return RxResult {
                        outcome: RxOutcome::Duplicate { pcb: id },
                        replies: vec![frame],
                        pcbs_examined: 0,
                    };
                }
            }
            _ => {
                // A stray SYN or SYN-ACK on a synchronized connection is
                // the peer retransmitting its half of the handshake — our
                // handshake-completing ACK was lost. Re-acknowledge, or
                // the peer retries into its RTO abort for nothing.
                if tcp.flags.contains(TcpFlags::SYN) {
                    let ack = self.make_ack(key, id);
                    return RxResult {
                        outcome: RxOutcome::Duplicate { pcb: id },
                        replies: vec![ack],
                        pcbs_examined: 0,
                    };
                }
            }
        }

        // In-order check for data/FIN segments.
        let seg_len = payload.len() as u32 + u32::from(tcp.flags.contains(TcpFlags::FIN));
        if seg_len > 0 {
            let rcv_nxt = self.arena.get(id).unwrap().rcv.nxt;
            if SeqNum(tcp.seq) != rcv_nxt {
                self.stats.out_of_order_drops += 1;
                let ack = self.make_ack(key, id);
                return RxResult {
                    outcome: RxOutcome::Duplicate { pcb: id },
                    replies: vec![ack],
                    pcbs_examined: 0,
                };
            }
        }

        // ACK bookkeeping (cumulative), congestion control, and
        // FIN-acknowledgement transitions.
        let mut closed_now = false;
        let mut cc_frames: Vec<Vec<u8>> = Vec::new();
        if tcp.flags.contains(TcpFlags::ACK) {
            let mss = usize::from(self.config.mss);
            let ack = SeqNum(tcp.ack);
            let (advanced, acked_bytes, is_dup, inflight, snd_nxt) = {
                let p = self.arena.get_mut(id).unwrap();
                let advanced = p.snd.una.lt(ack) && ack.le(p.snd.nxt);
                let acked_bytes = if advanced {
                    ack.raw().wrapping_sub(p.snd.una.raw()) as usize
                } else {
                    0
                };
                // RFC 5681 duplicate ACK: no data, no SYN/FIN, no window
                // update, ack == SND.UNA, with data outstanding.
                let is_dup = !advanced
                    && ack == p.snd.una
                    && payload.is_empty()
                    && !tcp.flags.contains(TcpFlags::SYN)
                    && !tcp.flags.contains(TcpFlags::FIN)
                    && p.snd.wnd == tcp.window
                    && p.snd.una.lt(p.snd.nxt);
                if advanced {
                    p.snd.una = ack;
                }
                p.snd.wnd = tcp.window;
                let inflight = p.snd.nxt.raw().wrapping_sub(p.snd.una.raw()) as usize;
                (advanced, acked_bytes, is_dup, inflight, p.snd.nxt)
            };
            if advanced {
                // Retire covered segments and service the RTO timer.
                self.on_ack(id, key, ack);
                let (action, in_fast_recovery) = {
                    let p = self.arena.get_mut(id).unwrap();
                    let mut st = p.cong;
                    let action = self.cc.on_ack(&mut st, acked_bytes, ack, mss);
                    p.cong = st;
                    (action, st.in_recovery)
                };
                self.observe_cwnd(id);
                if matches!(action, CcAction::RetransmitHead) {
                    // NewReno partial ACK (fast recovery) or ACK-paced
                    // go-back-N (RTO recovery): re-emit the new head.
                    if let Some(frame) = self.retransmit_head(id, key, in_fast_recovery, 0) {
                        cc_frames.push(frame);
                    }
                }
            } else if is_dup {
                let (action, dup_acks) = {
                    let p = self.arena.get_mut(id).unwrap();
                    let mut st = p.cong;
                    let action = self.cc.on_dup_ack(&mut st, inflight, snd_nxt, mss);
                    let dup_acks = st.dup_acks;
                    p.cong = st;
                    (action, dup_acks)
                };
                self.observe_cwnd(id);
                if matches!(action, CcAction::RetransmitHead) {
                    if let Some(frame) = self.retransmit_head(id, key, true, dup_acks) {
                        cc_frames.push(frame);
                    }
                }
            }
            // An ACK may have reopened the transmit window: requeue any
            // buffered data for the next poll.
            if self.sendbufs.get(&id).is_some_and(|b| !b.is_empty()) {
                self.mark_tx_pending(id);
            }
            let p = self.arena.get_mut(id).unwrap();
            // Does this acknowledge our FIN?
            let fin_acked = ack == p.snd.nxt;
            match p.state() {
                TcpState::FinWait1 if fin_acked => {
                    p.on_event(TcpEvent::RecvAck).expect("FIN-WAIT-1");
                }
                TcpState::Closing if fin_acked => {
                    p.on_event(TcpEvent::RecvAck).expect("CLOSING");
                    closed_now = true; // TIME-WAIT; we reclaim below via timer-less model
                }
                TcpState::LastAck if fin_acked => {
                    p.on_event(TcpEvent::RecvAck).expect("LAST-ACK");
                    closed_now = true;
                }
                _ => {}
            }
        }
        if closed_now {
            match self.arena.get(id).unwrap().state() {
                TcpState::Closed => {
                    self.reclaim(id, key, CloseCause::Graceful);
                    return no_reply(RxOutcome::Closed);
                }
                TcpState::TimeWait => {
                    return if self.enter_time_wait(id, key) {
                        no_reply(RxOutcome::Closed)
                    } else {
                        no_reply(RxOutcome::TimeWait { pcb: id })
                    };
                }
                _ => {}
            }
        }

        // Payload delivery, bounded by the receive buffer: a segment
        // that does not fit is dropped un-ACKed (the shrunken — possibly
        // zero — window in our ACK tells the peer to back off; the data
        // is retransmitted once the reader drains the socket).
        let mut delivered = 0usize;
        let mut overrun = false;
        if !payload.is_empty() {
            let room = {
                let occupancy = self.sockets.get(&id).map_or(0, |s| s.available());
                self.config.window.recv_buffer.saturating_sub(occupancy)
            };
            let p = self.arena.get_mut(id).unwrap();
            if p.state().can_transfer_data() {
                if payload.len() <= room {
                    p.rcv.nxt += payload.len() as u32;
                    p.note_segment_in(payload.len());
                    delivered = payload.len();
                    self.stats.bytes_delivered += payload.len() as u64;
                    self.sockets.entry(id).or_default().deliver(payload);
                } else {
                    overrun = true;
                }
            }
        }
        if overrun {
            let ack = self.make_ack(key, id);
            let mut replies = cc_frames;
            replies.push(ack);
            return RxResult {
                outcome: RxOutcome::Duplicate { pcb: id },
                replies,
                pcbs_examined: 0,
            };
        }

        // FIN processing.
        let mut peer_closed = false;
        if tcp.flags.contains(TcpFlags::FIN) {
            let p = self.arena.get_mut(id).unwrap();
            if p.on_event(TcpEvent::RecvFin).is_ok() {
                p.rcv.nxt += 1;
                peer_closed = true;
                if let Some(sock) = self.sockets.get_mut(&id) {
                    sock.mark_fin();
                }
            }
        }

        if delivered > 0 || peer_closed {
            // FIN (and anything alongside it) is acknowledged at once;
            // plain in-order data may owe a delayed ACK instead.
            let ack = if peer_closed {
                let frame = self.make_ack(key, id);
                self.note_ack_emitted(id);
                Some(frame)
            } else {
                self.ack_for_delivery(id, key, false)
            };
            let outcome = if peer_closed {
                if matches!(
                    self.arena.get(id).map(|p| p.state()),
                    Some(TcpState::TimeWait)
                ) {
                    if self.enter_time_wait(id, key) {
                        RxOutcome::Closed
                    } else {
                        RxOutcome::TimeWait { pcb: id }
                    }
                } else {
                    RxOutcome::PeerClosed { pcb: id }
                }
            } else {
                RxOutcome::Delivered {
                    pcb: id,
                    bytes: delivered,
                }
            };
            let mut replies = cc_frames;
            replies.extend(ack);
            return RxResult {
                outcome,
                replies,
                pcbs_examined: 0,
            };
        }

        RxResult {
            outcome: RxOutcome::AckProcessed { pcb: id },
            replies: cc_frames,
            pcbs_examined: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_core::BsdDemux;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pair() -> (Stack, Stack) {
        let server =
            Stack::with_config(StackConfig::new(SERVER).with_demux(|| Box::new(BsdDemux::new())));
        let client =
            Stack::with_config(StackConfig::new(CLIENT).with_demux(|| Box::new(BsdDemux::new())));
        (server, client)
    }

    /// Run the three-way handshake; returns (client_pcb, server_pcb).
    fn handshake(server: &mut Stack, client: &mut Stack, port: u16) -> (PcbId, PcbId) {
        server.listen(port).unwrap();
        let (client_pcb, syn) = client.connect(SERVER, port).unwrap();
        let r1 = server.receive(&syn).unwrap();
        let server_pcb = match r1.outcome {
            RxOutcome::NewConnection { pcb } => pcb,
            other => panic!("expected NewConnection, got {other:?}"),
        };
        let r2 = client.receive(&r1.replies[0]).unwrap();
        assert!(matches!(r2.outcome, RxOutcome::Established { .. }));
        let r3 = server.receive(&r2.replies[0]).unwrap();
        assert!(matches!(r3.outcome, RxOutcome::Established { .. }));
        (client_pcb, server_pcb)
    }

    /// Enqueue `payload` and poll it onto the wire as exactly one frame
    /// — the small-payload idiom most tests want.
    fn send_now(stack: &mut Stack, pcb: PcbId, payload: &[u8]) -> Vec<u8> {
        let accepted = stack.send(pcb, payload).unwrap();
        assert_eq!(accepted, payload.len(), "send buffer accepted all of it");
        let mut scratch = TxScratch::new();
        let n = stack.poll_transmit(&mut scratch);
        assert_eq!(n, 1, "one small payload polls as one frame");
        scratch.frames.pop().unwrap()
    }

    #[test]
    fn front_filter_config_wraps_the_demux_and_zeroes_miss_cost() {
        const OTHER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
        let mut server = Stack::with_config(StackConfig::new(SERVER).with_front_filter());
        let mut client = Stack::with_config(StackConfig::new(CLIENT));
        let (cp, sp) = handshake(&mut server, &mut client, 1521);
        let frame = send_now(&mut client, cp, b"front");
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { pcb, bytes: 5 } if pcb == sp));
        assert!(
            r.pcbs_examined >= 1,
            "hits flow through to the backing tier"
        );

        // A data frame for a four-tuple this server never established:
        // the filter rejects it before any PCB chain is walked, so the
        // per-frame examined count is zero (the unfiltered default
        // would walk a Sequent chain to conclude the same miss).
        let mut shadow_server = Stack::with_config(StackConfig::new(SERVER));
        let mut other_client = Stack::with_config(StackConfig::new(OTHER));
        let (op, _) = handshake(&mut shadow_server, &mut other_client, 1521);
        let stray = send_now(&mut other_client, op, b"stray");
        let r = server.receive(&stray).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetSent));
        assert_eq!(r.pcbs_examined, 0, "miss rejected by the front filter");
    }

    #[test]
    fn three_way_handshake() {
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 1521);
        assert!(client.is_established(cp));
        assert!(server.is_established(sp));
        assert_eq!(server.connection_count(), 1);
        assert_eq!(client.connection_count(), 1);
        assert_eq!(server.stats().stack.listener_hits, 1);
    }

    #[test]
    fn data_transfer_both_directions() {
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 1521);

        // Client -> server.
        let frame = send_now(&mut client, cp, b"BEGIN TRANSACTION");
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { bytes: 17, .. }));
        assert_eq!(
            server.socket_mut(sp).unwrap().read_all(),
            b"BEGIN TRANSACTION"
        );
        // The ACK flows back.
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::AckProcessed { .. }));

        // Server -> client.
        let frame = send_now(&mut server, sp, b"OK");
        let r = client.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { bytes: 2, .. }));
        assert_eq!(client.socket_mut(cp).unwrap().read_all(), b"OK");
        server.receive(&r.replies[0]).unwrap();

        // Sequence spaces stayed consistent.
        assert_eq!(server.stats().stack.bytes_delivered, 17);
        assert_eq!(client.stats().stack.bytes_delivered, 2);
        assert_eq!(server.stats().stack.out_of_order_drops, 0);
    }

    #[test]
    fn retransmitted_data_is_dropped_and_reacked() {
        let (mut server, mut client) = pair();
        let (cp, _sp) = handshake(&mut server, &mut client, 80);
        let frame = send_now(&mut client, cp, b"hello");
        let r1 = server.receive(&frame).unwrap();
        assert!(matches!(r1.outcome, RxOutcome::Delivered { .. }));
        // Deliver the same frame again (a retransmission).
        let r2 = server.receive(&frame).unwrap();
        assert!(matches!(r2.outcome, RxOutcome::Duplicate { .. }));
        assert_eq!(r2.replies.len(), 1, "duplicate is re-acked");
        assert_eq!(server.stats().stack.out_of_order_drops, 1);
        assert_eq!(
            server.stats().stack.bytes_delivered,
            5,
            "no double delivery"
        );
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 80);

        // Client closes.
        let fin = client.close(cp).unwrap();
        assert_eq!(client.state(cp), Some(TcpState::FinWait1));
        let r = server.receive(&fin).unwrap();
        assert!(matches!(r.outcome, RxOutcome::PeerClosed { .. }));
        assert_eq!(server.state(sp), Some(TcpState::CloseWait));
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::AckProcessed { .. }));
        assert_eq!(client.state(cp), Some(TcpState::FinWait2));

        // Server closes.
        let fin2 = server.close(sp).unwrap();
        assert_eq!(server.state(sp), Some(TcpState::LastAck));
        let r = client.receive(&fin2).unwrap();
        // Client reaches TIME-WAIT and (timer-free) reclaims immediately.
        assert!(matches!(r.outcome, RxOutcome::Closed));
        assert_eq!(client.connection_count(), 0);
        let r = server.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Closed));
        assert_eq!(server.connection_count(), 0);
    }

    #[test]
    fn segment_to_unknown_connection_gets_rst() {
        let (mut server, mut client) = pair();
        // No listener, no connection: a data segment out of nowhere.
        let (cp, _syn) = client.connect(SERVER, 9999).unwrap();
        // Pretend established so we can fabricate a data segment.
        let frame = {
            let key = client.arena.get(cp).unwrap().key();
            let repr = TcpRepr {
                src_port: key.local_port,
                dst_port: 9999,
                seq: 1,
                ack: 1,
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: 100,
                ..TcpRepr::default()
            };
            client.emit_tcp(&key, &repr, b"ghost")
        };
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetSent));
        assert_eq!(r.replies.len(), 1);
        assert_eq!(server.stats().stack.resets_sent, 1);

        // The RST comes back and kills the half-open client connection.
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetReceived));
        assert_eq!(client.connection_count(), 0);
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let (mut server, mut client) = pair();
        let (_cp, syn) = client.connect(SERVER, 7).unwrap();
        let r = server.receive(&syn).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetSent));
    }

    #[test]
    fn frames_for_other_hosts_are_ignored() {
        let (mut server, mut client) = pair();
        let (_cp, syn) = client.connect(Ipv4Addr::new(10, 0, 0, 99), 80).unwrap();
        let r = server.receive(&syn).unwrap();
        assert!(matches!(r.outcome, RxOutcome::NotForUs));
        assert_eq!(server.stats().stack.not_for_us, 1);
        assert_eq!(server.stats().stack.resets_sent, 0);
    }

    #[test]
    fn corrupted_frame_rejected_before_demux() {
        let (mut server, mut client) = pair();
        let (_cp, syn) = client.connect(SERVER, 80).unwrap();
        server.listen(80).unwrap();
        let mut bad = syn.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let lookups_before = server.stats().demux.lookups;
        let err = server.receive(&bad).unwrap_err();
        assert_eq!(err, WireError::BadChecksum);
        assert_eq!(server.stats().stack.tcp_errors, 1);
        assert_eq!(
            server.stats().demux.lookups,
            lookups_before,
            "corrupted frames must not reach the demultiplexer"
        );
    }

    #[test]
    fn truncated_frame_counted_as_ip_error() {
        let (mut server, _client) = pair();
        let err = server.receive(&[0x45, 0x00]).unwrap_err();
        assert_eq!(err, WireError::Truncated);
        assert_eq!(server.stats().stack.ip_errors, 1);
    }

    #[test]
    fn unknown_protocol_counted() {
        let (mut server, _client) = pair();
        // Hand-build an IPv4 header claiming protocol 89 (OSPF).
        let ip = Ipv4Repr {
            src_addr: CLIENT,
            dst_addr: SERVER,
            protocol: IpProtocol::Unknown(89),
            payload_len: 0,
            ttl: 64,
        };
        let mut buf = vec![0u8; 20];
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut packet).unwrap();
        let r = server.receive(&buf).unwrap();
        assert!(matches!(r.outcome, RxOutcome::UnhandledProtocol));
        assert_eq!(server.stats().stack.bad_protocol, 1);
    }

    #[test]
    fn connected_udp_demuxes_and_delivers() {
        let (mut server, mut client) = pair();
        let server_sock = server.udp_open(53, CLIENT, 5353).unwrap();
        let client_sock = client.udp_open(5353, SERVER, 53).unwrap();
        let frame = client.udp_send(client_sock, b"query").unwrap();
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { bytes: 5, .. }));
        assert!(r.pcbs_examined >= 1);
        assert_eq!(server.socket_mut(server_sock).unwrap().read_all(), b"query");
    }

    #[test]
    fn unconnected_udp_uses_wildcard_path() {
        let (mut server, mut client) = pair();
        server.udp_bind(514).unwrap();
        let sock = client.udp_open(40_000, SERVER, 514).unwrap();
        let frame = client.udp_send(sock, b"log line").unwrap();
        let r = server.receive(&frame).unwrap();
        assert!(matches!(
            r.outcome,
            RxOutcome::DeliveredUnconnected { bytes: 8 }
        ));
        assert_eq!(server.stats().stack.listener_hits, 1);
    }

    #[test]
    fn udp_to_unbound_port_is_unreachable() {
        let (mut server, mut client) = pair();
        let sock = client.udp_open(40_000, SERVER, 9).unwrap();
        let frame = client.udp_send(sock, b"discard").unwrap();
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::UdpUnreachable));
    }

    #[test]
    fn listen_twice_fails() {
        let (mut server, _client) = pair();
        server.listen(80).unwrap();
        assert_eq!(server.listen(80), Err(StackError::PortInUse(80)));
        server.udp_bind(80).unwrap(); // UDP namespace is separate
        assert_eq!(server.udp_bind(80), Err(StackError::PortInUse(80)));
    }

    #[test]
    fn ephemeral_ports_are_distinct() {
        let (_server, mut client) = pair();
        let (a, _) = client.connect(SERVER, 80).unwrap();
        let (b, _) = client.connect(SERVER, 80).unwrap();
        let ka = client.arena.get(a).unwrap().key();
        let kb = client.arena.get(b).unwrap().key();
        assert_ne!(ka.local_port, kb.local_port);
    }

    #[test]
    fn send_on_unestablished_connection_fails() {
        let (_server, mut client) = pair();
        let (cp, _syn) = client.connect(SERVER, 80).unwrap();
        assert_eq!(client.send(cp, b"x"), Err(StackError::NotEstablished));
    }

    #[test]
    fn abort_sends_rst_and_reclaims() {
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 80);
        let rst = client.abort(cp).unwrap();
        assert_eq!(client.connection_count(), 0);
        let r = server.receive(&rst).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetReceived));
        assert_eq!(server.connection_count(), 0);
        let _ = sp;
    }

    #[test]
    fn retransmitted_syn_gets_synack_again() {
        let (mut server, mut client) = pair();
        server.listen(80).unwrap();
        let (_cp, syn) = client.connect(SERVER, 80).unwrap();
        let r1 = server.receive(&syn).unwrap();
        assert!(matches!(r1.outcome, RxOutcome::NewConnection { .. }));
        // The same SYN again (client timed out): a fresh SYN-ACK.
        let r2 = server.receive(&syn).unwrap();
        assert!(matches!(r2.outcome, RxOutcome::Duplicate { .. }));
        assert_eq!(r2.replies.len(), 1);
        // Both SYN-ACKs carry the same ISS.
        let seg1 = TcpSegment::new_checked(
            Ipv4Packet::new_checked(&r1.replies[0][..])
                .unwrap()
                .payload()
                .to_vec(),
        )
        .unwrap();
        let seg2 = TcpSegment::new_checked(
            Ipv4Packet::new_checked(&r2.replies[0][..])
                .unwrap()
                .payload()
                .to_vec(),
        )
        .unwrap();
        assert_eq!(seg1.seq(), seg2.seq());
    }

    /// Pair with real TIME-WAIT enabled on the client side.
    fn pair_with_time_wait(ticks: u64) -> (Stack, Stack) {
        let server =
            Stack::with_config(StackConfig::new(SERVER).with_demux(|| Box::new(BsdDemux::new())));
        let client = Stack::with_config(
            StackConfig::new(CLIENT)
                .with_time_wait(ticks)
                .with_demux(|| Box::new(BsdDemux::new())),
        );
        (server, client)
    }

    #[test]
    fn time_wait_holds_connection_until_2msl() {
        let (mut server, mut client) = pair_with_time_wait(120_000);
        let (cp, sp) = handshake(&mut server, &mut client, 80);

        // Active close from the client, then the server's FIN.
        let fin = client.close(cp).unwrap();
        let r = server.receive(&fin).unwrap();
        client.receive(&r.replies[0]).unwrap();
        let fin2 = server.close(sp).unwrap();
        let r = client.receive(&fin2).unwrap();
        // With timers on, the client parks in TIME-WAIT instead of
        // reclaiming.
        assert!(matches!(r.outcome, RxOutcome::TimeWait { .. }));
        assert_eq!(client.state(cp), Some(TcpState::TimeWait));
        assert_eq!(client.connection_count(), 1);
        assert_eq!(client.time_wait_count(), 1);
        server.receive(&r.replies[0]).unwrap();

        // A retransmitted FIN during TIME-WAIT is re-acknowledged.
        let r = client.receive(&fin2).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Duplicate { .. }));
        assert_eq!(r.replies.len(), 1);

        // Before 2MSL: still parked. After: reclaimed.
        assert_eq!(client.advance_time(119_999).reclaimed, 0);
        assert_eq!(client.connection_count(), 1);
        assert_eq!(client.advance_time(120_000).reclaimed, 1);
        assert_eq!(client.connection_count(), 0);
        assert_eq!(client.time_wait_count(), 0);
    }

    #[test]
    fn time_wait_timer_is_stale_safe_after_rst() {
        let (mut server, mut client) = pair_with_time_wait(1000);
        let (cp, sp) = handshake(&mut server, &mut client, 80);
        // Drive the client into TIME-WAIT.
        let fin = client.close(cp).unwrap();
        let r = server.receive(&fin).unwrap();
        client.receive(&r.replies[0]).unwrap();
        let fin2 = server.close(sp).unwrap();
        let r = client.receive(&fin2).unwrap();
        assert!(matches!(r.outcome, RxOutcome::TimeWait { .. }));
        // An RST lands during TIME-WAIT and reclaims immediately.
        let rst_frame = {
            // Rebuild a valid RST from the server's (now closed) side by
            // aborting a reconstructed connection is overkill: craft one.
            let key = ConnectionKey::new(
                CLIENT,
                {
                    // client's ephemeral port: recover from its PCB
                    client.arena.get(cp).unwrap().key().local_port
                },
                SERVER,
                80,
            )
            .reversed();
            let repr = TcpRepr {
                src_port: key.local_port,
                dst_port: key.remote_port,
                seq: 0,
                ack: 0,
                flags: TcpFlags::RST,
                window: 0,
                ..TcpRepr::default()
            };
            server.emit_tcp(&key, &repr, b"")
        };
        let r = client.receive(&rst_frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetReceived));
        assert_eq!(client.connection_count(), 0);
        // The parked timer fires later against a recycled-or-dead slot;
        // the generation check must make it a no-op, not a panic or a
        // wrong-connection reclaim.
        assert_eq!(client.advance_time(1000).reclaimed, 0);
    }

    #[test]
    fn timer_free_mode_reclaims_immediately() {
        // The default config (time_wait_ticks: None) must behave exactly
        // as before: reaching TIME-WAIT reclaims at once.
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 80);
        let fin = client.close(cp).unwrap();
        let r = server.receive(&fin).unwrap();
        client.receive(&r.replies[0]).unwrap();
        let fin2 = server.close(sp).unwrap();
        let r = client.receive(&fin2).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Closed));
        assert_eq!(client.connection_count(), 0);
    }

    #[test]
    fn ethernet_receive_path() {
        let (mut server, mut client) = pair();
        server.listen(80).unwrap();
        let (_cp, syn) = client.connect(SERVER, 80).unwrap();

        // Properly addressed frame: full handshake step works.
        let framed = client.encapsulate(&syn, SERVER);
        assert!(framed.len() >= 60, "minimum frame size honored");
        let r = server.receive_ethernet(&framed).unwrap();
        assert!(matches!(r.outcome, RxOutcome::NewConnection { .. }));

        // Frame for someone else's MAC: ignored at the link layer.
        let mut wrong = framed.clone();
        wrong[5] ^= 0x01; // dst MAC last byte
        let r = server.receive_ethernet(&wrong).unwrap();
        assert!(matches!(r.outcome, RxOutcome::NotForUs));

        // Broadcast is accepted.
        let mut bcast = framed.clone();
        bcast[..6].copy_from_slice(&[0xff; 6]);
        let r = server.receive_ethernet(&bcast).unwrap();
        // (Duplicate SYN: the connection exists now.)
        assert!(matches!(r.outcome, RxOutcome::Duplicate { .. }));

        // IPv4 bytes relabeled as ARP fail ARP validation.
        let mut arp = framed.clone();
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(server.receive_ethernet(&arp).is_err());

        // A genuinely unknown EtherType is counted and dropped.
        let mut ipx = framed.clone();
        ipx[12] = 0x81;
        ipx[13] = 0x37;
        let r = server.receive_ethernet(&ipx).unwrap();
        assert!(matches!(r.outcome, RxOutcome::UnhandledProtocol));
        assert_eq!(server.stats().stack.bad_protocol, 1);

        // Runt frame.
        assert!(server.receive_ethernet(&framed[..10]).is_err());
    }

    #[test]
    fn ethernet_padding_does_not_confuse_ipv4() {
        // A 40-byte pure ACK gets padded to 46 payload bytes; the IPv4
        // total-length field must bound parsing.
        let (mut server, mut client) = pair();
        server.listen(80).unwrap();
        let (_cp, syn) = client.connect(SERVER, 80).unwrap();
        let r1 = server.receive(&syn).unwrap();
        let r2 = client.receive(&r1.replies[0]).unwrap();
        // The handshake-completing ACK is a 40-byte pure ACK frame.
        let frame = &r2.replies[0];
        assert_eq!(frame.len(), 40);
        let framed = client.encapsulate(frame, SERVER);
        let r = server.receive_ethernet(&framed).unwrap();
        assert!(
            matches!(r.outcome, RxOutcome::Established { .. }),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn stack_answers_pings() {
        use tcpdemux_wire::IcmpRepr;
        let (mut server, mut client) = pair();
        // Client pings the server.
        let ping = IcmpRepr::EchoRequest {
            ident: 0xbeef,
            seq: 1,
            payload: b"are you there?",
        }
        .emit();
        let frame = client.emit_icmp(SERVER, &ping);
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::EchoReplied));
        assert_eq!(server.stats().stack.icmp_in, 1);
        assert_eq!(server.stats().stack.icmp_echo_replies, 1);

        // The reply makes it back with the payload intact.
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::IcmpProcessed));
        let reply_packet = Ipv4Packet::new_checked(&frame[..]).unwrap();
        let _ = reply_packet;
    }

    #[test]
    fn ping_payload_is_echoed_exactly() {
        use tcpdemux_wire::IcmpRepr;
        let (mut server, mut client) = pair();
        let payload = b"0123456789abcdef";
        let ping = IcmpRepr::EchoRequest {
            ident: 7,
            seq: 42,
            payload,
        }
        .emit();
        let frame = client.emit_icmp(SERVER, &ping);
        let r = server.receive(&frame).unwrap();
        let reply = Ipv4Packet::new_checked(&r.replies[0][..]).unwrap();
        match IcmpRepr::parse(reply.payload()).unwrap() {
            IcmpRepr::EchoReply {
                ident,
                seq,
                payload: echoed,
            } => {
                assert_eq!(ident, 7);
                assert_eq!(seq, 42);
                assert_eq!(echoed, payload);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn udp_unreachable_sends_icmp_quote() {
        use tcpdemux_wire::IcmpRepr;
        let (mut server, mut client) = pair();
        let sock = client.udp_open(40_000, SERVER, 9).unwrap();
        let datagram = client.udp_send(sock, b"discard-me").unwrap();
        let r = server.receive(&datagram).unwrap();
        assert!(matches!(r.outcome, RxOutcome::UdpUnreachable));
        assert_eq!(r.replies.len(), 1, "port-unreachable must be emitted");

        // The ICMP message quotes the offending packet's header + 8 bytes.
        let icmp_packet = Ipv4Packet::new_checked(&r.replies[0][..]).unwrap();
        assert_eq!(icmp_packet.protocol(), IpProtocol::Icmp);
        match IcmpRepr::parse(icmp_packet.payload()).unwrap() {
            IcmpRepr::DestinationUnreachable { code, original } => {
                assert_eq!(code, tcpdemux_wire::icmp::CODE_PORT_UNREACHABLE);
                assert_eq!(original.len(), 28);
                assert_eq!(original[..20], datagram[..20], "quotes the IP header");
            }
            other => panic!("{other:?}"),
        }
        // The client recognizes the unreachable as ICMP traffic.
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::IcmpProcessed));
    }

    #[test]
    fn corrupt_icmp_rejected() {
        use tcpdemux_wire::IcmpRepr;
        let (mut server, mut client) = pair();
        let ping = IcmpRepr::EchoRequest {
            ident: 1,
            seq: 1,
            payload: b"x",
        }
        .emit();
        let mut frame = client.emit_icmp(SERVER, &ping);
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert_eq!(server.receive(&frame).unwrap_err(), WireError::BadChecksum);
        assert_eq!(server.stats().stack.icmp_in, 0);
    }

    #[test]
    fn arp_request_gets_answered_and_learned() {
        use tcpdemux_wire::{ArpRepr, EtherType, EthernetFrame, EthernetRepr};
        let (mut server, client) = pair();

        // The client broadcasts who-has for the server's address.
        let request = ArpRepr::request(client.mac(), CLIENT, SERVER);
        let bytes = request.emit();
        let mut framed = vec![0u8; 14 + bytes.len().max(46)];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut framed[..]);
            EthernetRepr {
                src_addr: client.mac(),
                dst_addr: tcpdemux_wire::EthernetAddress::BROADCAST,
                ethertype: EtherType::Arp,
            }
            .emit(&mut eth)
            .unwrap();
            eth.payload_mut()[..bytes.len()].copy_from_slice(&bytes);
        }

        let r = server.receive_ethernet(&framed).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ArpReplied));
        assert_eq!(r.replies.len(), 1);

        // The reply is a valid is-at for the server, unicast to the client.
        let reply_frame = EthernetFrame::new_checked(&r.replies[0][..]).unwrap();
        assert_eq!(reply_frame.ethertype(), EtherType::Arp);
        assert_eq!(reply_frame.dst_addr(), client.mac());
        let reply = ArpRepr::parse(&reply_frame.payload()[..28]).unwrap();
        assert_eq!(reply.src_ip, SERVER);
        assert_eq!(reply.src_mac, server.mac());
        assert_eq!(reply.dst_ip, CLIENT);

        // The server learned the requester's mapping as a side effect.
        assert_eq!(server.resolve(CLIENT), client.mac());
    }

    #[test]
    fn arp_for_someone_else_learns_but_does_not_reply() {
        use tcpdemux_wire::{ArpRepr, EtherType, EthernetFrame, EthernetRepr};
        let (mut server, client) = pair();
        let other = Ipv4Addr::new(10, 0, 0, 250);
        let request = ArpRepr::request(client.mac(), CLIENT, other);
        let bytes = request.emit();
        let mut framed = vec![0u8; 14 + 46];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut framed[..]);
            EthernetRepr {
                src_addr: client.mac(),
                dst_addr: tcpdemux_wire::EthernetAddress::BROADCAST,
                ethertype: EtherType::Arp,
            }
            .emit(&mut eth)
            .unwrap();
            eth.payload_mut()[..bytes.len()].copy_from_slice(&bytes);
        }
        let r = server.receive_ethernet(&framed).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ArpProcessed));
        assert!(r.replies.is_empty());
        assert_eq!(server.resolve(CLIENT), client.mac(), "still learned");
    }

    #[test]
    fn neighbor_entries_expire_with_time() {
        use tcpdemux_wire::{ArpRepr, EtherType, EthernetFrame, EthernetRepr};
        let (mut server, client) = pair();
        let request = ArpRepr::request(client.mac(), CLIENT, SERVER);
        let bytes = request.emit();
        let mut framed = vec![0u8; 14 + 46];
        {
            let mut eth = EthernetFrame::new_unchecked(&mut framed[..]);
            EthernetRepr {
                src_addr: client.mac(),
                dst_addr: tcpdemux_wire::EthernetAddress::BROADCAST,
                ethertype: EtherType::Arp,
            }
            .emit(&mut eth)
            .unwrap();
            eth.payload_mut()[..bytes.len()].copy_from_slice(&bytes);
        }
        server.receive_ethernet(&framed).unwrap();
        assert_eq!(server.resolve(CLIENT), client.mac());
        // Past the one-minute lifetime the mapping falls back to the
        // derived MAC (same value here — check via the cache directly).
        server.advance_time(crate::neighbor::DEFAULT_LIFETIME + 1);
        assert_eq!(
            server.resolve(CLIENT),
            tcpdemux_wire::EthernetAddress::from_ipv4(CLIENT),
            "expired: falls back to derived MAC"
        );
    }

    /// Connect `n` clients through full handshakes; returns the clients.
    fn connect_n(server: &mut Stack, n: u16, port: u16) -> Vec<(Stack, PcbId)> {
        (0..n)
            .map(|i| {
                let addr = Ipv4Addr::new(10, 9, (i >> 8) as u8, (i & 0xff) as u8);
                let mut c = Stack::with_config(
                    StackConfig::new(addr).with_demux(|| Box::new(BsdDemux::new())),
                );
                let (cp, syn) = c.connect(SERVER, port).unwrap();
                let synack = server.receive(&syn).unwrap().replies;
                let ack = c.receive(&synack[0]).unwrap().replies;
                server.receive(&ack[0]).unwrap();
                (c, cp)
            })
            .collect()
    }

    #[test]
    fn accept_queue_dequeues_in_order() {
        let (mut server, _client) = pair();
        server
            .listen(ListenConfig::port(80).with_backlog(16))
            .unwrap();
        let _clients = connect_n(&mut server, 3, 80);
        assert_eq!(server.accept_queue_len(80), 3);
        let first = server.accept(80).unwrap();
        let second = server.accept(80).unwrap();
        let third = server.accept(80).unwrap();
        assert!(server.accept(80).is_none());
        // FIFO: the client addresses ascend with connection order.
        let addr = |id: PcbId, s: &Stack| s.arena.get(id).unwrap().key().remote_addr;
        assert!(addr(first, &server) < addr(second, &server));
        assert!(addr(second, &server) < addr(third, &server));
        assert_eq!(server.accept_queue_len(80), 0);
    }

    #[test]
    fn backlog_full_drops_syn() {
        let (mut server, _client) = pair();
        server
            .listen(ListenConfig::port(80).with_backlog(2))
            .unwrap();
        // Two connections fill the backlog (established, unaccepted).
        let _clients = connect_n(&mut server, 2, 80);
        // A third SYN is dropped silently.
        let addr = Ipv4Addr::new(10, 9, 9, 9);
        let mut extra =
            Stack::with_config(StackConfig::new(addr).with_demux(|| Box::new(BsdDemux::new())));
        let (_cp, syn) = extra.connect(SERVER, 80).unwrap();
        let r = server.receive(&syn).unwrap();
        assert!(matches!(r.outcome, RxOutcome::SynDropped));
        assert!(r.replies.is_empty(), "silent drop, no SYN-ACK, no RST");
        assert_eq!(server.stats().stack.syn_drops, 1);
        assert_eq!(server.connection_count(), 2);

        // Accepting one frees a slot; the retransmitted SYN now succeeds.
        server.accept(80).unwrap();
        let r = server.receive(&syn).unwrap();
        assert!(matches!(r.outcome, RxOutcome::NewConnection { .. }));
    }

    #[test]
    fn embryonic_connections_count_against_backlog() {
        let (mut server, _client) = pair();
        server
            .listen(ListenConfig::port(80).with_backlog(2))
            .unwrap();
        // Two half-open connections (SYN sent, handshake never finished).
        for i in 0..2u8 {
            let addr = Ipv4Addr::new(10, 9, 0, i);
            let mut c =
                Stack::with_config(StackConfig::new(addr).with_demux(|| Box::new(BsdDemux::new())));
            let (_cp, syn) = c.connect(SERVER, 80).unwrap();
            let r = server.receive(&syn).unwrap();
            assert!(matches!(r.outcome, RxOutcome::NewConnection { .. }));
        }
        assert_eq!(server.accept_queue_len(80), 0, "nothing established yet");
        // Third SYN: dropped, the backlog is consumed by embryos.
        let addr = Ipv4Addr::new(10, 9, 0, 99);
        let mut c =
            Stack::with_config(StackConfig::new(addr).with_demux(|| Box::new(BsdDemux::new())));
        let (_cp, syn) = c.connect(SERVER, 80).unwrap();
        let r = server.receive(&syn).unwrap();
        assert!(matches!(r.outcome, RxOutcome::SynDropped));
    }

    #[test]
    fn dying_embryo_releases_backlog_slot() {
        let (mut server, _client) = pair();
        server
            .listen(ListenConfig::port(80).with_backlog(1))
            .unwrap();
        let addr = Ipv4Addr::new(10, 9, 0, 1);
        let mut c =
            Stack::with_config(StackConfig::new(addr).with_demux(|| Box::new(BsdDemux::new())));
        let (cp, syn) = c.connect(SERVER, 80).unwrap();
        server.receive(&syn).unwrap();
        // The client gives up: RST kills the embryo.
        let rst = c.abort(cp).unwrap();
        let r = server.receive(&rst).unwrap();
        assert!(matches!(r.outcome, RxOutcome::ResetReceived));
        // The slot is free again.
        let addr2 = Ipv4Addr::new(10, 9, 0, 2);
        let mut c2 =
            Stack::with_config(StackConfig::new(addr2).with_demux(|| Box::new(BsdDemux::new())));
        let (_cp2, syn2) = c2.connect(SERVER, 80).unwrap();
        let r = server.receive(&syn2).unwrap();
        assert!(matches!(r.outcome, RxOutcome::NewConnection { .. }));
    }

    #[test]
    fn data_before_accept_is_buffered() {
        let (mut server, _client) = pair();
        server
            .listen(ListenConfig::port(80).with_backlog(4))
            .unwrap();
        let mut clients = connect_n(&mut server, 1, 80);
        let (client, cp) = &mut clients[0];
        let frame = send_now(client, *cp, b"early data");
        let r = server.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { .. }));
        // The application accepts afterwards and finds the bytes waiting.
        let sp = server.accept(80).unwrap();
        assert_eq!(server.socket_mut(sp).unwrap().read_all(), b"early data");
    }

    #[test]
    fn zero_backlog_rejected() {
        let (mut server, _client) = pair();
        assert!(server
            .listen(ListenConfig::port(80).with_backlog(0))
            .is_err());
    }

    #[test]
    fn introspection_tables_show_listeners_and_connections() {
        let (mut server, mut client) = pair();
        server
            .listen(ListenConfig::port(1521).with_backlog(8))
            .unwrap();
        server.udp_bind(514).unwrap();
        let (_cp, syn) = client.connect(SERVER, 1521).unwrap();
        server.receive(&syn).unwrap();

        let listeners = server.listener_table();
        assert_eq!(listeners.len(), 2);
        let tcp = listeners
            .iter()
            .find(|l| l.protocol == IpProtocol::Tcp)
            .unwrap();
        assert_eq!((tcp.port, tcp.backlog, tcp.pending), (1521, 8, 1));
        assert!(tcp.to_string().contains("LISTEN (backlog 1/8)"));
        let udp = listeners
            .iter()
            .find(|l| l.protocol == IpProtocol::Udp)
            .unwrap();
        assert_eq!(udp.port, 514);
        assert_eq!(udp.shard, ShardId::default());
        assert!(udp.to_string().contains("udp  sh0"), "{udp}");
        assert!(udp.to_string().contains("*:514"), "{udp}");

        let conns = server.connection_table();
        assert_eq!(conns.len(), 1);
        let row = &conns[0];
        assert_eq!(row.state, TcpState::SynReceived);
        assert_eq!(row.key.remote_addr, CLIENT);
        assert_eq!(row.rx_queued, 0);
        // The SYN-ACK sits unacknowledged on the retransmission queue: one
        // zero-payload in-flight segment.
        assert_eq!((row.tx_queued, row.inflight_segments), (0, 1));
        assert_eq!(row.rto_attempts, 0);
        let line = row.to_string();
        assert!(line.contains("SYN-RECEIVED"), "{line}");
        assert!(line.contains("10.0.0.2:"), "{line}");
    }

    #[test]
    fn demux_cost_is_reported_per_frame() {
        let (mut server, mut client) = pair();
        let (cp, _sp) = handshake(&mut server, &mut client, 80);
        let frame = send_now(&mut client, cp, b"x");
        let r = server.receive(&frame).unwrap();
        assert!(r.pcbs_examined >= 1);
        assert!(server.stats().stack.pcbs_examined >= 1);
        // The SYN's lookup scanned an empty structure (0 examined), so the
        // mean sits below 1 here; it must still be positive.
        assert!(server.stats().stack.mean_pcbs_examined() > 0.0);
    }

    #[test]
    fn config_builders_cover_every_field() {
        let cfg = StackConfig::new(SERVER)
            .with_local_addr(CLIENT)
            .with_window(1024)
            .with_mss(536)
            .with_ephemeral_base(55_555)
            .with_time_wait(7);
        assert_eq!(cfg.local_addr, CLIENT);
        assert_eq!(cfg.window.advertise, 1024);
        assert_eq!(cfg.mss, 536);
        assert_eq!(cfg.ephemeral_base, 55_555);
        assert_eq!(cfg.time_wait_ticks, Some(7));

        // Behavioral: the first active open draws the configured base.
        let mut client = Stack::with_config(
            StackConfig::new(CLIENT)
                .with_ephemeral_base(55_555)
                .with_demux(|| Box::new(BsdDemux::new())),
        );
        let (cp, _syn) = client.connect(SERVER, 80).unwrap();
        assert_eq!(client.arena.get(cp).unwrap().key().local_port, 55_555);
    }

    fn assert_rx_equal(a: &Result<RxResult, WireError>, b: &Result<RxResult, WireError>, i: usize) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.outcome, y.outcome, "frame {i} outcome");
                assert_eq!(x.replies, y.replies, "frame {i} replies");
                assert_eq!(x.pcbs_examined, y.pcbs_examined, "frame {i} examined");
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "frame {i} error"),
            _ => panic!("frame {i}: sequential {a:?} vs batched {b:?}"),
        }
    }

    /// Record a full client session against a throwaway server, returning
    /// every frame the client put on the wire toward the server (plus a
    /// few adversarial extras), so the same byte sequence can be replayed
    /// into fresh servers.
    fn scripted_session() -> Vec<Vec<u8>> {
        let make_server = || {
            // The default demux is exactly the paper's sequent(19).
            let mut s = Stack::with_config(StackConfig::new(SERVER));
            s.listen(1521).unwrap();
            s.udp_bind(514).unwrap();
            s
        };
        let mut server = make_server();
        let mut client =
            Stack::with_config(StackConfig::new(CLIENT).with_demux(|| Box::new(BsdDemux::new())));

        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut push = |server: &mut Stack, client: &mut Stack, frame: Vec<u8>| {
            // Drive the recording server so the client sees its replies.
            if let Ok(r) = server.receive(&frame) {
                for reply in r.replies {
                    let _ = client.receive(&reply);
                }
            }
            frames.push(frame);
        };

        let (cp, syn) = client.connect(SERVER, 1521).unwrap();
        push(&mut server, &mut client, syn);
        // The handshake ACK was generated by `client.receive` inside
        // `push`; regenerate it deterministically by sending empty data…
        // instead, replay what the client would send next: data frames.
        for i in 0..4 {
            let frame = send_now(&mut client, cp, format!("txn {i}").as_bytes());
            push(&mut server, &mut client, frame);
        }
        // A connected-UDP datagram and one for an unbound port.
        let us = client.udp_open(40_000, SERVER, 514).unwrap();
        let udp_ok = client.udp_send(us, b"log line").unwrap();
        push(&mut server, &mut client, udp_ok);
        let us2 = client.udp_open(40_001, SERVER, 9).unwrap();
        let udp_dead = client.udp_send(us2, b"discard").unwrap();
        push(&mut server, &mut client, udp_dead);
        // A frame for another host, a truncated frame, and teardown.
        let (_ghost, foreign) = client.connect(Ipv4Addr::new(10, 0, 0, 99), 80).unwrap();
        push(&mut server, &mut client, foreign);
        push(&mut server, &mut client, vec![0x45, 0x00]);
        let fin = client.close(cp).unwrap();
        push(&mut server, &mut client, fin);
        frames
    }

    #[test]
    fn receive_batch_matches_sequential_receive() {
        // Note the recorded script opens with a SYN whose handshake ACK is
        // never replayed (the recording client consumed the SYN-ACK), so
        // the data frames land on a SYN-RECEIVED connection — which the
        // stack handles (BSD processes data queued behind the accept), and
        // which both paths must classify identically.
        let frames = scripted_session();
        let fresh = || {
            let mut s = Stack::with_config(StackConfig::new(SERVER));
            s.listen(1521).unwrap();
            s.udp_bind(514).unwrap();
            s
        };

        let mut sequential = fresh();
        let seq_results: Vec<_> = frames.iter().map(|f| sequential.receive(f)).collect();

        for batch_size in [1usize, 3, 8, frames.len()] {
            let mut batched = fresh();
            let mut bat_results = Vec::new();
            for chunk in frames.chunks(batch_size) {
                bat_results.extend(batched.receive_batch(chunk).results);
            }
            assert_eq!(bat_results.len(), seq_results.len());
            for (i, (a, b)) in seq_results.iter().zip(&bat_results).enumerate() {
                assert_rx_equal(a, b, i);
            }
            assert_eq!(
                sequential.stats().stack,
                batched.stats().stack,
                "stack counters must agree at batch size {batch_size}"
            );
            assert_eq!(batched.connection_count(), sequential.connection_count());
        }
    }

    #[test]
    fn steady_state_batch_needs_no_relookups() {
        let (mut server, mut client) = pair();
        let (cp, _sp) = handshake(&mut server, &mut client, 80);
        let frames: Vec<_> = (0..16)
            .map(|i| send_now(&mut client, cp, format!("row {i}").as_bytes()))
            .collect();
        let before = server.stats().demux.lookups;
        let batch = server.receive_batch(&frames);
        assert_eq!(batch.relookups, 0, "no table changes mid-batch");
        assert_eq!(batch.batched_lookups, 16);
        assert_eq!(server.stats().demux.lookups, before + 16, "one per frame");
        for r in &batch.results {
            assert!(matches!(
                r.as_ref().unwrap().outcome,
                RxOutcome::Delivered { .. }
            ));
        }
    }

    #[test]
    fn mid_batch_syn_is_visible_to_the_handshake_ack() {
        // SYN and its completing ACK in ONE batch: the batched lookup ran
        // before the SYN inserted the connection, so the ACK's batched
        // answer is a stale miss. The generation counter must force a
        // re-lookup instead of sending an RST at an opening client.
        let (mut server, mut client) = pair();
        server.listen(80).unwrap();
        let (_cp, syn) = client.connect(SERVER, 80).unwrap();
        // Forge the handshake ACK without consuming the server's SYN-ACK:
        // run the handshake against a twin server to capture the ACK.
        let mut twin =
            Stack::with_config(StackConfig::new(SERVER).with_demux(|| Box::new(BsdDemux::new())));
        twin.listen(80).unwrap();
        let r = twin.receive(&syn).unwrap();
        let ack = client.receive(&r.replies[0]).unwrap().replies[0].clone();

        let batch = server.receive_batch(&[syn, ack]);
        assert!(matches!(
            batch.results[0].as_ref().unwrap().outcome,
            RxOutcome::NewConnection { .. }
        ));
        assert!(matches!(
            batch.results[1].as_ref().unwrap().outcome,
            RxOutcome::Established { .. }
        ));
        assert_eq!(batch.relookups, 1, "the ACK re-looked-up after the SYN");
        assert_eq!(batch.batched_lookups, 1);
        assert_eq!(server.stats().stack.resets_sent, 0);
    }

    #[test]
    fn transmit_is_allocation_free_after_warmup() {
        let (mut server, mut client) = pair();
        let (cp, _sp) = handshake(&mut server, &mut client, 1521);

        let exchange = |server: &mut Stack, client: &mut Stack, n: usize| {
            for i in 0..n {
                let frame = send_now(client, cp, format!("item {i}").as_bytes());
                let r = server.receive(&frame).unwrap();
                client.recycle(frame);
                for reply in r.replies {
                    let _ = client.receive(&reply).unwrap();
                    server.recycle(reply);
                }
            }
        };

        exchange(&mut server, &mut client, 4); // warm-up
        let client_base = client.stats().tx_pool.allocations;
        let server_base = server.stats().tx_pool.allocations;
        exchange(&mut server, &mut client, 100);
        assert_eq!(
            client.stats().tx_pool.allocations,
            client_base,
            "client data frames reuse recycled buffers"
        );
        assert_eq!(
            server.stats().tx_pool.allocations,
            server_base,
            "server ACKs reuse recycled buffers"
        );
        assert!(client.stats().tx_pool.reuses >= 100);
        assert!(server.stats().tx_pool.reuses >= 100);
    }

    #[test]
    fn advance_time_rejects_backwards_time_before_mutating() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let (mut server, mut client) = pair_with_time_wait(100);
        let (cp, sp) = handshake(&mut server, &mut client, 80);
        // Park the client in TIME-WAIT with a timer due at tick 100.
        let fin = client.close(cp).unwrap();
        let r = server.receive(&fin).unwrap();
        client.receive(&r.replies[0]).unwrap();
        let fin2 = server.close(sp).unwrap();
        let r = client.receive(&fin2).unwrap();
        assert!(matches!(r.outcome, RxOutcome::TimeWait { .. }));

        client.advance_time(50);
        let err = catch_unwind(AssertUnwindSafe(|| client.advance_time(49))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("time went backwards"), "{msg}");
        // The failed call must not have moved the clock or eaten timers:
        // the TIME-WAIT connection still expires exactly on schedule.
        assert_eq!(client.advance_time(99).reclaimed, 0);
        assert_eq!(client.connection_count(), 1);
        assert_eq!(client.advance_time(100).reclaimed, 1);
        assert_eq!(client.connection_count(), 0);
    }

    #[test]
    fn rto_retransmits_lost_data_until_acked() {
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 80);
        assert_eq!(client.next_timer_deadline(), None, "nothing in flight");

        // The frame is "lost": never delivered. One clean RTT sample
        // (the SYN) exists, so the RTO sits at the 200 ms floor.
        let _lost = send_now(&mut client, cp, b"pay me no mind");
        let due = client.next_timer_deadline().expect("RTO armed");
        assert_eq!(due, 200);

        // Nothing fires early.
        let quiet = client.advance_time(due - 1);
        assert!(quiet.retransmits.is_empty() && quiet.aborted.is_empty());

        let fired = client.advance_time(due);
        assert_eq!(fired.retransmits.len(), 1, "the queued segment re-emits");
        assert_eq!(client.stats().stack.retransmits, 1);

        // The retransmission delivers; the ACK retires the segment.
        let r = server.receive(&fired.retransmits[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { bytes: 14, .. }));
        assert_eq!(server.socket_mut(sp).unwrap().read_all(), b"pay me no mind");
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::AckProcessed { .. }));
        assert_eq!(client.next_timer_deadline(), None, "queue drained");
    }

    #[test]
    fn karn_rule_skips_samples_from_retransmitted_segments() {
        let (mut server, mut client) = pair();
        let (cp, _sp) = handshake(&mut server, &mut client, 80);
        // One clean sample from the SYN→SYN-ACK round trip.
        assert_eq!(client.rtt_estimator(cp).unwrap().samples(), 1);
        assert_eq!(client.stats().stack.rtt_samples, 1);

        // Lose the original, deliver the retransmission, ACK it: the
        // sample count must not move — the ACK is ambiguous.
        let _lost = send_now(&mut client, cp, b"ambiguous");
        let due = client.next_timer_deadline().unwrap();
        let fired = client.advance_time(due);
        let r = server.receive(&fired.retransmits[0]).unwrap();
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::AckProcessed { .. }));
        assert_eq!(client.rtt_estimator(cp).unwrap().samples(), 1);
        assert_eq!(client.stats().stack.rtt_samples, 1);

        // A later clean exchange samples again.
        let frame = send_now(&mut client, cp, b"clean");
        let r = server.receive(&frame).unwrap();
        client.receive(&r.replies[0]).unwrap();
        assert_eq!(client.rtt_estimator(cp).unwrap().samples(), 2);
    }

    #[test]
    fn rto_backoff_doubles_then_exhaustion_aborts_with_socket_error() {
        let (mut server, client) = pair();
        let config = client.config.clone();
        drop(client);
        let mut client = Stack::with_config(
            config
                .with_max_retries(3)
                .with_demux(|| Box::new(BsdDemux::new())),
        );
        let (cp, _sp) = handshake(&mut server, &mut client, 80);

        // Deliver one byte so the socket has residual data, then go
        // silent: the peer never sees anything again.
        let frame = send_now(&mut server, _sp, b"!");
        let r = client.receive(&frame).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Delivered { bytes: 1, .. }));

        let _lost = send_now(&mut client, cp, b"into the void");
        let mut deadlines = Vec::new();
        let aborted = loop {
            let due = client.next_timer_deadline().expect("timer stays armed");
            deadlines.push(due);
            let fired = client.advance_time(due);
            if !fired.aborted.is_empty() {
                assert!(fired.retransmits.is_empty(), "abort sends nothing");
                break fired.aborted;
            }
            assert_eq!(fired.retransmits.len(), 1);
        };

        // max_retries(3) means 3 retransmissions, then the fourth expiry
        // aborts; the intervals double: 200, 400, 800, then 1600 to the
        // aborting expiry.
        assert_eq!(client.stats().stack.retransmits, 3);
        assert_eq!(client.stats().stack.timeout_aborts, 1);
        let gaps: Vec<u64> = std::iter::once(deadlines[0])
            .chain(deadlines.windows(2).map(|w| w[1] - w[0]))
            .collect();
        assert_eq!(gaps, vec![200, 400, 800, 1600]);

        // The connection is gone and the error is surfaced.
        assert_eq!(aborted, vec![cp]);
        assert_eq!(client.connection_count(), 0);
        assert_eq!(client.state(cp), None);
        assert_eq!(
            client.socket(cp).unwrap().error(),
            Some(SocketError::TimedOut)
        );
        assert_eq!(client.send(cp, b"x"), Err(StackError::NoSuchConnection));
        // The application reaps the dead socket, residual data intact.
        let mut sock = client.release_socket(cp).expect("socket released");
        assert_eq!(sock.error(), Some(SocketError::TimedOut));
        assert_eq!(sock.read_all(), b"!");
        assert!(client.socket(cp).is_none());
    }

    #[test]
    fn telemetry_records_lifecycle_and_loss_recovery() {
        use tcpdemux_telemetry::{CounterId, Event};

        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 80);

        // Handshake: each side opened one connection, and every received
        // segment went through exactly one recorded demux lookup.
        let ct = client.stats().telemetry;
        let st = server.stats().telemetry;
        assert_eq!(ct.counter(CounterId::ConnOpened), 1);
        assert_eq!(st.counter(CounterId::ConnOpened), 1);
        assert_eq!(ct.counter(CounterId::Lookups), 1, "SYN-ACK");
        assert_eq!(st.counter(CounterId::Lookups), 2, "SYN + handshake ACK");
        assert_eq!(
            st.counter(CounterId::PcbsExamined),
            server.stats().stack.pcbs_examined,
            "telemetry and legacy counters agree on the paper's cost metric"
        );

        // Loss recovery: a lost segment retransmits once with backoff.
        let _lost = send_now(&mut client, cp, b"gone");
        let due = client.next_timer_deadline().unwrap();
        let fired = client.advance_time(due);
        let r = server.receive(&fired.retransmits[0]).unwrap();
        client.receive(&r.replies[0]).unwrap();
        let ct = client.stats().telemetry;
        assert_eq!(ct.counter(CounterId::Retransmits), 1);
        assert_eq!(ct.counter(CounterId::RtoBackoffs), 1);
        assert!(
            ct.events()
                .iter()
                .any(|e| matches!(e.event, Event::Retransmit { attempt: 1 })),
            "retransmit event traced"
        );
        assert!(ct
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::RtoBackoff { attempts: 1, .. })));

        // Graceful close: both sides record a Graceful ConnClose.
        let fin = client.close(cp).unwrap();
        let r = server.receive(&fin).unwrap();
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(r.replies.is_empty());
        let fin2 = server.close(sp).unwrap();
        let r = client.receive(&fin2).unwrap();
        server.receive(&r.replies[0]).unwrap();
        for stack in [&client, &server] {
            let t = stack.stats().telemetry;
            assert_eq!(t.counter(CounterId::ConnClosed), 1);
            assert_eq!(t.counter(CounterId::ConnAborted), 0);
            assert!(t.events().iter().any(|e| matches!(
                e.event,
                Event::ConnClose {
                    cause: tcpdemux_telemetry::CloseCause::Graceful
                }
            )));
        }

        // The event trace and the counters never drift: replaying the
        // trace's lookup events reproduces the lookup counter.
        let traced_lookups = ct
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::DemuxHit { .. } | Event::DemuxMiss { .. }))
            .count() as u64;
        assert_eq!(ct.events_dropped(), 0);
        assert_eq!(traced_lookups, ct.counter(CounterId::Lookups));
    }

    #[test]
    fn telemetry_records_timeout_abort_cause() {
        use tcpdemux_telemetry::{CloseCause, CounterId, Event};

        let (mut server, client) = pair();
        let config = client.config.clone();
        drop(client);
        let mut client = Stack::with_config(
            config
                .with_max_retries(1)
                .with_demux(|| Box::new(BsdDemux::new())),
        );
        let (cp, _sp) = handshake(&mut server, &mut client, 80);
        let _lost = send_now(&mut client, cp, b"void");
        loop {
            let due = client.next_timer_deadline().expect("timer armed");
            if !client.advance_time(due).aborted.is_empty() {
                break;
            }
        }
        let t = client.stats().telemetry;
        assert_eq!(t.counter(CounterId::TimeoutAborts), 1);
        assert_eq!(t.counter(CounterId::ConnAborted), 1);
        assert!(t.events().iter().any(|e| matches!(
            e.event,
            Event::ConnClose {
                cause: CloseCause::Timeout
            }
        )));
    }

    #[test]
    fn lost_handshake_ack_recovers_via_synack_retransmission() {
        let (mut server, mut client) = pair();
        server.listen(80).unwrap();
        let (cp, syn) = client.connect(SERVER, 80).unwrap();
        let r = server.receive(&syn).unwrap();
        let sp = match r.outcome {
            RxOutcome::NewConnection { pcb } => pcb,
            other => panic!("expected NewConnection, got {other:?}"),
        };
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Established { .. }));
        // The client's handshake ACK is lost; the server's RTO re-sends
        // its SYN-ACK (its first segment, so the initial 1 s RTO).
        let due = server.next_timer_deadline().expect("SYN-ACK in flight");
        assert_eq!(due, 1000);
        let fired = server.advance_time(due);
        assert_eq!(fired.retransmits.len(), 1);
        // The established client re-acknowledges the duplicate SYN-ACK…
        let r = client.receive(&fired.retransmits[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Duplicate { .. }));
        assert_eq!(r.replies.len(), 1);
        // …which completes the server's handshake.
        let r = server.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Established { .. }));
        assert!(server.is_established(sp));
        assert_eq!(server.next_timer_deadline(), None);
        // Karn: the server must not have sampled the ambiguous SYN-ACK.
        assert_eq!(server.rtt_estimator(sp).unwrap().samples(), 0);
        assert!(client.is_established(cp));
    }

    #[test]
    fn lost_fin_is_retransmitted_and_close_completes() {
        let (mut server, mut client) = pair();
        let (cp, sp) = handshake(&mut server, &mut client, 80);
        let _lost_fin = client.close(cp).unwrap();
        let due = client.next_timer_deadline().expect("FIN in flight");
        let fired = client.advance_time(due);
        assert_eq!(fired.retransmits.len(), 1);
        let r = server.receive(&fired.retransmits[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::PeerClosed { .. }));
        let r = client.receive(&r.replies[0]).unwrap();
        assert!(matches!(r.outcome, RxOutcome::AckProcessed { .. }));
        assert_eq!(client.next_timer_deadline(), None, "FIN acknowledged");
        assert_eq!(client.state(cp), Some(TcpState::FinWait2));
        // Finish the teardown in the other direction.
        let fin = server.close(sp).unwrap();
        let r = client.receive(&fin).unwrap();
        assert!(matches!(r.outcome, RxOutcome::Closed));
        server.receive(&r.replies[0]).unwrap();
        assert_eq!(client.connection_count(), 0);
        assert_eq!(server.connection_count(), 0);
    }
}
