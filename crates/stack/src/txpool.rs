//! A free-list of transmit buffers, making steady-state TX allocation-free.
//!
//! Every frame the stack emits ([`Stack::send`](crate::Stack::send), ACKs,
//! SYN-ACKs, RSTs, ICMP replies…) is an owned `Vec<u8>` handed to the
//! caller. Without pooling, each one is a fresh heap allocation — per
//! packet, exactly the cost the paper's environment (a kernel with its own
//! mbuf/STREAMS buffer pools) never pays. [`TxPool`] closes that gap: the
//! caller returns spent buffers via [`Stack::recycle`](crate::Stack::recycle)
//! and subsequent emissions reuse their capacity instead of allocating.
//!
//! The pool tracks how often it had to fall back to a fresh allocation, so
//! tests (and the `batch_rx` benchmark) can pin the steady-state invariant:
//! after warm-up, `allocations` stays flat while `reuses` grows.

/// Counters describing pool behavior since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxPoolStats {
    /// Buffers handed out by allocating fresh (pool was empty).
    pub allocations: u64,
    /// Buffers handed out by reusing a recycled buffer's capacity.
    pub reuses: u64,
    /// Buffers currently parked in the free list.
    pub free: usize,
}

/// A bounded free-list of `Vec<u8>` transmit buffers.
#[derive(Debug)]
pub struct TxPool {
    free: Vec<Vec<u8>>,
    max_free: usize,
    allocations: u64,
    reuses: u64,
}

impl Default for TxPool {
    fn default() -> Self {
        Self::new(Self::DEFAULT_MAX_FREE)
    }
}

impl TxPool {
    /// Default bound on parked buffers — enough for any burst this
    /// workspace's harnesses generate, small enough that a caller who
    /// never recycles wastes nothing.
    pub const DEFAULT_MAX_FREE: usize = 64;

    /// Create a pool that parks at most `max_free` recycled buffers.
    pub fn new(max_free: usize) -> Self {
        Self {
            free: Vec::new(),
            max_free,
            allocations: 0,
            reuses: 0,
        }
    }

    /// Hand out a buffer: a recycled one if available, else a fresh
    /// allocation. The returned buffer's contents are unspecified; every
    /// emit path overwrites it in full.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.reuses += 1;
                buf
            }
            None => {
                self.allocations += 1;
                Vec::new()
            }
        }
    }

    /// Return a spent buffer's capacity to the pool. Buffers beyond the
    /// free-list bound are dropped (deallocated) instead of parked.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }

    /// Snapshot the pool's counters.
    pub fn stats(&self) -> TxPoolStats {
        TxPoolStats {
            allocations: self.allocations,
            reuses: self.reuses,
            free: self.free.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_allocates_when_empty_and_reuses_after_recycle() {
        let mut pool = TxPool::default();
        let a = pool.take();
        assert_eq!(pool.stats().allocations, 1);
        assert_eq!(pool.stats().reuses, 0);
        pool.recycle(a);
        assert_eq!(pool.stats().free, 1);
        let _b = pool.take();
        assert_eq!(pool.stats().allocations, 1, "no second allocation");
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn capacity_survives_the_round_trip() {
        let mut pool = TxPool::default();
        let mut a = pool.take();
        a.resize(1500, 0xAB);
        let cap = a.capacity();
        pool.recycle(a);
        let b = pool.take();
        assert!(b.capacity() >= cap, "recycled capacity is retained");
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = TxPool::new(2);
        for _ in 0..5 {
            pool.recycle(Vec::with_capacity(64));
        }
        assert_eq!(pool.stats().free, 2);
    }
}
