//! A miniature TCP/IPv4 receive path built around the demultiplexers.
//!
//! The paper's algorithms live inside a kernel's packet-receive path; this
//! crate provides that path, end to end, over real packet bytes:
//!
//! ```text
//! raw frame → IPv4 parse+checksum → TCP parse+checksum → ConnectionKey
//!           → Demux::lookup (the paper's subject) → PCB state machine
//!           → socket delivery + reply segments (ACK/SYN-ACK/RST)
//! ```
//!
//! Two [`Stack`]s can be wired back to back ([`Stack::connect`] +
//! shuttling the returned frames) to run full handshakes, data transfer,
//! and teardown purely in memory. A [`FaultInjector`] can corrupt or drop
//! frames in between, demonstrating that damaged packets die at the
//! checksum long before they reach the demultiplexer.
//!
//! The transfer engine keeps in-order delivery only (out-of-order
//! segments are dropped and re-ACKed) because the object of study is the
//! lookup path — but the *send* path is a real windowed transmit engine:
//! [`Stack::send`] enqueues into a per-connection send buffer and
//! [`Stack::poll_transmit`] emits whatever `min(peer rwnd, cwnd)`
//! permits, with slow start, AIMD congestion avoidance, fast retransmit
//! / fast recovery on three duplicate ACKs (Reno or NewReno via the
//! pluggable [`CongestionControl`] trait, configured through
//! [`WindowConfig`]), zero-window persist probes, optional delayed ACKs,
//! and dynamic receive-window advertisement. Also faithful: header
//! formats, checksums, sequence-number accounting, the RFC 793 state
//! machine, listener (wildcard) matching semantics, RST generation for
//! unmatched segments, and sender-side loss recovery: every SYN,
//! SYN-ACK, FIN, and data segment sits on a retransmission queue with an
//! RTO from the Jacobson/Karels [`tcpdemux_pcb::RttEstimator`] (Karn's
//! rule on samples, exponential backoff on expiry) until acknowledged —
//! [`Stack::advance_time`] fires the retransmits (head-of-queue only;
//! the provoked cumulative ACK retires the rest) and, past the retry
//! budget, aborts the connection with a [`SocketError`] the application
//! can observe.
//!
//! # Batched receive and allocation-free transmit
//!
//! [`Stack::receive_batch`] processes a slice of frames through a single
//! [`tcpdemux_core::Demux::lookup_batch`] call: parse all, demultiplex
//! once, then apply state updates per frame — the shape of a driver
//! handing the stack a ring's worth of packets per interrupt. Per-frame
//! results are identical to calling [`Stack::receive`] in a loop; if a
//! frame mid-batch changes the connection table, later frames are
//! transparently re-looked-up (see [`BatchRxResult`]).
//!
//! On the transmit side, every emitted frame draws its buffer from an
//! internal [`TxPool`]. A caller that returns spent buffers via
//! [`Stack::recycle`] makes steady-state transmission allocation-free:
//! after warm-up, ACKs, data segments, and RSTs all reuse recycled
//! capacity (the `tx_pool` counters in [`Stack::stats`] pin this in
//! tests).
//!
//! # Example
//!
//! ```
//! use tcpdemux_stack::{Stack, StackConfig};
//! use std::net::Ipv4Addr;
//!
//! let server_addr = Ipv4Addr::new(10, 0, 0, 1);
//! let client_addr = Ipv4Addr::new(10, 0, 0, 2);
//! // One construction path: the config carries the demux factory (the
//! // paper's sequent(19) by default), recorder, and shard id.
//! let mut server = Stack::with_config(StackConfig::new(server_addr));
//! let mut client = Stack::with_config(StackConfig::new(client_addr));
//! server.listen(1521).unwrap();
//! let (client_pcb, syn) = client.connect(server_addr, 1521).unwrap();
//!
//! // Shuttle the handshake: SYN -> SYN-ACK -> ACK.
//! let synack = server.receive(&syn).unwrap().replies;
//! let ack = client.receive(&synack[0]).unwrap().replies;
//! server.receive(&ack[0]).unwrap();
//! assert!(client.is_established(client_pcb));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod fault;
pub mod neighbor;
mod runtime;
pub mod shard;
mod socket;
mod stack;
mod stats;
pub mod timer;
mod txpool;

pub use fault::{checksum_covered_span, FaultInjector, FaultOutcome};
pub use neighbor::NeighborCache;
pub use runtime::{RingFull, ShardedStack};
pub use shard::{steering_key, PlacementStats, ShardId, SteerTable};
pub use socket::{SocketBuffer, SocketError};
pub use stack::{
    BatchRxResult, CcFactory, ConnectionInfo, DemuxFactory, ListenConfig, ListenerInfo, RxOutcome,
    RxResult, Stack, StackConfig, StackError, TimeAdvance, TxScratch, WindowConfig,
};
pub use stats::{StackStats, StatsSnapshot};
// Congestion-control building blocks, re-exported so applications can
// configure `WindowConfig::with_congestion_control` without a direct
// tcpdemux-pcb dependency.
pub use tcpdemux_pcb::{CcAction, CongestionControl, CongestionState, NewReno, Reno};
// The telemetry types a Stack user touches through `Stack::stats()` and
// `Stack::recorder()`, re-exported for convenience.
pub use tcpdemux_core::spsc::RingStats;
pub use tcpdemux_telemetry::{CloseCause, CounterId, Event, HistogramId, Recorder, Snapshot};
pub use timer::{TimerId, TimerWheel};
pub use txpool::{TxPool, TxPoolStats};
