//! Fault injection for the in-memory link between two stacks.
//!
//! Modeled on smoltcp's example fault injector: frames may be dropped or
//! have a random octet mutated with configurable probabilities. Corrupted
//! frames must be caught by the IPv4 or TCP checksum and never reach the
//! demultiplexer — the integration tests assert exactly that.

use tcpdemux_sim_free_rng::FaultRng;

/// A tiny xorshift generator so the injector does not depend on the sim
/// crate (and stays deterministic from its seed).
mod tcpdemux_sim_free_rng {
    /// Deterministic xorshift64* stream.
    #[derive(Debug, Clone)]
    pub struct FaultRng(u64);

    impl FaultRng {
        /// Seeded constructor (seed must be nonzero; zero is mapped).
        pub fn new(seed: u64) -> Self {
            Self(seed.max(1))
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform float in [0, 1).
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// What the injector did to a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Frame passed through unmodified.
    Passed(Vec<u8>),
    /// Frame passed through with one octet mutated.
    Corrupted(Vec<u8>),
    /// Frame was dropped.
    Dropped,
}

impl FaultOutcome {
    /// The frame to deliver, if any.
    pub fn frame(&self) -> Option<&[u8]> {
        match self {
            FaultOutcome::Passed(f) | FaultOutcome::Corrupted(f) => Some(f),
            FaultOutcome::Dropped => None,
        }
    }
}

/// A lossy, corrupting link.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop_chance: f64,
    corrupt_chance: f64,
    rng: FaultRng,
    dropped: u64,
    corrupted: u64,
    passed: u64,
}

impl FaultInjector {
    /// Create an injector. Chances are probabilities in `[0, 1]`.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance));
        assert!((0.0..=1.0).contains(&corrupt_chance));
        Self {
            drop_chance,
            corrupt_chance,
            rng: FaultRng::new(seed),
            dropped: 0,
            corrupted: 0,
            passed: 0,
        }
    }

    /// A transparent link.
    pub fn transparent() -> Self {
        Self::new(0.0, 0.0, 1)
    }

    /// Pass a frame through the link.
    pub fn transmit(&mut self, frame: &[u8]) -> FaultOutcome {
        if self.rng.unit() < self.drop_chance {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if !frame.is_empty() && self.rng.unit() < self.corrupt_chance {
            self.corrupted += 1;
            let mut out = frame.to_vec();
            let idx = (self.rng.next_u64() as usize) % out.len();
            let bit = 1u8 << (self.rng.next_u64() % 8);
            out[idx] ^= bit;
            return FaultOutcome::Corrupted(out);
        }
        self.passed += 1;
        FaultOutcome::Passed(frame.to_vec())
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Frames passed unmodified so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_passes_everything() {
        let mut link = FaultInjector::transparent();
        for i in 0..100u8 {
            let frame = vec![i; 10];
            assert_eq!(link.transmit(&frame), FaultOutcome::Passed(frame));
        }
        assert_eq!(link.passed(), 100);
        assert_eq!(link.dropped(), 0);
        assert_eq!(link.corrupted(), 0);
    }

    #[test]
    fn always_drop() {
        let mut link = FaultInjector::new(1.0, 0.0, 7);
        assert_eq!(link.transmit(&[1, 2, 3]), FaultOutcome::Dropped);
        assert_eq!(link.dropped(), 1);
        assert_eq!(link.transmit(&[1]).frame(), None);
    }

    #[test]
    fn always_corrupt_flips_exactly_one_bit() {
        let mut link = FaultInjector::new(0.0, 1.0, 9);
        let frame = vec![0u8; 64];
        match link.transmit(&frame) {
            FaultOutcome::Corrupted(out) => {
                let flipped: u32 = out
                    .iter()
                    .zip(frame.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn rates_are_approximately_honored() {
        let mut link = FaultInjector::new(0.25, 0.25, 42);
        for _ in 0..10_000 {
            let _ = link.transmit(&[0u8; 40]);
        }
        let drop_rate = link.dropped() as f64 / 10_000.0;
        assert!((drop_rate - 0.25).abs() < 0.02, "{drop_rate}");
        // Corruption applies to the ~75% that survive the drop stage.
        let corrupt_rate = link.corrupted() as f64 / 10_000.0;
        assert!((corrupt_rate - 0.1875).abs() < 0.02, "{corrupt_rate}");
    }

    #[test]
    fn deterministic_from_seed() {
        let run = |seed| {
            let mut link = FaultInjector::new(0.3, 0.3, seed);
            (0..50)
                .map(|i| link.transmit(&[i as u8; 16]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
