//! Fault injection for the in-memory link between two stacks.
//!
//! Modeled on smoltcp's example fault injector: frames may be dropped or
//! have a random octet mutated with configurable probabilities. Corrupted
//! frames must be caught by the IPv4 or TCP checksum and never reach the
//! demultiplexer — the integration tests assert exactly that.

use tcpdemux_sim_free_rng::FaultRng;

/// A tiny xorshift generator so the injector does not depend on the sim
/// crate (and stays deterministic from its seed).
mod tcpdemux_sim_free_rng {
    /// Deterministic xorshift64* stream.
    #[derive(Debug, Clone)]
    pub struct FaultRng(u64);

    impl FaultRng {
        /// Seeded constructor (seed must be nonzero; zero is mapped).
        pub fn new(seed: u64) -> Self {
            Self(seed.max(1))
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform float in [0, 1).
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// What the injector did to a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Frame passed through unmodified.
    Passed(Vec<u8>),
    /// Frame passed through with one octet mutated.
    Corrupted(Vec<u8>),
    /// Frame was dropped.
    Dropped,
}

impl FaultOutcome {
    /// The frame to deliver, if any.
    pub fn frame(&self) -> Option<&[u8]> {
        match self {
            FaultOutcome::Passed(f) | FaultOutcome::Corrupted(f) => Some(f),
            FaultOutcome::Dropped => None,
        }
    }
}

/// A lossy, corrupting link.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop_chance: f64,
    corrupt_chance: f64,
    rng: FaultRng,
    dropped: u64,
    corrupted: u64,
    passed: u64,
}

impl FaultInjector {
    /// Create an injector. Chances are probabilities in `[0, 1]`.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance));
        assert!((0.0..=1.0).contains(&corrupt_chance));
        Self {
            drop_chance,
            corrupt_chance,
            rng: FaultRng::new(seed),
            dropped: 0,
            corrupted: 0,
            passed: 0,
        }
    }

    /// A transparent link.
    pub fn transparent() -> Self {
        Self::new(0.0, 0.0, 1)
    }

    /// Pass a frame through the link.
    ///
    /// Corruption flips exactly one bit, chosen within the span of the
    /// frame that some checksum covers (see [`checksum_covered_span`]).
    /// Flipping a byte of an Ethernet header — which no IPv4 or TCP/UDP
    /// checksum protects — would model a fault the receiver legitimately
    /// cannot detect, and made "corruption never reaches the demux"
    /// assertions hold only by seed luck.
    pub fn transmit(&mut self, frame: &[u8]) -> FaultOutcome {
        if self.rng.unit() < self.drop_chance {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if !frame.is_empty() && self.rng.unit() < self.corrupt_chance {
            self.corrupted += 1;
            let mut out = frame.to_vec();
            let span = checksum_covered_span(&out);
            let idx = span.start + (self.rng.next_u64() as usize) % span.len();
            let bit = 1u8 << (self.rng.next_u64() % 8);
            out[idx] ^= bit;
            return FaultOutcome::Corrupted(out);
        }
        self.passed += 1;
        FaultOutcome::Passed(frame.to_vec())
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Frames passed unmodified so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

/// The byte range of `frame` that is covered by the IPv4 header checksum
/// or a TCP/UDP (pseudo-header) checksum — i.e. the bytes where a single
/// bit flip is guaranteed detectable by the receiver.
///
/// Recognized shapes:
/// - Ethernet II carrying IPv4 (ethertype 0x0800): the IPv4 packet,
///   `14 .. 14 + total_length`. The Ethernet header itself and any
///   trailing pad bytes are covered by no checksum.
/// - A bare IPv4 packet: `0 .. total_length`.
/// - Anything else (garbage the parser will reject regardless): the
///   whole frame.
pub fn checksum_covered_span(frame: &[u8]) -> core::ops::Range<usize> {
    const ETH_HEADER_LEN: usize = 14;
    const IPV4_MIN_LEN: usize = 20;
    let ipv4_span = |at: usize| -> Option<core::ops::Range<usize>> {
        if frame.len() < at + IPV4_MIN_LEN || frame[at] >> 4 != 4 {
            return None;
        }
        let total = u16::from_be_bytes([frame[at + 2], frame[at + 3]]) as usize;
        let end = (at + total).min(frame.len());
        (end > at).then_some(at..end)
    };
    if frame.len() >= ETH_HEADER_LEN && frame[12..14] == [0x08, 0x00] {
        if let Some(span) = ipv4_span(ETH_HEADER_LEN) {
            return span;
        }
    }
    if let Some(span) = ipv4_span(0) {
        return span;
    }
    0..frame.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_passes_everything() {
        let mut link = FaultInjector::transparent();
        for i in 0..100u8 {
            let frame = vec![i; 10];
            assert_eq!(link.transmit(&frame), FaultOutcome::Passed(frame));
        }
        assert_eq!(link.passed(), 100);
        assert_eq!(link.dropped(), 0);
        assert_eq!(link.corrupted(), 0);
    }

    #[test]
    fn always_drop() {
        let mut link = FaultInjector::new(1.0, 0.0, 7);
        assert_eq!(link.transmit(&[1, 2, 3]), FaultOutcome::Dropped);
        assert_eq!(link.dropped(), 1);
        assert_eq!(link.transmit(&[1]).frame(), None);
    }

    #[test]
    fn always_corrupt_flips_exactly_one_bit() {
        let mut link = FaultInjector::new(0.0, 1.0, 9);
        let frame = vec![0u8; 64];
        match link.transmit(&frame) {
            FaultOutcome::Corrupted(out) => {
                let flipped: u32 = out
                    .iter()
                    .zip(frame.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn rates_are_approximately_honored() {
        let mut link = FaultInjector::new(0.25, 0.25, 42);
        for _ in 0..10_000 {
            let _ = link.transmit(&[0u8; 40]);
        }
        let drop_rate = link.dropped() as f64 / 10_000.0;
        assert!((drop_rate - 0.25).abs() < 0.02, "{drop_rate}");
        // Corruption applies to the ~75% that survive the drop stage.
        let corrupt_rate = link.corrupted() as f64 / 10_000.0;
        assert!((corrupt_rate - 0.1875).abs() < 0.02, "{corrupt_rate}");
    }

    fn eth_tcp_frame_with_padding() -> (Vec<u8>, core::ops::Range<usize>) {
        use std::net::Ipv4Addr;
        use tcpdemux_wire::{
            build_tcp_frame, ethernet, EthernetAddress, IpProtocol, Ipv4Repr, TcpRepr,
        };

        let ip = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Tcp,
        );
        let tcp = TcpRepr {
            src_port: 1521,
            dst_port: 40000,
            ..TcpRepr::default()
        };
        let packet = build_tcp_frame(&ip, &tcp, b"x");
        let ip_len = packet.len();
        let mut frame = Vec::new();
        ethernet::encapsulate_ipv4_into(
            EthernetAddress::from_ipv4(ip.src_addr),
            EthernetAddress::from_ipv4(ip.dst_addr),
            &packet,
            &mut frame,
        );
        // The 41-byte IPv4 packet forces Ethernet pad bytes; both the
        // 14-byte header and the pad sit outside every checksum.
        assert!(frame.len() > ethernet::HEADER_LEN + ip_len);
        (frame, ethernet::HEADER_LEN..ethernet::HEADER_LEN + ip_len)
    }

    #[test]
    fn covered_span_recognizes_frame_shapes() {
        let (frame, want) = eth_tcp_frame_with_padding();
        assert_eq!(checksum_covered_span(&frame), want);
        // A bare IPv4 packet is covered end to end.
        let packet = &frame[14..want.end];
        assert_eq!(checksum_covered_span(packet), 0..packet.len());
        // Garbage that parses as neither falls back to the whole frame.
        assert_eq!(checksum_covered_span(&[0u8; 10]), 0..10);
        assert_eq!(checksum_covered_span(&[0xffu8; 64]), 0..64);
    }

    #[test]
    fn corruption_only_lands_in_checksum_covered_bytes() {
        // Regression: a flip in the Ethernet MAC/ethertype bytes or the
        // trailing pad is invisible to every checksum, so "corruption is
        // always caught" held only by seed luck. Sweep many seeds and
        // assert every flip offset stays inside the covered span.
        let (frame, covered) = eth_tcp_frame_with_padding();
        for seed in 1..=512u64 {
            let mut link = FaultInjector::new(0.0, 1.0, seed);
            match link.transmit(&frame) {
                FaultOutcome::Corrupted(out) => {
                    let idx = out
                        .iter()
                        .zip(frame.iter())
                        .position(|(a, b)| a != b)
                        .expect("one byte must differ");
                    assert!(
                        covered.contains(&idx),
                        "seed {seed}: flip at {idx} outside covered {covered:?}"
                    );
                }
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let run = |seed| {
            let mut link = FaultInjector::new(0.3, 0.3, seed);
            (0..50)
                .map(|i| link.transmit(&[i as u8; 16]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
