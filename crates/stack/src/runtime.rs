//! The sharded multi-core stack runtime.
//!
//! A [`ShardedStack`] owns K independent [`Stack`] shards — each with its
//! own PCB arena, demultiplexer, timer wheel, transmit pool, and
//! telemetry [`Recorder`] — and steers every ingress frame to the shard
//! owning its flow with the symmetric connection-key hash
//! ([`tcpdemux_hash::symmetric_hash`]). Because the hash is symmetric,
//! the SYN a listener sees and the SYN-ACK that answers it land on the
//! same shard, and a shard's PCBs are touched by exactly one worker at a
//! time: inside a shard, demultiplexing is the single-threaded problem
//! the paper analyzes, at K-fold aggregate rate.
//!
//! ```text
//!             ingress thread                    worker k (one per shard)
//!  frame ──▶ steering_key ──▶ symmetric hash ┐
//!                                            ├─▶ SPSC ring k ──▶ drain()
//!                                            ┘      │
//!                                                   └─▶ Stack::receive_batch
//! ```
//!
//! * **Rings.** Each shard is fed by a bounded in-tree SPSC ring
//!   ([`tcpdemux_core::spsc`]); a full ring rejects the frame back to the
//!   ingress side (drop-tail with accounting, like a NIC RX ring).
//! * **Listeners.** [`listen`](ShardedStack::listen) installs the
//!   listener on *every* shard (SO_REUSEPORT-style) and records the port
//!   in the shared [`SteerTable`], so an arriving SYN needs no table
//!   consultation — the hash alone picks its owner, and the accept queue
//!   it lands in is polled round-robin by
//!   [`accept`](ShardedStack::accept).
//! * **Active opens.** The four-tuple decides the owning shard, so
//!   [`connect_from_shard`](ShardedStack::connect_from_shard) allocates
//!   the ephemeral port *globally* from the table, computes the owner
//!   from the complete key, and only then places the connection —
//!   taking the owning shard's lock from the calling shard's thread when
//!   they differ. The local/cross split is counted
//!   ([`placements`](ShardedStack::placements)): cross-shard placement is
//!   a measured quantity.
//! * **Introspection.** [`stats`](ShardedStack::stats) merges per-shard
//!   [`StatsSnapshot`]s into the same owned type a single stack returns;
//!   [`connection_table`](ShardedStack::connection_table) /
//!   [`listener_table`](ShardedStack::listener_table) concatenate rows
//!   tagged with their owning [`ShardId`] — one introspection surface
//!   for one stack or K.
//!
//! Interior mutability (`Mutex` per shard stack and per ring half) keeps
//! the whole runtime `&self`-driven so an ingress thread and K workers
//! can share it via `std::thread::scope`. In the intended deployment —
//! one worker per shard — every lock is uncontended except the brief
//! cross-shard placement path; the stress test pins the resulting
//! invariant that no PCB is ever touched from two shards.

use crate::shard::{steering_key, PlacementStats, ShardId, SteerTable};
use crate::stack::{
    BatchRxResult, ConnectionInfo, ListenConfig, ListenerInfo, Stack, StackConfig, StackError,
    TimeAdvance, TxScratch,
};
use crate::stats::StatsSnapshot;
use std::net::Ipv4Addr;
use std::sync::Mutex;
use tcpdemux_core::spsc::{spsc_ring, RingStats, SpscConsumer, SpscProducer};
use tcpdemux_pcb::{ConnectionKey, PcbId};
use tcpdemux_telemetry::Recorder;

/// One shard: its stack and the two halves of its ingress ring, each
/// behind its own lock so ingress and drain never contend with each
/// other.
struct ShardSlot {
    stack: Mutex<Stack>,
    producer: Mutex<SpscProducer<Vec<u8>>>,
    consumer: Mutex<SpscConsumer<Vec<u8>>>,
    recorder: Recorder,
}

/// A frame refused because its shard's ingress ring was full; the frame
/// comes back so the caller can retry or count the drop.
#[derive(Debug)]
pub struct RingFull {
    /// The shard whose ring was full.
    pub shard: ShardId,
    /// The rejected frame, returned to the caller.
    pub frame: Vec<u8>,
}

/// K flow-affine [`Stack`] shards behind one runtime. See the module
/// docs for the architecture.
pub struct ShardedStack {
    slots: Vec<ShardSlot>,
    table: SteerTable,
    local_addr: Ipv4Addr,
}

impl ShardedStack {
    /// Build `shards` shards from one config — the same construction
    /// path as a single [`Stack::with_config`], plus the shard count.
    ///
    /// Each shard gets its own demultiplexer (from the config's factory)
    /// and its *own fresh* [`Recorder`] (per-shard telemetry is the
    /// point; a recorder set on `config` applies only to single-stack
    /// construction and is ignored here — fetch per-shard handles via
    /// [`recorder`](Self::recorder)).
    pub fn with_config(config: StackConfig, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be nonzero");
        let table = SteerTable::new(shards, config.ephemeral_base);
        let slots = (0..shards)
            .map(|k| {
                let recorder = Recorder::new();
                let shard_config = config
                    .clone()
                    .with_shard(ShardId::new(k))
                    .with_recorder(recorder.clone());
                let (producer, consumer) = spsc_ring(config.ring_capacity);
                ShardSlot {
                    stack: Mutex::new(Stack::with_config(shard_config)),
                    producer: Mutex::new(producer),
                    consumer: Mutex::new(consumer),
                    recorder,
                }
            })
            .collect();
        Self {
            slots,
            table,
            local_addr: config.local_addr,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// This host's address (shared by every shard).
    pub fn local_addr(&self) -> Ipv4Addr {
        self.local_addr
    }

    /// The shard owning `key` (either orientation — the hash is
    /// symmetric).
    pub fn steer(&self, key: &ConnectionKey) -> ShardId {
        self.table.steer(key)
    }

    /// Steer a raw ingress frame to its owning shard's ring. Frames too
    /// malformed to carry a four-tuple go to shard 0, whose stack counts
    /// the parse error exactly as a single stack would. Returns the
    /// accepting shard, or the frame back if that shard's ring is full.
    pub fn enqueue(&self, frame: Vec<u8>) -> Result<ShardId, RingFull> {
        let shard = steering_key(&frame)
            .map(|key| self.table.steer(&key))
            .unwrap_or_default();
        let mut producer = self.slots[shard.index()]
            .producer
            .lock()
            .expect("shard producer lock");
        producer
            .push(frame)
            .map(|()| shard)
            .map_err(|frame| RingFull { shard, frame })
    }

    /// Drain up to `max` frames from one shard's ring through its stack's
    /// batched receive path. The shard's worker calls this in a loop;
    /// any thread may call it for any shard, but only one at a time per
    /// shard makes progress (the consumer lock serializes).
    pub fn drain(&self, shard: ShardId, max: usize) -> BatchRxResult {
        let slot = &self.slots[shard.index()];
        let mut frames = Vec::new();
        {
            let mut consumer = slot.consumer.lock().expect("shard consumer lock");
            consumer.pop_batch(&mut frames, max);
        }
        if frames.is_empty() {
            return BatchRxResult {
                results: Vec::new(),
                batched_lookups: 0,
                relookups: 0,
            };
        }
        let mut stack = slot.stack.lock().expect("shard stack lock");
        let result = stack.receive_batch(&frames);
        // The drained frames are spent; recycle their buffers into the
        // shard's transmit pool so steady state allocates nothing new.
        for frame in frames {
            stack.recycle(frame);
        }
        result
    }

    /// Install a listener on *every* shard (SO_REUSEPORT-style) and
    /// record the port in the steering table. SYNs then steer purely by
    /// hash; whichever shard a client's flow maps to accepts it locally.
    pub fn listen(&self, config: impl Into<ListenConfig>) -> Result<(), StackError> {
        let listen: ListenConfig = config.into();
        for slot in &self.slots {
            slot.stack
                .lock()
                .expect("shard stack lock")
                .listen(listen)?;
        }
        self.table.note_listen(listen.port);
        Ok(())
    }

    /// Dequeue one established-but-unaccepted connection on `port`,
    /// polling shards round-robin from the shared accept cursor so no
    /// shard's queue starves. Returns the owning shard with the handle —
    /// subsequent socket operations must go through that shard
    /// ([`with_shard`](Self::with_shard)).
    pub fn accept(&self, port: u16) -> Option<(ShardId, PcbId)> {
        let start = self.table.next_accept_shard();
        let n = self.slots.len();
        for i in 0..n {
            let k = (start + i) % n;
            let id = self.slots[k]
                .stack
                .lock()
                .expect("shard stack lock")
                .accept(port);
            if let Some(id) = id {
                return Some((ShardId::new(k), id));
            }
        }
        None
    }

    /// Active open originating on shard `from` (the shard whose worker
    /// or application thread initiates it). The ephemeral port is drawn
    /// from the *global* allocator, the owning shard is computed from
    /// the complete four-tuple, and the connection is created there —
    /// on the caller's thread, taking the owner's lock if it is a
    /// different shard. The local/cross outcome is counted
    /// ([`placements`](Self::placements)). Returns the owning shard, the
    /// handle, and the SYN frame to transmit.
    pub fn connect_from_shard(
        &self,
        from: ShardId,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Result<(ShardId, PcbId, Vec<u8>), StackError> {
        assert!(from.index() < self.slots.len(), "no such shard {from}");
        // The in-use probe walks every shard's connection table with the
        // same predicate the single-stack allocator uses: a flow's owner
        // is decided by the four-tuple *after* the port is chosen, so a
        // port is only safe to mint if no shard holds it.
        let local_port = self.table.alloc_ephemeral(|port| {
            self.slots.iter().any(|slot| {
                slot.stack
                    .lock()
                    .expect("shard stack lock")
                    .ephemeral_port_in_use(port)
            })
        })?;
        let key = ConnectionKey::new(self.local_addr, local_port, remote_addr, remote_port);
        let owner = self.table.steer(&key);
        self.table.note_placement(from, owner);
        let (id, syn) = self.slots[owner.index()]
            .stack
            .lock()
            .expect("shard stack lock")
            .connect_from(local_port, remote_addr, remote_port)?;
        Ok((owner, id, syn))
    }

    /// [`connect_from_shard`](Self::connect_from_shard) from shard 0 —
    /// convenient when the caller has no shard affinity to preserve.
    pub fn connect(
        &self,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Result<(ShardId, PcbId, Vec<u8>), StackError> {
        self.connect_from_shard(ShardId::default(), remote_addr, remote_port)
    }

    /// Run `f` against one shard's stack under its lock — the escape
    /// hatch for application logic (socket reads, sends, closes) that a
    /// handle returned by [`accept`](Self::accept) or
    /// [`connect`](Self::connect) points into.
    pub fn with_shard<R>(&self, shard: ShardId, f: impl FnOnce(&mut Stack) -> R) -> R {
        let mut stack = self.slots[shard.index()]
            .stack
            .lock()
            .expect("shard stack lock");
        f(&mut stack)
    }

    /// Drain one shard's pending transmissions under its window (see
    /// [`Stack::poll_transmit`]); returns the number of frames produced
    /// into `scratch`.
    pub fn poll_transmit(&self, shard: ShardId, scratch: &mut TxScratch) -> usize {
        self.with_shard(shard, |stack| stack.poll_transmit(scratch))
    }

    /// Advance every shard's clock to `tick`; per-shard results keep
    /// retransmit frames attributed to the shard that must re-emit them.
    pub fn advance_time(&self, tick: u64) -> Vec<(ShardId, TimeAdvance)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(k, slot)| {
                let advance = slot
                    .stack
                    .lock()
                    .expect("shard stack lock")
                    .advance_time(tick);
                (ShardId::new(k), advance)
            })
            .collect()
    }

    /// The earliest timer deadline across all shards.
    pub fn next_timer_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|slot| {
                slot.stack
                    .lock()
                    .expect("shard stack lock")
                    .next_timer_deadline()
            })
            .min()
    }

    /// Merged statistics across all shards — the same owned
    /// [`StatsSnapshot`] a single stack returns (counters add, telemetry
    /// aggregates merge; see [`StatsSnapshot::merge`]).
    pub fn stats(&self) -> StatsSnapshot {
        let parts: Vec<StatsSnapshot> = self
            .slots
            .iter()
            .map(|slot| slot.stack.lock().expect("shard stack lock").stats())
            .collect();
        StatsSnapshot::merge(&parts)
    }

    /// One shard's own statistics.
    pub fn shard_stats(&self, shard: ShardId) -> StatsSnapshot {
        self.slots[shard.index()]
            .stack
            .lock()
            .expect("shard stack lock")
            .stats()
    }

    /// Every shard's connections, tagged with their owning shard, in
    /// shard order — same row type as [`Stack::connection_table`].
    pub fn connection_table(&self) -> Vec<ConnectionInfo> {
        self.slots
            .iter()
            .flat_map(|slot| {
                slot.stack
                    .lock()
                    .expect("shard stack lock")
                    .connection_table()
            })
            .collect()
    }

    /// Every shard's listener rows (one per listener per shard — every
    /// listener is installed everywhere), in shard order.
    pub fn listener_table(&self) -> Vec<ListenerInfo> {
        self.slots
            .iter()
            .flat_map(|slot| {
                slot.stack
                    .lock()
                    .expect("shard stack lock")
                    .listener_table()
            })
            .collect()
    }

    /// Total live connections across shards.
    pub fn connection_count(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| {
                slot.stack
                    .lock()
                    .expect("shard stack lock")
                    .connection_count()
            })
            .sum()
    }

    /// One shard's telemetry recorder handle.
    pub fn recorder(&self, shard: ShardId) -> Recorder {
        self.slots[shard.index()].recorder.clone()
    }

    /// Per-shard recorder handles, in shard order (for sealing per-shard
    /// telemetry into reports).
    pub fn recorders(&self) -> Vec<Recorder> {
        self.slots.iter().map(|s| s.recorder.clone()).collect()
    }

    /// Per-shard ingress-ring counters, in shard order.
    pub fn ring_stats(&self) -> Vec<RingStats> {
        self.slots
            .iter()
            .map(|s| s.producer.lock().expect("shard producer lock").stats())
            .collect()
    }

    /// Local/cross placement counts for active opens.
    pub fn placements(&self) -> PlacementStats {
        self.table.placements()
    }

    /// Whether `port` has a listener installed (on every shard).
    pub fn is_listening(&self, port: u16) -> bool {
        self.table.is_listening(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn client_stack(addr: Ipv4Addr) -> Stack {
        Stack::with_config(StackConfig::new(addr))
    }

    /// Push a frame and drain every shard until quiet, collecting all
    /// reply frames. Single-threaded shuttle for tests.
    fn pump(runtime: &ShardedStack, frame: Vec<u8>) -> Vec<Vec<u8>> {
        runtime.enqueue(frame).expect("ring accepts");
        let mut replies = Vec::new();
        loop {
            let mut progressed = false;
            for k in 0..runtime.shards() {
                let result = runtime.drain(ShardId::new(k), 64);
                for r in result.results {
                    let r = r.expect("valid frame");
                    progressed = true;
                    replies.extend(r.replies);
                }
            }
            if !progressed {
                break;
            }
        }
        replies
    }

    #[test]
    fn handshake_lands_on_hash_owned_shard() {
        let runtime = ShardedStack::with_config(StackConfig::new(SERVER), 4);
        runtime.listen(1521).unwrap();
        assert!(runtime.is_listening(1521));
        assert_eq!(runtime.listener_table().len(), 4);

        let mut client = client_stack(CLIENT);
        let (cp, syn) = client.connect(SERVER, 1521).unwrap();
        let expected_shard = runtime.steer(&ConnectionKey::new(
            SERVER,
            1521,
            CLIENT,
            client.connection_table()[0].key.local_port,
        ));

        let synacks = pump(&runtime, syn);
        assert_eq!(synacks.len(), 1);
        let acks = client.receive(&synacks[0]).unwrap().replies;
        assert!(pump(&runtime, acks.into_iter().next().unwrap()).is_empty());
        assert!(client.is_established(cp));

        let (shard, sp) = runtime.accept(1521).expect("accepted");
        assert_eq!(shard, expected_shard);
        assert!(runtime.with_shard(shard, |s| s.is_established(sp)));

        let rows = runtime.connection_table();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].shard, shard);
        assert_eq!(runtime.steer(&rows[0].key), shard);
        assert!(rows[0].to_string().contains(&shard.to_string()));
    }

    #[test]
    fn connect_places_on_owning_shard_and_counts() {
        let runtime = ShardedStack::with_config(StackConfig::new(CLIENT), 4);
        let mut placed = std::collections::HashSet::new();
        for i in 0..16 {
            let (owner, id, _syn) = runtime
                .connect_from_shard(ShardId::default(), SERVER, 4000 + i)
                .unwrap();
            let key = runtime.with_shard(owner, |s| {
                assert!(s.state(id).is_some(), "pcb lives on owning shard");
                s.connection_table()
                    .iter()
                    .find(|row| row.key.remote_port == 4000 + i)
                    .unwrap()
                    .key
            });
            assert_eq!(runtime.steer(&key), owner);
            placed.insert(owner);
        }
        let p = runtime.placements();
        assert_eq!(p.local + p.cross, 16);
        assert!(p.cross > 0, "16 flows from one shard must cross somewhere");
        assert!(placed.len() > 1, "flows spread across shards");
        assert_eq!(runtime.connection_count(), 16);
    }

    #[test]
    fn ring_full_returns_frame() {
        let runtime = ShardedStack::with_config(StackConfig::new(SERVER).with_ring_capacity(2), 1);
        assert!(runtime.enqueue(vec![0u8; 32]).is_ok());
        assert!(runtime.enqueue(vec![1u8; 32]).is_ok());
        let err = runtime.enqueue(vec![2u8; 32]).unwrap_err();
        assert_eq!(err.shard, ShardId::default());
        assert_eq!(err.frame, vec![2u8; 32]);
        assert_eq!(runtime.ring_stats()[0].rejected, 1);
    }

    #[test]
    fn garbage_frames_go_to_shard_zero_and_count_errors() {
        let runtime = ShardedStack::with_config(StackConfig::new(SERVER), 4);
        let shard = runtime.enqueue(vec![0u8; 8]).unwrap();
        assert_eq!(shard, ShardId::default());
        let result = runtime.drain(shard, 16);
        assert_eq!(result.results.len(), 1);
        assert!(result.results[0].is_err());
        assert_eq!(runtime.stats().stack.ip_errors, 1);
        assert_eq!(runtime.shard_stats(ShardId::default()).stack.ip_errors, 1);
    }

    #[test]
    fn merged_stats_match_shard_sums() {
        let runtime = ShardedStack::with_config(StackConfig::new(SERVER), 2);
        runtime.listen(80).unwrap();
        let mut client = client_stack(CLIENT);
        for _ in 0..4 {
            let (_cp, syn) = client.connect(SERVER, 80).unwrap();
            pump(&runtime, syn);
        }
        let merged = runtime.stats();
        let by_hand: u64 = (0..2)
            .map(|k| runtime.shard_stats(ShardId::new(k)).stack.frames_in)
            .sum();
        assert_eq!(merged.stack.frames_in, by_hand);
        assert_eq!(merged.stack.frames_in, 4);
    }
}
