//! Shared machinery for batched lookups over hash chains.
//!
//! The batched receive path hands the demultiplexer a whole burst of
//! arriving keys at once ([`crate::Demux::lookup_batch`]). For the hashed
//! structures the win comes from grouping the batch's keys by chain before
//! scanning: each chain's headers are pulled into cache once and every key
//! destined for that chain is resolved against the same walk, instead of
//! re-scanning from the head per packet. Grouping also tells us every
//! chain head the batch will touch *before* any walk starts, which is
//! what makes the prefetch pass in the demultiplexers possible.
//!
//! Correctness requirement (pinned by the batch≡sequential property test):
//! the results, the per-lookup `examined` counts, and the accumulated
//! [`LookupStats`] must be *identical* to looking each key up sequentially
//! in batch order. That holds because a lookup-only batch never reorders a
//! Sequent chain — positions are stable — and chains are independent: a
//! key's outcome depends only on earlier keys in the *same* chain, whose
//! relative order the stable grouping preserves.

use crate::list::{key_tag, PcbList, NIL};
use crate::stats::LookupStats;
use crate::{LookupResult, PacketKind};
use tcpdemux_pcb::{ConnectionKey, PcbId};

/// Reusable scratch space for grouping a batch by chain, owned by the
/// hashed demultiplexers so steady-state batches allocate nothing once
/// the buffers have grown to the working-set size.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// `(bucket, key index)` pairs, grouped by bucket.
    pub order: Vec<(u32, u32)>,
    /// Per-key bucket indices (counting-sort pass 1).
    buckets: Vec<u32>,
    /// Per-bucket histogram / running offsets (counting-sort pass 2).
    counts: Vec<u32>,
    /// One in-flight walk per chain the batch touches.
    walks: Vec<WalkState>,
    /// Distinct keys awaiting a chain position, segmented per walk.
    pending: Vec<PendingKey>,
    /// Per key index, its 32-bit tag — filled by the grouping pass in
    /// one tight auto-vectorizable sweep so the collect phase never
    /// recomputes a hash.
    tags: Vec<u32>,
    /// Per key index, the `pending` slot its occurrence deduped into
    /// (`u32::MAX` for occurrences peeled by the cache prefix), so the
    /// replay never recomputes a tag or rescans a segment.
    pend_of: Vec<u32>,
}

/// One chain's share of a grouped batch.
#[derive(Debug)]
struct WalkState {
    /// Chain/bucket index.
    bucket: u32,
    /// This walk's segment of `BatchScratch::pending`: `[start, start+len)`.
    start: u32,
    len: u32,
    /// This chain's run of `BatchScratch::order`: `[run_start, run_end)`.
    run_start: u32,
    run_end: u32,
}

/// A distinct key some walk must locate, with its resolution.
#[derive(Debug)]
struct PendingKey {
    tag: u32,
    key: ConnectionKey,
    /// `(id, 1-based chain position)` once the walk passes the key;
    /// still `None` after chain exhaustion means a table miss.
    found: Option<(PcbId, u32)>,
}

/// How many pending tags a walk keeps inline for its per-step filter.
const INLINE_TAGS: usize = 4;

/// Mirror a pending segment's unresolved tags into a fixed-size filter.
/// Unused slots repeat a real tag, so a spurious match only costs a
/// no-op arena scan, never a missed match.
fn seg_tags(seg: &[PendingKey]) -> [u32; INLINE_TAGS] {
    debug_assert!(seg.len() <= INLINE_TAGS);
    let mut tags = [0u32; INLINE_TAGS];
    let mut n = 0;
    for p in seg {
        if p.found.is_none() {
            tags[n] = p.tag;
            n += 1;
        }
    }
    let pad = tags[n.saturating_sub(1).min(INLINE_TAGS - 1)];
    for t in &mut tags[n..] {
        *t = pad;
    }
    tags
}

/// Per sub-walk, how many `(slot, position)` hit records fit before the
/// sub-walk is declared ambiguous and re-walked exactly. True positives
/// are bounded by [`INLINE_TAGS`]; the slack absorbs harmless tag
/// collisions without forcing the fallback.
const HIT_CAP: usize = 2 * (INLINE_TAGS + 2);

/// Confirm a retired sub-walk's recorded tag hits against its pending
/// segment, filling in `(id, 1-based position)` for every real match.
///
/// The walk itself never touches the pending arena — it only appends
/// `(slot, position)` pairs to `hits` and decrements its unresolved
/// count on faith. That faith is audited here: if any recorded hit
/// fails to confirm (a 32-bit tag collision with a key outside the
/// segment), or the buffer overflowed, the sub-walk's conclusions are
/// untrustworthy — a spurious decrement may have retired the walk
/// before a real key's position — so the segment is reset and re-walked
/// serially with eager full-key confirmation. That path is exact and
/// vanishingly rare; the equivalence suite pins both paths.
#[cold]
fn confirm_sub(
    chain: &PcbList,
    pending: &mut [PendingKey],
    seg_start: u32,
    seg_len: u32,
    hits: &[u32; HIT_CAP],
    hit_n: usize,
) {
    let seg = seg_start as usize..(seg_start + seg_len) as usize;
    let mut ok = hit_n <= HIT_CAP;
    for pair in hits[..hit_n.min(HIT_CAP)].chunks_exact(2) {
        let (slot, steps) = (pair[0], pair[1]);
        let stag = (chain.hot_word(slot) >> 32) as u32;
        let mut matched = false;
        for p in &mut pending[seg.clone()] {
            if p.found.is_none() && p.tag == stag && p.key == *chain.key_at(slot) {
                p.found = Some((chain.id_at(slot), steps));
                matched = true;
            }
        }
        ok &= matched;
    }
    if !ok {
        // Exact fallback: wipe the segment and walk the chain serially,
        // confirming full keys at every tag match.
        for p in &mut pending[seg.clone()] {
            p.found = None;
        }
        let mut unresolved = seg_len;
        let mut cursor = chain.head_slot();
        let mut steps = 0u32;
        while cursor != NIL && unresolved > 0 {
            let word = chain.hot_word(cursor);
            let stag = (word >> 32) as u32;
            steps += 1;
            for p in &mut pending[seg.clone()] {
                if p.found.is_none() && p.tag == stag && p.key == *chain.key_at(cursor) {
                    p.found = Some((chain.id_at(cursor), steps));
                    unresolved -= 1;
                }
            }
            cursor = word as u32;
        }
    }
}

/// Pull the next live sub-walk off the iterator: `(hot lane, bucket,
/// seg_start, seg_len, head cursor, unresolved, tag filter)`. Sub-walks
/// whose chain is empty are skipped — their segment stays unresolved,
/// which phase 3 reads as a miss with zero entries examined.
#[allow(clippy::type_complexity)]
fn next_lane<'a>(
    subs: &mut impl Iterator<Item = (u32, u32, u32)>,
    chains: &'a [PcbList],
    pending: &[PendingKey],
) -> Option<(&'a [u64], u32, u32, u32, u32, u32, [u32; INLINE_TAGS])> {
    for (b, ss, sl) in subs.by_ref() {
        let chain = &chains[b as usize];
        let cur = chain.head_slot();
        if cur == NIL {
            continue;
        }
        let (hot, _, _) = chain.lanes();
        let tags = seg_tags(&pending[ss as usize..(ss + sl) as usize]);
        return Some((hot, b, ss, sl, cur, sl, tags));
    }
    None
}

/// Narrow a chain/bucket index to the `u32` used in grouping pairs.
///
/// Every demultiplexer that feeds the batch path asserts at construction
/// that its table has at most `u32::MAX` chains, so truncation cannot
/// happen in practice; the `debug_assert!` turns a future violation into
/// a loud failure instead of silently merging the groups of buckets that
/// differ only above bit 31.
#[inline]
pub(crate) fn bucket_index(bucket: usize) -> u32 {
    debug_assert!(
        u32::try_from(bucket).is_ok(),
        "bucket index {bucket} exceeds u32::MAX: grouping pairs would truncate"
    );
    bucket as u32
}

/// Fill `order` with `(bucket, index)` for every key and stably sort by
/// bucket, preserving batch order within each chain's group.
pub(crate) fn group_by_bucket(
    order: &mut Vec<(u32, u32)>,
    keys: &[(ConnectionKey, PacketKind)],
    mut bucket: impl FnMut(&ConnectionKey) -> usize,
) {
    order.clear();
    order.reserve(keys.len());
    order.extend(
        keys.iter()
            .enumerate()
            .map(|(i, (key, _))| (bucket_index(bucket(key)), i as u32)),
    );
    // Sorting the (bucket, index) pair makes the unstable sort behave
    // stably (indices are unique) without the stable sort's scratch
    // allocation — this runs per batch on the hot receive path.
    order.sort_unstable();
}

/// Like [`group_by_bucket`], but via a two-pass counting sort when the
/// table is small enough: hash every key in one tight pass (the hashes
/// auto-vectorize with no sort-comparison control flow in between), then
/// histogram + exclusive prefix sum + stable scatter in O(batch + chains).
/// Falls back to the comparison sort when `chains` is so much larger than
/// the batch that zeroing the histogram would dominate. Output order is
/// identical either way.
pub(crate) fn group_by_bucket_counted(
    scratch: &mut BatchScratch,
    keys: &[(ConnectionKey, PacketKind)],
    chains: usize,
    mut bucket: impl FnMut(&ConnectionKey) -> usize,
) {
    scratch.tags.clear();
    scratch
        .tags
        .extend(keys.iter().map(|(key, _)| key_tag(key)));
    if let [(key, _)] = keys {
        // Degenerate single-key batch (a per-packet caller going through
        // the batch API): one hash, no histogram.
        scratch.order.clear();
        scratch.order.push((bucket_index(bucket(key)), 0));
        return;
    }
    if chains > 8 * keys.len() + 64 {
        group_by_bucket(&mut scratch.order, keys, bucket);
        return;
    }
    // Pass 1: bucket every key. A tight loop over the key array with no
    // branches on the result, so the three-word hash can pipeline.
    scratch.buckets.clear();
    scratch
        .buckets
        .extend(keys.iter().map(|(key, _)| bucket_index(bucket(key))));
    // Pass 2: histogram, then exclusive prefix sum turns counts into
    // each bucket's first output position.
    scratch.counts.clear();
    scratch.counts.resize(chains, 0);
    for &b in &scratch.buckets {
        scratch.counts[b as usize] += 1;
    }
    let mut sum = 0u32;
    for c in scratch.counts.iter_mut() {
        let n = *c;
        *c = sum;
        sum += n;
    }
    // Pass 3: scatter in batch order — within a bucket, earlier keys land
    // earlier, which is exactly the stability the equivalence proof needs.
    scratch.order.clear();
    scratch.order.resize(keys.len(), (0, 0));
    for (i, &b) in scratch.buckets.iter().enumerate() {
        let at = scratch.counts[b as usize];
        scratch.counts[b as usize] += 1;
        scratch.order[at as usize] = (b, i as u32);
    }
}

/// Resolve one chain's group of keys against a single walk of the chain.
///
/// Replays the exact sequential semantics of the Sequent lookup: a cache
/// probe costs 1 (hit ends the lookup), a scan's cost is the key's 1-based
/// chain position (or the full chain length on a miss) plus the probe, and
/// every successful scan refreshes the cache when `cache_enabled`. The
/// chain itself is walked at most once per group; keys whose position was
/// already passed are answered from the `scanned` prefix.
///
/// The walk reads only the chain's hot lane — one packed
/// `(tag << 32) | next` word per step, prefetching one node ahead — and
/// `scanned` remembers `(tag, slot)` pairs, so replaying the prefix for
/// repeated keys compares 4-byte tags instead of 96-bit keys. A tag
/// comparison counts as examining that position, which keeps `examined`
/// identical to the sequential walk.
///
/// `group` yields indices into `keys`/`out` in batch order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn chain_group_lookup(
    chain: &PcbList,
    cache: &mut Option<(ConnectionKey, PcbId)>,
    cache_enabled: bool,
    scanned: &mut Vec<(u32, u32)>,
    group: impl Iterator<Item = usize>,
    keys: &[(ConnectionKey, PacketKind)],
    out: &mut [LookupResult],
    stats: &mut LookupStats,
) {
    let mut cursor = chain.head_slot();
    scanned.clear();
    for idx in group {
        let key = keys[idx].0;
        if let Some((ck, id)) = *cache {
            if ck == key {
                stats.record(1, true, true);
                out[idx] = LookupResult {
                    pcb: Some(id),
                    examined: 1,
                    cache_hit: true,
                };
                continue;
            }
        }
        let probe = u32::from(cache.is_some());
        let tag = key_tag(&key);
        let mut found: Option<(PcbId, u32)> = None;
        for (pos, &(stag, slot)) in scanned.iter().enumerate() {
            if stag == tag && *chain.key_at(slot) == key {
                found = Some((chain.id_at(slot), pos as u32 + 1));
                break;
            }
        }
        if found.is_none() {
            while cursor != NIL {
                let word = chain.hot_word(cursor);
                let next = word as u32;
                chain.prefetch_slot(next);
                let slot = cursor;
                cursor = next;
                let stag = (word >> 32) as u32;
                scanned.push((stag, slot));
                if stag == tag && *chain.key_at(slot) == key {
                    found = Some((chain.id_at(slot), scanned.len() as u32));
                    break;
                }
            }
        }
        match found {
            Some((id, pos)) => {
                let examined = probe + pos;
                if cache_enabled {
                    *cache = Some((key, id));
                }
                stats.record(examined, true, false);
                out[idx] = LookupResult {
                    pcb: Some(id),
                    examined,
                    cache_hit: false,
                };
            }
            None => {
                let examined = probe + scanned.len() as u32;
                stats.record(examined, false, false);
                out[idx] = LookupResult::miss(examined);
            }
        }
    }
}

/// Resolve a whole grouped batch by walking every touched chain
/// *simultaneously*, one step per chain per round.
///
/// [`chain_group_lookup`] walks one chain to completion before starting
/// the next, so every step's load depends on the previous step's `next`
/// pointer — the walk runs at L1 *latency* (4–5 cycles per entry), not
/// L1 throughput. Interleaving instead advances each chain's cursor once
/// per round: the ~`H` loads issued in one round are independent, so the
/// out-of-order window overlaps their latencies and the whole batch's
/// chain work completes in roughly the time of the single longest walk.
/// This is the memory-level parallelism a per-packet loop structurally
/// cannot have, and it is where the batched path's speedup comes from.
///
/// Three phases, all allocation-free at steady state:
///
/// 1. **Collect** — per chain run (in batch order), skip the leading
///    occurrences answered by the chain's one-entry cache (a packet
///    train's tail; the cache is left unchanged by hits, so these are
///    guaranteed), then dedup the remaining keys into a `pending`
///    segment. Duplicate keys — trains, or repeated misses — resolve
///    with one walk instead of one rescan each.
/// 2. **Walk** — round-robin over all chains with unresolved keys; each
///    step reads one packed `(tag << 32) | next` hot word, prefetches
///    the next slot, and tag-compares against the segment (full key
///    compared only on tag hit). A walk retires when its segment is
///    resolved or the chain ends.
/// 3. **Replay** — per run, in batch order, replay the exact sequential
///    cache semantics using the resolved positions: a cache hit costs 1,
///    a located key costs probe + position (and refreshes the cache when
///    enabled), a miss costs probe + chain length — `PcbList::len`, not
///    a rescan, since a sequential miss examines every live entry.
///
/// The equivalence suite pins this path to the sequential walk result-
/// for-result and stat-for-stat.
pub(crate) fn interleaved_batch_lookup(
    chains: &[PcbList],
    caches: &mut [Option<(ConnectionKey, PcbId)>],
    cache_enabled: bool,
    scratch: &mut BatchScratch,
    keys: &[(ConnectionKey, PacketKind)],
    out: &mut [LookupResult],
    stats: &mut LookupStats,
) {
    let BatchScratch {
        order,
        walks,
        pending,
        tags: key_tags,
        pend_of,
        ..
    } = scratch;

    // Phase 1: per chain run, peel the leading cache-hit prefix and
    // dedup the rest into this walk's pending segment.
    walks.clear();
    pending.clear();
    pend_of.clear();
    pend_of.resize(keys.len(), u32::MAX);
    let mut i = 0;
    while i < order.len() {
        let b = order[i].0;
        let mut j = i;
        while j < order.len() && order[j].0 == b {
            j += 1;
        }
        let mut lead = i;
        if let Some((ck, _)) = caches[b as usize] {
            while lead < j && keys[order[lead].1 as usize].0 == ck {
                lead += 1;
            }
        }
        let start = pending.len();
        for &(_, idx) in &order[lead..j] {
            let key = keys[idx as usize].0;
            let tag = key_tags[idx as usize];
            let at = match pending[start..]
                .iter()
                .position(|p| p.tag == tag && p.key == key)
            {
                Some(off) => start + off,
                None => {
                    pending.push(PendingKey {
                        tag,
                        key,
                        found: None,
                    });
                    pending.len() - 1
                }
            };
            pend_of[idx as usize] = at as u32;
        }
        walks.push(WalkState {
            bucket: b,
            start: start as u32,
            len: (pending.len() - start) as u32,
            run_start: i as u32,
            run_end: j as u32,
        });
        i = j;
    }

    // Phase 2: walk the chains, two in lock-step so their dependent
    // `hot[cursor]` loads overlap — a per-packet loop structurally
    // cannot do this, because it does not know the next key's chain
    // until the current lookup returns. Each finished lane hands its
    // slot to the next sub-walk, so two walks are in flight until the
    // final tail. Segments wider than the inline filter are split into
    // independent sub-walks of at most `INLINE_TAGS` keys over the same
    // chain: the filter stays complete (no per-step arena scans) and
    // dense batches yield *more* overlap partners. All lane state is
    // scalar locals — a handful of registers per lane — because spilled
    // lane structs were measured to cost ~25% of the whole walk.
    let mut subs = walks.iter().flat_map(|w| {
        (0..w.len).step_by(INLINE_TAGS).map(move |off| {
            (
                w.bucket,
                w.start + off,
                (w.len - off).min(INLINE_TAGS as u32),
            )
        })
    });
    if let Some((mut hot_a, mut ba, mut ssa, mut sla, mut cura, mut lefta, mut tagsa)) =
        next_lane(&mut subs, chains, pending)
    {
        let mut stepsa = 0u32;
        let mut hits_a = [0u32; HIT_CAP];
        let mut hitn_a = 0usize;
        'pairs: loop {
            let Some((hot_b, bb, ssb, slb, mut curb, mut leftb, tagsb)) =
                next_lane(&mut subs, chains, pending)
            else {
                // No peer left to overlap with; drain the last lane in a
                // tight serial loop.
                while cura != NIL && lefta > 0 {
                    let w = hot_a[cura as usize];
                    let s = (w >> 32) as u32;
                    stepsa += 1;
                    if (s == tagsa[0]) | (s == tagsa[1]) | (s == tagsa[2]) | (s == tagsa[3]) {
                        if hitn_a < HIT_CAP {
                            hits_a[hitn_a] = cura;
                            hits_a[hitn_a + 1] = stepsa;
                        }
                        hitn_a += 2;
                        lefta = lefta.saturating_sub(1);
                    }
                    cura = w as u32;
                }
                confirm_sub(&chains[ba as usize], pending, ssa, sla, &hits_a, hitn_a);
                break 'pairs;
            };
            let mut stepsb = 0u32;
            let mut hits_b = [0u32; HIT_CAP];
            let mut hitn_b = 0usize;
            loop {
                // Issue both loads before either lane's bookkeeping: the
                // two dependent chains advance concurrently. The hit
                // branches only append to the lanes' record buffers —
                // no calls, so the lane state stays in registers.
                let wa = hot_a[cura as usize];
                let wb = hot_b[curb as usize];
                let sa = (wa >> 32) as u32;
                let sb = (wb >> 32) as u32;
                stepsa += 1;
                stepsb += 1;
                if (sa == tagsa[0]) | (sa == tagsa[1]) | (sa == tagsa[2]) | (sa == tagsa[3]) {
                    if hitn_a < HIT_CAP {
                        hits_a[hitn_a] = cura;
                        hits_a[hitn_a + 1] = stepsa;
                    }
                    hitn_a += 2;
                    lefta = lefta.saturating_sub(1);
                }
                if (sb == tagsb[0]) | (sb == tagsb[1]) | (sb == tagsb[2]) | (sb == tagsb[3]) {
                    if hitn_b < HIT_CAP {
                        hits_b[hitn_b] = curb;
                        hits_b[hitn_b + 1] = stepsb;
                    }
                    hitn_b += 2;
                    leftb = leftb.saturating_sub(1);
                }
                cura = wa as u32;
                curb = wb as u32;
                let a_done = cura == NIL || lefta == 0;
                let b_done = curb == NIL || leftb == 0;
                if a_done | b_done {
                    if a_done {
                        confirm_sub(&chains[ba as usize], pending, ssa, sla, &hits_a, hitn_a);
                    }
                    if b_done {
                        confirm_sub(&chains[bb as usize], pending, ssb, slb, &hits_b, hitn_b);
                    }
                    if a_done && !b_done {
                        hot_a = hot_b;
                        ba = bb;
                        ssa = ssb;
                        sla = slb;
                        cura = curb;
                        stepsa = stepsb;
                        lefta = leftb;
                        tagsa = tagsb;
                        hits_a = hits_b;
                        hitn_a = hitn_b;
                    } else if a_done && b_done {
                        match next_lane(&mut subs, chains, pending) {
                            Some((h, b2, ss2, sl2, cu2, l2, t2)) => {
                                hot_a = h;
                                ba = b2;
                                ssa = ss2;
                                sla = sl2;
                                cura = cu2;
                                stepsa = 0;
                                lefta = l2;
                                tagsa = t2;
                                hits_a = [0; HIT_CAP];
                                hitn_a = 0;
                            }
                            None => break 'pairs,
                        }
                    }
                    break;
                }
            }
        }
    }

    // Phase 3: replay each run in batch order against the live cache.
    for w in walks.iter() {
        let b = w.bucket as usize;
        let chain = &chains[b];
        let chain_len = chain.len() as u32;
        let cache = &mut caches[b];
        for &(_, idx) in &order[w.run_start as usize..w.run_end as usize] {
            let idx = idx as usize;
            let key = keys[idx].0;
            if let Some((ck, id)) = *cache {
                if ck == key {
                    stats.record(1, true, true);
                    out[idx] = LookupResult {
                        pcb: Some(id),
                        examined: 1,
                        cache_hit: true,
                    };
                    continue;
                }
            }
            let probe = u32::from(cache.is_some());
            let slot = pend_of[idx];
            let found = if slot != u32::MAX {
                pending[slot as usize].found
            } else {
                // A peeled cache-prefix occurrence that missed the cache
                // after all — only possible if the cache moved mid-run,
                // which the peel's guarantee rules out. Resolve directly
                // rather than trust the invariant.
                let (found, scanned) = chain.find(&key);
                found.map(|id| (id, scanned))
            };
            match found {
                Some((id, pos)) => {
                    let examined = probe + pos;
                    if cache_enabled {
                        *cache = Some((key, id));
                    }
                    stats.record(examined, true, false);
                    out[idx] = LookupResult {
                        pcb: Some(id),
                        examined,
                        cache_hit: false,
                    };
                }
                None => {
                    let examined = probe + chain_len;
                    stats.record(examined, false, false);
                    out[idx] = LookupResult::miss(examined);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::key;

    #[test]
    fn bucket_index_round_trips_in_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(19), 19);
        assert_eq!(bucket_index(u32::MAX as usize), u32::MAX);
    }

    // `debug_assert!` only fires in debug builds, and only a 64-bit
    // usize can even represent the overflowing value.
    #[cfg(debug_assertions)]
    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn bucket_index_rejects_truncation() {
        let _ = bucket_index(u32::MAX as usize + 1);
    }

    fn batch(n: u32) -> Vec<(ConnectionKey, PacketKind)> {
        (0..n).map(|i| (key(i * 7 + 3), PacketKind::Data)).collect()
    }

    #[test]
    fn counted_grouping_matches_sorted_grouping() {
        // Small table: the counting-sort path.
        let keys = batch(100);
        let chains = 19usize;
        let bucket = |k: &ConnectionKey| (k.as_words()[2] as usize) % chains;
        let mut scratch = BatchScratch::default();
        group_by_bucket_counted(&mut scratch, &keys, chains, bucket);
        let mut sorted = Vec::new();
        group_by_bucket(&mut sorted, &keys, bucket);
        assert_eq!(scratch.order, sorted);

        // Huge sparse table relative to the batch: the fallback path.
        let keys = batch(4);
        let chains = 1 << 16;
        let bucket = |k: &ConnectionKey| (k.as_words()[2] as usize) % chains;
        group_by_bucket_counted(&mut scratch, &keys, chains, bucket);
        group_by_bucket(&mut sorted, &keys, bucket);
        assert_eq!(scratch.order, sorted);

        // Empty batch: both paths produce an empty grouping.
        group_by_bucket_counted(&mut scratch, &[], 19, bucket);
        assert!(scratch.order.is_empty());
    }
}

#[cfg(test)]
mod walk_experiment {
    //! Timing probes behind the phase-2 walk engine's design, kept as
    //! runnable evidence for the analysis in EXPERIMENTS.md A1b and
    //! DESIGN.md §9. Ignored by default; run with
    //! `cargo test --release -p tcpdemux-core --lib -- walk_ --ignored --nocapture`
    //! (wall-clock timing, so expect heavy noise on shared machines).

    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    const NIL: u32 = u32::MAX;

    struct Chain {
        hot: Vec<u64>,
        head: u32,
        order: Vec<u32>, // order[pos] = slot at 0-based chain position
    }

    fn tag_of(chain: usize, slot: u32) -> u32 {
        ((chain as u32) << 24) ^ slot.wrapping_mul(0x9E37_79B9) | 1
    }

    fn build(rng: &mut Lcg, chain_idx: usize, len: usize) -> Chain {
        // Random slot permutation so `next` pointers jump around the lane
        // like a churned arena.
        let mut order: Vec<u32> = (0..len as u32).collect();
        for i in (1..len).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let mut hot = vec![0u64; len];
        for p in 0..len {
            let slot = order[p];
            let next = if p + 1 < len { order[p + 1] } else { NIL };
            hot[slot as usize] = ((tag_of(chain_idx, slot) as u64) << 32) | next as u64;
        }
        Chain {
            hot,
            head: order[0],
            order,
        }
    }

    #[test]
    #[ignore]
    fn walk_timing() {
        use std::time::Instant;
        let mut rng = Lcg(0xBA7C_2026);
        const CHAINS: usize = 19;
        const LEN: usize = 105;
        const BATCH: usize = 32;
        const ROUNDS: usize = 4000;
        let chains: Vec<Chain> = (0..CHAINS).map(|c| build(&mut rng, c, LEN)).collect();

        // Pre-grouped rounds: per round, per chain, the target tags.
        // groups[r] = Vec<(chain, Vec<tag>)>
        let mut groups: Vec<Vec<(usize, Vec<u32>)>> = Vec::with_capacity(ROUNDS);
        let mut total_keys = 0usize;
        for _ in 0..ROUNDS {
            let mut per_chain: Vec<Vec<u32>> = vec![Vec::new(); CHAINS];
            for _ in 0..BATCH {
                let c = rng.below(CHAINS as u64) as usize;
                let pos = rng.below(LEN as u64) as usize;
                let slot = chains[c].order[pos];
                let tag = tag_of(c, slot);
                if !per_chain[c].contains(&tag) {
                    per_chain[c].push(tag);
                    total_keys += 1;
                }
            }
            groups.push(
                per_chain
                    .into_iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_empty())
                    .collect(),
            );
        }

        // A: serial single-tag walk per key.
        let t = Instant::now();
        let mut sink = 0u64;
        for g in &groups {
            for (c, tags) in g {
                let hot = &chains[*c].hot;
                for &tag in tags {
                    let mut cur = chains[*c].head;
                    let mut steps = 0u32;
                    while cur != NIL {
                        let w = hot[cur as usize];
                        steps += 1;
                        if (w >> 32) as u32 == tag {
                            break;
                        }
                        cur = w as u32;
                    }
                    sink = sink.wrapping_add(steps as u64);
                }
            }
        }
        let a = t.elapsed();
        println!(
            "A serial/key   : {:7.2} ns/key  (sink {sink})",
            a.as_nanos() as f64 / total_keys as f64
        );

        // B: shared walk per chain, up-to-4-tag filter.
        let t = Instant::now();
        let mut sink_b = 0u64;
        for g in &groups {
            for (c, tags) in g {
                let hot = &chains[*c].hot;
                let mut f = [0u32; 4];
                for (i, s) in f.iter_mut().enumerate() {
                    *s = tags[i.min(tags.len() - 1)];
                }
                let mut left = tags.len();
                let mut cur = chains[*c].head;
                let mut steps = 0u32;
                while cur != NIL && left > 0 {
                    let w = hot[cur as usize];
                    let s = (w >> 32) as u32;
                    steps += 1;
                    if (s == f[0]) | (s == f[1]) | (s == f[2]) | (s == f[3]) {
                        left -= 1;
                        sink_b = sink_b.wrapping_add(steps as u64);
                    }
                    cur = w as u32;
                }
            }
        }
        let b = t.elapsed();
        println!(
            "B shared/chain : {:7.2} ns/key  (sink {sink_b})",
            b.as_nanos() as f64 / total_keys as f64
        );

        // C2: 2-way lock-step, all-scalar lane state.
        let t = Instant::now();
        let mut sink_c = 0u64;
        for g in &groups {
            let mut it = g.iter().map(|(c, tags)| {
                let mut f = [0u32; 4];
                for (i, s) in f.iter_mut().enumerate() {
                    *s = tags[i.min(tags.len() - 1)];
                }
                (*c, f, tags.len().min(4) as u32, chains[*c].head)
            });
            let Some((mut ca, mut fa, mut la, mut cua)) = it.next() else {
                continue;
            };
            let mut sta = 0u32;
            'outer: loop {
                let Some((cb, fb, mut lb, mut cub)) = it.next() else {
                    // drain lane a serially
                    let hot = &chains[ca].hot;
                    while cua != NIL && la > 0 {
                        let w = hot[cua as usize];
                        let s = (w >> 32) as u32;
                        sta += 1;
                        if (s == fa[0]) | (s == fa[1]) | (s == fa[2]) | (s == fa[3]) {
                            la -= 1;
                            sink_c = sink_c.wrapping_add(sta as u64);
                        }
                        cua = w as u32;
                    }
                    break 'outer;
                };
                let mut stb = 0u32;
                let hot_a = &chains[ca].hot[..];
                let hot_b = &chains[cb].hot[..];
                loop {
                    let wa = hot_a[cua as usize];
                    let wb = hot_b[cub as usize];
                    let sa = (wa >> 32) as u32;
                    let sb = (wb >> 32) as u32;
                    sta += 1;
                    stb += 1;
                    if (sa == fa[0]) | (sa == fa[1]) | (sa == fa[2]) | (sa == fa[3]) {
                        la -= 1;
                        sink_c = sink_c.wrapping_add(sta as u64);
                    }
                    if (sb == fb[0]) | (sb == fb[1]) | (sb == fb[2]) | (sb == fb[3]) {
                        lb -= 1;
                        sink_c = sink_c.wrapping_add(stb as u64);
                    }
                    cua = wa as u32;
                    cub = wb as u32;
                    let a_done = cua == NIL || la == 0;
                    let b_done = cub == NIL || lb == 0;
                    if a_done | b_done {
                        if a_done && !b_done {
                            ca = cb;
                            fa = fb;
                            la = lb;
                            cua = cub;
                            sta = stb;
                        } else if a_done && b_done {
                            match it.next() {
                                Some((c2, f2, l2, cu2)) => {
                                    ca = c2;
                                    fa = f2;
                                    la = l2;
                                    cua = cu2;
                                    sta = 0;
                                }
                                None => break 'outer,
                            }
                        }
                        break;
                    }
                }
            }
        }
        let c_el = t.elapsed();
        println!(
            "C2 pair scalar : {:7.2} ns/key  (sink {sink_c})",
            c_el.as_nanos() as f64 / total_keys as f64
        );

        // E: 4-way lock-step, all-scalar lanes, run until ALL retire,
        // refilling a retired lane immediately (retired lanes spin on a
        // parked 1-entry dummy when the iterator is dry).
        let t = Instant::now();
        let mut sink_e = 0u64;
        for g in &groups {
            let mut it = g.iter().map(|(c, tags)| {
                let mut f = [0u32; 4];
                for (i, s) in f.iter_mut().enumerate() {
                    *s = tags[i.min(tags.len() - 1)];
                }
                (*c, f, tags.len().min(4) as u32, chains[*c].head)
            });
            // lane state
            let mut lanes: [(usize, [u32; 4], u32, u32, u32); 4] = [(0, [0; 4], 0, NIL, 0); 4];
            let mut n_active = 0usize;
            for lane in lanes.iter_mut() {
                match it.next() {
                    Some((c, f, l, cu)) => {
                        *lane = (c, f, l, cu, 0);
                        n_active += 1;
                    }
                    None => break,
                }
            }
            while n_active > 0 {
                // one lock-step round: issue the active loads back-to-back
                let w0 = if lanes[0].3 != NIL {
                    chains[lanes[0].0].hot[lanes[0].3 as usize]
                } else {
                    NIL as u64
                };
                let w1 = if lanes[1].3 != NIL {
                    chains[lanes[1].0].hot[lanes[1].3 as usize]
                } else {
                    NIL as u64
                };
                let w2 = if lanes[2].3 != NIL {
                    chains[lanes[2].0].hot[lanes[2].3 as usize]
                } else {
                    NIL as u64
                };
                let w3 = if lanes[3].3 != NIL {
                    chains[lanes[3].0].hot[lanes[3].3 as usize]
                } else {
                    NIL as u64
                };
                for (lane, w) in lanes.iter_mut().zip([w0, w1, w2, w3]) {
                    if lane.3 == NIL {
                        continue;
                    }
                    let s = (w >> 32) as u32;
                    lane.4 += 1;
                    let f = &lane.1;
                    if (s == f[0]) | (s == f[1]) | (s == f[2]) | (s == f[3]) {
                        lane.2 -= 1;
                        sink_e = sink_e.wrapping_add(lane.4 as u64);
                    }
                    lane.3 = if lane.2 == 0 { NIL } else { w as u32 };
                    if lane.3 == NIL {
                        match it.next() {
                            Some((c, f, l, cu)) => *lane = (c, f, l, cu, 0),
                            None => n_active -= 1,
                        }
                    }
                }
            }
        }
        let e_el = t.elapsed();
        println!(
            "E quad rr      : {:7.2} ns/key  (sink {sink_e})",
            e_el.as_nanos() as f64 / total_keys as f64
        );
        let _ = sink;
    }

    #[test]
    #[ignore]
    fn engine_timing() {
        use crate::list::PcbList;
        use crate::test_util::key;
        use crate::LookupResult;
        use std::time::Instant;
        const CHAINS: usize = 19;
        const CONNS: u32 = 2000;
        const BATCH: usize = 32;
        const STREAM: usize = 40000;
        let bucket = |k: &tcpdemux_pcb::ConnectionKey| (k.as_words()[2] as usize) % CHAINS;
        let mut rng = Lcg(0x5EED);
        let mut chains: Vec<PcbList> = (0..CHAINS).map(|_| PcbList::new()).collect();
        let keys: Vec<_> = (0..CONNS).map(key).collect();
        for (i, k) in keys.iter().enumerate() {
            chains[bucket(k)].push_back(*k, tcpdemux_pcb::PcbId::from_bits(i as u64));
        }
        let stream: Vec<(tcpdemux_pcb::ConnectionKey, crate::PacketKind)> = (0..STREAM)
            .map(|_| {
                (
                    keys[rng.below(CONNS as u64) as usize],
                    crate::PacketKind::Data,
                )
            })
            .collect();

        // H: sequential-equivalent loop (cache + find + stats).
        let mut caches: Vec<Option<(tcpdemux_pcb::ConnectionKey, tcpdemux_pcb::PcbId)>> =
            vec![None; CHAINS];
        let mut stats = crate::stats::LookupStats::new();
        let t = Instant::now();
        for (k, _) in &stream {
            let b = bucket(k);
            if let Some((ck, _)) = caches[b] {
                if ck == *k {
                    stats.record(1, true, true);
                    continue;
                }
            }
            let probe = u32::from(caches[b].is_some());
            let (found, scanned) = chains[b].find(k);
            match found {
                Some(id) => {
                    caches[b] = Some((*k, id));
                    stats.record(probe + scanned, true, false);
                }
                None => stats.record(probe + scanned, false, false),
            }
        }
        let h = t.elapsed();
        println!(
            "H sequential   : {:7.2} ns/key  (mean_examined {:.1})",
            h.as_nanos() as f64 / STREAM as f64,
            stats.mean_examined()
        );

        // G: grouping alone.
        let mut scratch = BatchScratch::default();
        let t = Instant::now();
        for chunk in stream.chunks(BATCH) {
            group_by_bucket_counted(&mut scratch, chunk, CHAINS, |k| bucket(k));
        }
        let g = t.elapsed();
        println!(
            "G grouping     : {:7.2} ns/key",
            g.as_nanos() as f64 / STREAM as f64
        );

        // F: full engine.
        let mut caches: Vec<Option<(tcpdemux_pcb::ConnectionKey, tcpdemux_pcb::PcbId)>> =
            vec![None; CHAINS];
        let mut stats = crate::stats::LookupStats::new();
        let mut out: Vec<LookupResult> = Vec::new();
        let t = Instant::now();
        for chunk in stream.chunks(BATCH) {
            out.clear();
            out.resize(chunk.len(), LookupResult::miss(0));
            group_by_bucket_counted(&mut scratch, chunk, CHAINS, |k| bucket(k));
            interleaved_batch_lookup(
                &chains,
                &mut caches,
                true,
                &mut scratch,
                chunk,
                &mut out,
                &mut stats,
            );
        }
        let f = t.elapsed();
        println!(
            "F full engine  : {:7.2} ns/key  (mean_examined {:.1})",
            f.as_nanos() as f64 / STREAM as f64,
            stats.mean_examined()
        );
    }
}
