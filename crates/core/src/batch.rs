//! Shared machinery for batched lookups over hash chains.
//!
//! The batched receive path hands the demultiplexer a whole burst of
//! arriving keys at once ([`crate::Demux::lookup_batch`]). For the hashed
//! structures the win comes from grouping the batch's keys by chain before
//! scanning: each chain's headers are pulled into cache once and every key
//! destined for that chain is resolved against the same walk, instead of
//! re-scanning from the head per packet.
//!
//! Correctness requirement (pinned by the batch≡sequential property test):
//! the results, the per-lookup `examined` counts, and the accumulated
//! [`LookupStats`] must be *identical* to looking each key up sequentially
//! in batch order. That holds because a lookup-only batch never reorders a
//! Sequent chain — positions are stable — and chains are independent: a
//! key's outcome depends only on earlier keys in the *same* chain, whose
//! relative order the stable grouping preserves.

use crate::list::PcbList;
use crate::stats::LookupStats;
use crate::{LookupResult, PacketKind};
use tcpdemux_pcb::{ConnectionKey, PcbId};

/// Reusable scratch space for grouping a batch by chain, owned by the
/// hashed demultiplexers so steady-state batches allocate nothing once
/// the buffers have grown to the working-set size.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// `(bucket, key index)` pairs, grouped by bucket.
    pub order: Vec<(u32, u32)>,
    /// The prefix of the current chain scanned so far.
    pub scanned: Vec<(ConnectionKey, PcbId)>,
}

/// Fill `order` with `(bucket, index)` for every key and stably sort by
/// bucket, preserving batch order within each chain's group.
pub(crate) fn group_by_bucket(
    order: &mut Vec<(u32, u32)>,
    keys: &[(ConnectionKey, PacketKind)],
    mut bucket: impl FnMut(&ConnectionKey) -> usize,
) {
    order.clear();
    order.reserve(keys.len());
    for (i, (key, _)) in keys.iter().enumerate() {
        order.push((bucket(key) as u32, i as u32));
    }
    // Sorting the (bucket, index) pair makes the unstable sort behave
    // stably (indices are unique) without the stable sort's scratch
    // allocation — this runs per batch on the hot receive path.
    order.sort_unstable();
}

/// Resolve one chain's group of keys against a single walk of the chain.
///
/// Replays the exact sequential semantics of the Sequent lookup: a cache
/// probe costs 1 (hit ends the lookup), a scan's cost is the key's 1-based
/// chain position (or the full chain length on a miss) plus the probe, and
/// every successful scan refreshes the cache when `cache_enabled`. The
/// chain itself is walked at most once per group; keys whose position was
/// already passed are answered from the `scanned` prefix.
///
/// `group` yields indices into `keys`/`out` in batch order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn chain_group_lookup(
    chain: &PcbList,
    cache: &mut Option<(ConnectionKey, PcbId)>,
    cache_enabled: bool,
    scanned: &mut Vec<(ConnectionKey, PcbId)>,
    group: impl Iterator<Item = usize>,
    keys: &[(ConnectionKey, PacketKind)],
    out: &mut [LookupResult],
    stats: &mut LookupStats,
) {
    let mut walk = chain.iter();
    let mut exhausted = false;
    scanned.clear();
    for idx in group {
        let key = keys[idx].0;
        if let Some((ck, id)) = *cache {
            if ck == key {
                stats.record(1, true, true);
                out[idx] = LookupResult {
                    pcb: Some(id),
                    examined: 1,
                    cache_hit: true,
                };
                continue;
            }
        }
        let probe = u32::from(cache.is_some());
        let mut found: Option<(PcbId, u32)> = None;
        for (pos, (sk, sid)) in scanned.iter().enumerate() {
            if *sk == key {
                found = Some((*sid, pos as u32 + 1));
                break;
            }
        }
        if found.is_none() && !exhausted {
            loop {
                match walk.next() {
                    Some((k, i)) => {
                        scanned.push((k, i));
                        if k == key {
                            found = Some((i, scanned.len() as u32));
                            break;
                        }
                    }
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
        }
        match found {
            Some((id, pos)) => {
                let examined = probe + pos;
                if cache_enabled {
                    *cache = Some((key, id));
                }
                stats.record(examined, true, false);
                out[idx] = LookupResult {
                    pcb: Some(id),
                    examined,
                    cache_hit: false,
                };
            }
            None => {
                let examined = probe + scanned.len() as u32;
                stats.record(examined, false, false);
                out[idx] = LookupResult::miss(examined);
            }
        }
    }
}
