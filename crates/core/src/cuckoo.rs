//! A cache-line-bucketed cuckoo hash demultiplexer.
//!
//! The paper's chained structures bound the *expected* walk, but at
//! production flow counts (10⁶–10⁷ connections) chains grow with N/H and
//! the tail walk grows with them. Cuckoo hashing inverts the trade: every
//! key has exactly **two** candidate buckets, so a lookup touches at most
//! two cache lines no matter how large the table gets — the bounded-probe
//! property Cuckoo++-style connection trackers rely on. The costs move to
//! the insert path, where a full bucket displaces ("kicks") a resident
//! entry to its alternate bucket, and a failed bounded search for a
//! vacancy (an *eviction loop*) forces the table to grow.
//!
//! # Bucket layout
//!
//! [`CuckooDemux`] packs each 4-way bucket into one 64-byte cache line:
//! four 12-byte connection keys, four 8-bit tags, and an occupancy
//! bitmask. The tag is an independent byte of the key's hash, checked
//! before the full 12-byte compare — a lookup's `examined` count is the
//! number of **full key comparisons** it performs, i.e. the number of
//! occupied slots whose tag matched. Tag collisions among the ≤ 8
//! candidate slots are rare, so hits typically examine exactly 1 PCB and
//! misses usually examine 0, independent of table size. PCB handles live
//! in a parallel cold array touched only after a confirmed match, keeping
//! the probe path to the two key lines.
//!
//! # Alternate bucket and growth
//!
//! The alternate bucket is derived from the *tag*, not the full hash
//! (`alt = bucket ^ spread(tag)`), so a kick can relocate a resident
//! entry without rehashing its key — the displacement path never touches
//! the cold lane until the move is committed. Inserts use a bounded BFS
//! over displacement paths (shortest kick chain first); if the frontier
//! exhausts without finding a vacancy, that is an eviction loop: the
//! table doubles and rehashes. Growth is also triggered proactively above
//! 15/16 occupancy. Kicks, eviction loops, and per-insert kick-path
//! lengths surface through [`tcpdemux_telemetry`] counters.
//!
//! # Concurrent variant
//!
//! [`ConcurrentCuckooDemux`] keeps the same two-bucket invariant with
//! lock-free readers: each bucket carries a seqlock version word, readers
//! snapshot both candidate buckets under a [`crate::epoch`] pin, and a
//! table-wide displacement version validates misses (a kick writes the
//! destination copy before clearing the source, so an entry is never
//! *absent*, but a reader probing b1→b2 while an entry moves b2→b1 could
//! miss both copies — the version check detects the race and retries).
//! Writers serialize behind one table mutex; growth publishes a fresh
//! generation and retires the old one to the epoch runtime, which wipes
//! it after a grace period so stale readers fail loudly in tests.

use crate::epoch::{EpochRuntime, ReclamationStats};
use crate::prefetch::prefetch_read;
use crate::stats::{AtomicLookupStats, LookupStats};
use crate::{Demux, LookupResult, PacketKind};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use tcpdemux_pcb::{ConnectionKey, PcbId};
use tcpdemux_telemetry::{CounterId, Recorder};

/// Slots per bucket. Four 12-byte keys + tags + occupancy fit one line.
const WAYS: usize = 4;
/// Starting bucket count (32 slots); doubles on growth.
const INITIAL_BUCKETS: usize = 8;
/// Bound on the BFS displacement frontier. 2 roots expanded 4-way three
/// levels deep stay inside this; exhausting it is the eviction-loop
/// signal that forces a grow.
const BFS_CAP: usize = 192;
/// Grow when occupancy would exceed 15/16 of capacity.
const OCCUPANCY_NUM: usize = 15;
const OCCUPANCY_DEN: usize = 16;

/// SplitMix64 finalizer-style mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// 64-bit hash of a connection key's three words. The low bits pick the
/// home bucket; the top byte is the tag. Shared with [`crate::front`],
/// whose fingerprint draws on a disjoint bit range of the same hash.
pub(crate) fn hash_words(words: [u32; 3]) -> u64 {
    let x = mix64((u64::from(words[0]) << 32) | u64::from(words[1]));
    mix64(x ^ u64::from(words[2]))
}

/// Home bucket and tag for a hash under `mask` (= buckets − 1).
fn home(h: u64, mask: usize) -> (usize, u8) {
    ((h as usize) & mask, (h >> 56) as u8)
}

/// The alternate bucket: `b ^ spread(tag)`. The spread multiplier mixes
/// the 8 tag bits across the index range; `| 1` keeps the xor delta
/// nonzero under any mask, so the two candidate buckets are always
/// distinct. An involution: `alt(alt(b)) == b`.
fn alt(b: usize, tag: u8, mask: usize) -> usize {
    b ^ (((usize::from(tag)).wrapping_mul(0x5bd1_e995) | 1) & mask)
}

/// One cache line: four key slots with their tags and an occupancy mask.
#[derive(Clone)]
#[repr(align(64))]
struct Bucket {
    keys: [[u32; 3]; WAYS],
    tags: [u8; WAYS],
    used: u8,
}

impl Bucket {
    fn empty() -> Self {
        Self {
            keys: [[0; 3]; WAYS],
            tags: [0; WAYS],
            used: 0,
        }
    }

    fn free_way(&self) -> Option<usize> {
        (0..WAYS).find(|w| self.used & (1 << w) == 0)
    }
}

/// One BFS frontier node: a candidate bucket plus the slot in its parent
/// bucket whose occupant leads here.
#[derive(Clone, Copy)]
struct Node {
    bucket: u32,
    parent: u32,
    way: u8,
}

const NO_PARENT: u32 = u32::MAX;

/// Insert-path counters for the cuckoo tier (kept separately from
/// [`LookupStats`], which covers the lookup side of every tier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CuckooStats {
    /// Entries displaced to their alternate bucket, including moves
    /// performed while rehashing into a grown table.
    pub kicks: u64,
    /// Inserts whose bounded displacement search found no vacancy.
    pub eviction_loops: u64,
    /// Times the table doubled and rehashed.
    pub grows: u64,
    /// Longest single-insert kick path seen.
    pub max_kick_path: u32,
}

/// The hot/cold storage: hot tag+key buckets, cold PCB-handle lane.
struct Table {
    buckets: Vec<Bucket>,
    /// `buckets.len() * WAYS` packed [`PcbId`] bits, read only after a
    /// confirmed key match.
    ids: Vec<u64>,
    mask: usize,
}

impl Table {
    fn with_buckets(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        Self {
            buckets: vec![Bucket::empty(); n],
            ids: vec![0; n * WAYS],
            mask: n - 1,
        }
    }

    fn capacity(&self) -> usize {
        self.buckets.len() * WAYS
    }

    fn set(&mut self, b: usize, w: usize, words: [u32; 3], tag: u8, idbits: u64) {
        let bucket = &mut self.buckets[b];
        bucket.keys[w] = words;
        bucket.tags[w] = tag;
        bucket.used |= 1 << w;
        self.ids[b * WAYS + w] = idbits;
    }

    fn clear(&mut self, b: usize, w: usize) {
        self.buckets[b].used &= !(1 << w);
    }

    /// Find the slot holding exactly `words`, if present.
    fn locate(&self, words: [u32; 3], tag: u8, b1: usize) -> Option<(usize, usize)> {
        for b in [b1, alt(b1, tag, self.mask)] {
            let bucket = &self.buckets[b];
            for w in 0..WAYS {
                if bucket.used & (1 << w) != 0 && bucket.tags[w] == tag && bucket.keys[w] == words {
                    return Some((b, w));
                }
            }
        }
        None
    }

    /// Probe both candidate buckets, counting full key compares.
    fn probe(&self, words: [u32; 3], h: u64) -> LookupResult {
        let (b1, tag) = home(h, self.mask);
        let mut examined = 0u32;
        for b in [b1, alt(b1, tag, self.mask)] {
            let bucket = &self.buckets[b];
            for w in 0..WAYS {
                if bucket.used & (1 << w) != 0 && bucket.tags[w] == tag {
                    examined += 1;
                    if bucket.keys[w] == words {
                        return LookupResult {
                            pcb: Some(PcbId::from_bits(self.ids[b * WAYS + w])),
                            examined,
                            cache_hit: false,
                        };
                    }
                }
            }
        }
        LookupResult::miss(examined)
    }

    /// Place a new entry, displacing residents along a shortest kick path
    /// if both candidate buckets are full. `Err` means the bounded search
    /// exhausted without a vacancy — an eviction loop.
    fn try_place(&mut self, words: [u32; 3], tag: u8, b1: usize, idbits: u64) -> Result<u32, ()> {
        if let Some(w) = self.buckets[b1].free_way() {
            self.set(b1, w, words, tag, idbits);
            return Ok(0);
        }
        let b2 = alt(b1, tag, self.mask);
        if let Some(w) = self.buckets[b2].free_way() {
            self.set(b2, w, words, tag, idbits);
            return Ok(0);
        }

        // BFS over displacement paths: each node is a bucket reachable by
        // kicking one resident of its parent; the first node with a free
        // slot gives the shortest kick chain.
        let mut queue: Vec<Node> = Vec::with_capacity(BFS_CAP);
        queue.push(Node {
            bucket: b1 as u32,
            parent: NO_PARENT,
            way: 0,
        });
        queue.push(Node {
            bucket: b2 as u32,
            parent: NO_PARENT,
            way: 0,
        });
        let mut qi = 0;
        while qi < queue.len() {
            let bucket = queue[qi].bucket as usize;
            if self.buckets[bucket].free_way().is_some() {
                if let Some(kicks) = self.apply_path(&queue, qi, words, tag, idbits) {
                    return Ok(kicks);
                }
                // Degenerate path (same slot twice); keep searching.
            }
            if queue.len() < BFS_CAP {
                let used = self.buckets[bucket].used;
                for w in 0..WAYS {
                    if used & (1 << w) == 0 {
                        continue;
                    }
                    let t = self.buckets[bucket].tags[w];
                    queue.push(Node {
                        bucket: alt(bucket, t, self.mask) as u32,
                        parent: qi as u32,
                        way: w as u8,
                    });
                    if queue.len() >= BFS_CAP {
                        break;
                    }
                }
            }
            qi += 1;
        }
        Err(())
    }

    /// Perform the kick chain ending at `queue[leaf]` (which has a free
    /// slot), leaf-first so every move lands in an already-free slot,
    /// then write the new entry into the freed root slot. Returns `None`
    /// without mutating if the path visits the same slot twice (the
    /// leaf-first order would read a slot it already overwrote).
    fn apply_path(
        &mut self,
        queue: &[Node],
        leaf: usize,
        words: [u32; 3],
        tag: u8,
        idbits: u64,
    ) -> Option<u32> {
        let free = self.buckets[queue[leaf].bucket as usize].free_way()?;
        // (bucket, way) source of each move, leaf-most first.
        let mut chain: Vec<(usize, usize)> = Vec::new();
        let mut cur = leaf;
        while queue[cur].parent != NO_PARENT {
            let parent = queue[cur].parent as usize;
            chain.push((queue[parent].bucket as usize, queue[cur].way as usize));
            cur = parent;
        }
        for i in 0..chain.len() {
            for j in (i + 1)..chain.len() {
                if chain[i] == chain[j] {
                    return None;
                }
            }
        }
        let mut dest = (queue[leaf].bucket as usize, free);
        let mut kicks = 0u32;
        for &(sb, sw) in &chain {
            let mwords = self.buckets[sb].keys[sw];
            let mtag = self.buckets[sb].tags[sw];
            let mid = self.ids[sb * WAYS + sw];
            debug_assert!(self.buckets[sb].used & (1 << sw) != 0);
            debug_assert_eq!(alt(sb, mtag, self.mask), dest.0);
            self.set(dest.0, dest.1, mwords, mtag, mid);
            self.clear(sb, sw);
            dest = (sb, sw);
            kicks += 1;
        }
        self.set(dest.0, dest.1, words, tag, idbits);
        Some(kicks)
    }

    /// Rehash every resident entry into a fresh table of `n` buckets.
    /// `None` if even the larger table hit an eviction loop (the caller
    /// retries with `2n`).
    fn rehash(&self, n: usize) -> Option<(Table, u64)> {
        let mut next = Table::with_buckets(n);
        let mut kicks = 0u64;
        for b in 0..self.buckets.len() {
            let bucket = &self.buckets[b];
            for w in 0..WAYS {
                if bucket.used & (1 << w) == 0 {
                    continue;
                }
                let words = bucket.keys[w];
                let h = hash_words(words);
                let (b1, tag) = home(h, next.mask);
                match next.try_place(words, tag, b1, self.ids[b * WAYS + w]) {
                    Ok(k) => kicks += u64::from(k),
                    Err(()) => return None,
                }
            }
        }
        Some((next, kicks))
    }
}

/// The bounded-probe cuckoo tier: at most two cache lines per lookup at
/// any table size. See the module docs for layout and growth policy.
pub struct CuckooDemux {
    table: Table,
    len: usize,
    stats: LookupStats,
    cstats: CuckooStats,
    recorder: Option<Recorder>,
    /// Reusable per-batch hash scratch.
    scratch: Vec<u64>,
}

impl Default for CuckooDemux {
    fn default() -> Self {
        Self::new()
    }
}

impl CuckooDemux {
    /// An empty table of [`INITIAL_BUCKETS`] buckets.
    pub fn new() -> Self {
        Self {
            table: Table::with_buckets(INITIAL_BUCKETS),
            len: 0,
            stats: LookupStats::new(),
            cstats: CuckooStats::default(),
            recorder: None,
            scratch: Vec::new(),
        }
    }

    /// Route insert-path telemetry (kicks, eviction loops, kick-path
    /// histogram) to `recorder`.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Insert-path counters (kicks, eviction loops, grows).
    pub fn kick_stats(&self) -> CuckooStats {
        self.cstats
    }

    /// Current bucket count (a power of two; grows on demand).
    pub fn bucket_count(&self) -> usize {
        self.table.buckets.len()
    }

    fn grow(&mut self) {
        let mut n = self.table.buckets.len() * 2;
        loop {
            if let Some((next, kicks)) = self.table.rehash(n) {
                self.table = next;
                self.cstats.grows += 1;
                self.cstats.kicks += kicks;
                if let Some(r) = &self.recorder {
                    r.add(CounterId::CuckooKicks, kicks);
                }
                return;
            }
            n *= 2;
        }
    }
}

impl Demux for CuckooDemux {
    fn insert(&mut self, key: ConnectionKey, id: PcbId) {
        let words = key.as_words();
        let h = hash_words(words);
        let (b1, tag) = home(h, self.table.mask);
        if let Some((b, w)) = self.table.locate(words, tag, b1) {
            self.table.ids[b * WAYS + w] = id.to_bits();
            return;
        }
        if (self.len + 1) * OCCUPANCY_DEN > self.table.capacity() * OCCUPANCY_NUM {
            self.grow();
        }
        let kicks = loop {
            let (b1, tag) = home(h, self.table.mask);
            match self.table.try_place(words, tag, b1, id.to_bits()) {
                Ok(k) => break k,
                Err(()) => {
                    self.cstats.eviction_loops += 1;
                    if let Some(r) = &self.recorder {
                        r.cuckoo_insert(0, true);
                    }
                    self.grow();
                }
            }
        };
        self.len += 1;
        self.cstats.kicks += u64::from(kicks);
        self.cstats.max_kick_path = self.cstats.max_kick_path.max(kicks);
        if let Some(r) = &self.recorder {
            r.cuckoo_insert(kicks, false);
        }
    }

    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId> {
        let words = key.as_words();
        let (b1, tag) = home(hash_words(words), self.table.mask);
        let (b, w) = self.table.locate(words, tag, b1)?;
        let idbits = self.table.ids[b * WAYS + w];
        self.table.clear(b, w);
        self.len -= 1;
        Some(PcbId::from_bits(idbits))
    }

    fn lookup(&mut self, key: &ConnectionKey, _kind: PacketKind) -> LookupResult {
        let words = key.as_words();
        let r = self.table.probe(words, hash_words(words));
        self.stats.record(r.examined, r.pcb.is_some(), false);
        r
    }

    /// Single-probe batch: hash every key and prefetch both candidate
    /// buckets first (turning dependent misses into overlapping ones),
    /// then resolve. Identical results and statistics to the sequential
    /// loop — the probe itself is shared.
    fn lookup_batch(&mut self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        out.clear();
        out.reserve(keys.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for (key, _) in keys {
            let h = hash_words(key.as_words());
            let (b1, tag) = home(h, self.table.mask);
            prefetch_read(&self.table.buckets[b1]);
            prefetch_read(&self.table.buckets[alt(b1, tag, self.table.mask)]);
            scratch.push(h);
        }
        for (i, (key, _)) in keys.iter().enumerate() {
            let r = self.table.probe(key.as_words(), scratch[i]);
            self.stats.record(r.examined, r.pcb.is_some(), false);
            out.push(r);
        }
        self.scratch = scratch;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> String {
        "cuckoo".to_string()
    }

    fn stats(&self) -> &LookupStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LookupStats::new();
    }
}

// ---------------------------------------------------------------------
// Concurrent variant: seqlocked buckets under an epoch pin.
// ---------------------------------------------------------------------

/// Concurrent generations the table can grow through. Generation `g` has
/// `INITIAL_BUCKETS << g` buckets; the last is ~64 M slots.
const CONC_MAX_GENERATIONS: usize = 21;
/// Slot-word 0 bit marking the slot occupied (above tag bits 32..40).
const OCC: u64 = 1 << 40;
/// Wiped-generation poison: slots read as unoccupied, cold words read as
/// garbage, so a reader that outlives the grace period fails loudly.
const POISON: u64 = 0xdead_beef_dead_beef;

/// One slot as three atomic words: `w0` = occupied | tag | key word a,
/// `w1` = key words b·c, `w2` = packed [`PcbId`] bits.
struct ConcSlot {
    w0: AtomicU64,
    w1: AtomicU64,
    w2: AtomicU64,
}

impl ConcSlot {
    fn empty() -> Self {
        Self {
            w0: AtomicU64::new(0),
            w1: AtomicU64::new(0),
            w2: AtomicU64::new(0),
        }
    }
}

fn pack_w0(tag: u8, words: [u32; 3]) -> u64 {
    OCC | (u64::from(tag) << 32) | u64::from(words[0])
}

fn pack_w1(words: [u32; 3]) -> u64 {
    (u64::from(words[1]) << 32) | u64::from(words[2])
}

/// A 4-way bucket guarded by a seqlock version word: writers bump it odd
/// before mutating and even after; readers retry while odd or changed.
#[repr(align(64))]
struct ConcBucket {
    version: AtomicU64,
    slots: [ConcSlot; WAYS],
}

impl ConcBucket {
    fn empty() -> Self {
        Self {
            version: AtomicU64::new(0),
            slots: [
                ConcSlot::empty(),
                ConcSlot::empty(),
                ConcSlot::empty(),
                ConcSlot::empty(),
            ],
        }
    }

    /// Seqlock-consistent snapshot of all four slots.
    fn snapshot(&self) -> [[u64; 3]; WAYS] {
        loop {
            let v1 = self.version.load(SeqCst);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut snap = [[0u64; 3]; WAYS];
            for (w, slot) in self.slots.iter().enumerate() {
                snap[w] = [
                    slot.w0.load(SeqCst),
                    slot.w1.load(SeqCst),
                    slot.w2.load(SeqCst),
                ];
            }
            if self.version.load(SeqCst) == v1 {
                return snap;
            }
        }
    }

    /// Run `f` with the bucket's seqlock held odd. Only the table writer
    /// (serialized by the writer mutex) calls this.
    fn write<R>(&self, f: impl FnOnce(&Self) -> R) -> R {
        self.version.fetch_add(1, SeqCst);
        let r = f(self);
        self.version.fetch_add(1, SeqCst);
        r
    }
}

/// One published table size. Entries only ever live in the current
/// generation; superseded generations stay mapped until the epoch
/// runtime's grace period elapses, then are poison-wiped.
struct Generation {
    buckets: Box<[ConcBucket]>,
    mask: usize,
}

impl Generation {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        Self {
            buckets: (0..n).map(|_| ConcBucket::empty()).collect(),
            mask: n - 1,
        }
    }

    /// Writer-side scan for the slot holding exactly `words`.
    fn locate(&self, words: [u32; 3], tag: u8, b1: usize) -> Option<(usize, usize)> {
        let (want0, want1) = (pack_w0(tag, words), pack_w1(words));
        for b in [b1, alt(b1, tag, self.mask)] {
            for (w, slot) in self.buckets[b].slots.iter().enumerate() {
                if slot.w0.load(SeqCst) == want0 && slot.w1.load(SeqCst) == want1 {
                    return Some((b, w));
                }
            }
        }
        None
    }

    fn free_way(&self, b: usize) -> Option<usize> {
        (0..WAYS).find(|&w| self.buckets[b].slots[w].w0.load(SeqCst) & OCC == 0)
    }

    fn set(&self, b: usize, w: usize, w0: u64, w1: u64, w2: u64) {
        self.buckets[b].write(|bucket| {
            bucket.slots[w].w1.store(w1, SeqCst);
            bucket.slots[w].w2.store(w2, SeqCst);
            bucket.slots[w].w0.store(w0, SeqCst);
        });
    }

    fn clear(&self, b: usize, w: usize) {
        self.buckets[b].write(|bucket| {
            bucket.slots[w].w0.store(0, SeqCst);
        });
    }

    /// The concurrent twin of [`Table::try_place`]. `kick_seq`, when
    /// given (the generation is published), is held odd around the move
    /// sequence so readers can detect in-flight displacements. Each move
    /// writes the destination copy before clearing the source, so no
    /// entry is ever transiently absent.
    fn try_place(
        &self,
        words: [u32; 3],
        tag: u8,
        b1: usize,
        idbits: u64,
        kick_seq: Option<&AtomicU64>,
    ) -> Result<u32, ()> {
        let (w0, w1) = (pack_w0(tag, words), pack_w1(words));
        if let Some(w) = self.free_way(b1) {
            self.set(b1, w, w0, w1, idbits);
            return Ok(0);
        }
        let b2 = alt(b1, tag, self.mask);
        if let Some(w) = self.free_way(b2) {
            self.set(b2, w, w0, w1, idbits);
            return Ok(0);
        }

        let mut queue: Vec<Node> = Vec::with_capacity(BFS_CAP);
        queue.push(Node {
            bucket: b1 as u32,
            parent: NO_PARENT,
            way: 0,
        });
        queue.push(Node {
            bucket: b2 as u32,
            parent: NO_PARENT,
            way: 0,
        });
        let mut qi = 0;
        while qi < queue.len() {
            let bucket = queue[qi].bucket as usize;
            if self.free_way(bucket).is_some() {
                if let Some(kicks) = self.apply_path(&queue, qi, w0, w1, idbits, kick_seq) {
                    return Ok(kicks);
                }
            }
            if queue.len() < BFS_CAP {
                for w in 0..WAYS {
                    let s0 = self.buckets[bucket].slots[w].w0.load(SeqCst);
                    if s0 & OCC == 0 {
                        continue;
                    }
                    let t = (s0 >> 32) as u8;
                    queue.push(Node {
                        bucket: alt(bucket, t, self.mask) as u32,
                        parent: qi as u32,
                        way: w as u8,
                    });
                    if queue.len() >= BFS_CAP {
                        break;
                    }
                }
            }
            qi += 1;
        }
        Err(())
    }

    fn apply_path(
        &self,
        queue: &[Node],
        leaf: usize,
        w0: u64,
        w1: u64,
        idbits: u64,
        kick_seq: Option<&AtomicU64>,
    ) -> Option<u32> {
        let free = self.free_way(queue[leaf].bucket as usize)?;
        let mut chain: Vec<(usize, usize)> = Vec::new();
        let mut cur = leaf;
        while queue[cur].parent != NO_PARENT {
            let parent = queue[cur].parent as usize;
            chain.push((queue[parent].bucket as usize, queue[cur].way as usize));
            cur = parent;
        }
        for i in 0..chain.len() {
            for j in (i + 1)..chain.len() {
                if chain[i] == chain[j] {
                    return None;
                }
            }
        }
        if let Some(seq) = kick_seq {
            seq.fetch_add(1, SeqCst);
        }
        let mut dest = (queue[leaf].bucket as usize, free);
        let mut kicks = 0u32;
        for &(sb, sw) in &chain {
            let slot = &self.buckets[sb].slots[sw];
            let (m0, m1, m2) = (
                slot.w0.load(SeqCst),
                slot.w1.load(SeqCst),
                slot.w2.load(SeqCst),
            );
            debug_assert!(m0 & OCC != 0);
            self.set(dest.0, dest.1, m0, m1, m2);
            self.clear(sb, sw);
            dest = (sb, sw);
            kicks += 1;
        }
        self.set(dest.0, dest.1, w0, w1, idbits);
        if let Some(seq) = kick_seq {
            seq.fetch_add(1, SeqCst);
        }
        Some(kicks)
    }

    /// Probe a snapshot pair for `words`, counting full key compares.
    fn probe(&self, words: [u32; 3], h: u64) -> LookupResult {
        let (b1, tag) = home(h, self.mask);
        let (want0, want1) = (pack_w0(tag, words), pack_w1(words));
        let meta = want0 >> 32;
        let mut examined = 0u32;
        for b in [b1, alt(b1, tag, self.mask)] {
            let snap = self.buckets[b].snapshot();
            for slot in &snap {
                if slot[0] >> 32 == meta {
                    examined += 1;
                    if slot[0] == want0 && slot[1] == want1 {
                        return LookupResult {
                            pcb: Some(PcbId::from_bits(slot[2])),
                            examined,
                            cache_hit: false,
                        };
                    }
                }
            }
        }
        LookupResult::miss(examined)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct WriterState {
    len: usize,
    cstats: CuckooStats,
}

/// The epoch-guarded concurrent cuckoo tier: lock-free bounded-probe
/// readers, writers serialized behind one mutex. See the module docs for
/// the safety argument.
pub struct ConcurrentCuckooDemux {
    generations: Box<[OnceLock<Generation>]>,
    current: AtomicUsize,
    /// Held odd while a displacement sequence is in flight; readers
    /// validate misses against it (a hit needs no validation — found
    /// entries are genuinely present).
    kick_seq: AtomicU64,
    writer: Mutex<WriterState>,
    runtime: EpochRuntime,
    stats: AtomicLookupStats,
}

impl Default for ConcurrentCuckooDemux {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentCuckooDemux {
    /// An empty concurrent table of [`INITIAL_BUCKETS`] buckets.
    pub fn new() -> Self {
        let generations: Box<[OnceLock<Generation>]> =
            (0..CONC_MAX_GENERATIONS).map(|_| OnceLock::new()).collect();
        generations[0]
            .set(Generation::new(INITIAL_BUCKETS))
            .unwrap_or_else(|_| unreachable!("fresh slot"));
        Self {
            generations,
            current: AtomicUsize::new(0),
            kick_seq: AtomicU64::new(0),
            writer: Mutex::new(WriterState::default()),
            runtime: EpochRuntime::new(),
            stats: AtomicLookupStats::new(),
        }
    }

    /// Insert-path counters (kicks, eviction loops, grows).
    pub fn kick_stats(&self) -> CuckooStats {
        lock(&self.writer).cstats
    }

    /// Telemetry from the epoch runtime reclaiming superseded
    /// generations.
    pub fn reclamation_stats(&self) -> ReclamationStats {
        self.runtime.stats()
    }

    /// Index of the published generation (starts at 0, grows by ≥ 1 per
    /// rehash).
    pub fn generation(&self) -> usize {
        self.current.load(SeqCst)
    }

    fn gen_ref(&self, g: usize) -> &Generation {
        self.generations[g].get().expect("generation published")
    }

    /// Grow under the writer lock: rehash into a fresh generation,
    /// publish it, retire the old one to the epoch runtime.
    fn grow_locked(&self, st: &mut WriterState, g: usize) -> usize {
        let mut target = g + 1;
        'size: loop {
            assert!(
                target < CONC_MAX_GENERATIONS,
                "concurrent cuckoo table exceeded maximum generation"
            );
            let next = Generation::new(INITIAL_BUCKETS << target);
            let old = self.gen_ref(g);
            for b in 0..old.buckets.len() {
                for w in 0..WAYS {
                    let slot = &old.buckets[b].slots[w];
                    let s0 = slot.w0.load(SeqCst);
                    if s0 & OCC == 0 {
                        continue;
                    }
                    let words = [
                        s0 as u32,
                        (slot.w1.load(SeqCst) >> 32) as u32,
                        slot.w1.load(SeqCst) as u32,
                    ];
                    let h = hash_words(words);
                    let (b1, tag) = home(h, next.mask);
                    // Unpublished target: no readers, no kick_seq needed.
                    match next.try_place(words, tag, b1, slot.w2.load(SeqCst), None) {
                        Ok(k) => st.cstats.kicks += u64::from(k),
                        Err(()) => {
                            target += 1;
                            continue 'size;
                        }
                    }
                }
            }
            self.generations[target]
                .set(next)
                .unwrap_or_else(|_| unreachable!("generation slot unused"));
            self.current.store(target, SeqCst);
            self.runtime.retire(g as u64);
            st.cstats.grows += 1;
            return target;
        }
    }

    /// Poison-wipe a generation whose grace period elapsed.
    fn wipe_generation(&self, g: usize) {
        if let Some(generation) = self.generations[g].get() {
            for b in 0..generation.buckets.len() {
                generation.buckets[b].write(|bucket| {
                    for slot in &bucket.slots {
                        slot.w0.store(0, SeqCst);
                        slot.w1.store(POISON, SeqCst);
                        slot.w2.store(POISON, SeqCst);
                    }
                });
            }
        }
    }

    /// Advance the epoch and wipe a bounded number of superseded
    /// generations; called after every writer operation.
    fn reclaim_some(&self) {
        self.runtime.try_advance();
        self.runtime
            .drain(2, |token| self.wipe_generation(token as usize));
    }

    /// One linearizable probe. A miss is only returned from a window
    /// with no displacement in flight; see `kick_seq`.
    fn probe_validated(&self, words: [u32; 3], h: u64) -> LookupResult {
        loop {
            let kv = self.kick_seq.load(SeqCst);
            if kv & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let generation = self.gen_ref(self.current.load(SeqCst));
            let r = generation.probe(words, h);
            if r.pcb.is_some() || self.kick_seq.load(SeqCst) == kv {
                return r;
            }
        }
    }
}

impl crate::concurrent::ConcurrentDemux for ConcurrentCuckooDemux {
    fn insert(&self, key: ConnectionKey, id: PcbId) {
        let words = key.as_words();
        let h = hash_words(words);
        let mut st = lock(&self.writer);
        let mut g = self.current.load(SeqCst);
        {
            let generation = self.gen_ref(g);
            let (b1, tag) = home(h, generation.mask);
            if let Some((b, w)) = generation.locate(words, tag, b1) {
                generation.buckets[b].write(|bucket| {
                    bucket.slots[w].w2.store(id.to_bits(), SeqCst);
                });
                drop(st);
                self.reclaim_some();
                return;
            }
            let capacity = generation.buckets.len() * WAYS;
            if (st.len + 1) * OCCUPANCY_DEN > capacity * OCCUPANCY_NUM {
                g = self.grow_locked(&mut st, g);
            }
        }
        let kicks = loop {
            let generation = self.gen_ref(g);
            let (b1, tag) = home(h, generation.mask);
            match generation.try_place(words, tag, b1, id.to_bits(), Some(&self.kick_seq)) {
                Ok(k) => break k,
                Err(()) => {
                    st.cstats.eviction_loops += 1;
                    g = self.grow_locked(&mut st, g);
                }
            }
        };
        st.len += 1;
        st.cstats.kicks += u64::from(kicks);
        st.cstats.max_kick_path = st.cstats.max_kick_path.max(kicks);
        drop(st);
        self.reclaim_some();
    }

    fn remove(&self, key: &ConnectionKey) -> Option<PcbId> {
        let words = key.as_words();
        let h = hash_words(words);
        let mut st = lock(&self.writer);
        let generation = self.gen_ref(self.current.load(SeqCst));
        let (b1, tag) = home(h, generation.mask);
        let found = generation.locate(words, tag, b1).map(|(b, w)| {
            let idbits = generation.buckets[b].slots[w].w2.load(SeqCst);
            generation.clear(b, w);
            st.len -= 1;
            PcbId::from_bits(idbits)
        });
        drop(st);
        self.reclaim_some();
        found
    }

    fn lookup(&self, key: &ConnectionKey, _kind: PacketKind) -> LookupResult {
        let words = key.as_words();
        let h = hash_words(words);
        let guard = self.runtime.pin();
        let r = self.probe_validated(words, h);
        drop(guard);
        self.stats.record(r.examined, r.pcb.is_some(), false);
        r
    }

    /// One epoch pin for the whole batch; both candidate buckets of
    /// every key are prefetched before any is resolved. Tallies merge
    /// into the shared stats after the pin is released.
    fn lookup_batch(&self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        out.clear();
        out.reserve(keys.len());
        let mut tallies = LookupStats::new();
        let guard = self.runtime.pin();
        let generation = self.gen_ref(self.current.load(SeqCst));
        for (key, _) in keys {
            let (b1, tag) = home(hash_words(key.as_words()), generation.mask);
            prefetch_read(&generation.buckets[b1]);
            prefetch_read(&generation.buckets[alt(b1, tag, generation.mask)]);
        }
        for (key, _) in keys {
            let words = key.as_words();
            let r = self.probe_validated(words, hash_words(words));
            tallies.record(r.examined, r.pcb.is_some(), false);
            out.push(r);
        }
        drop(guard);
        self.stats.merge_tallies(&tallies);
    }

    fn len(&self) -> usize {
        lock(&self.writer).len
    }

    fn name(&self) -> String {
        "cuckoo-conc".to_string()
    }

    fn stats_snapshot(&self) -> LookupStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrentDemux;
    use crate::test_util;
    use std::collections::BTreeMap;
    use tcpdemux_pcb::{Pcb, PcbArena};
    use tcpdemux_testprop::{check_cases, TestRng};

    #[test]
    fn satisfies_the_demux_contract() {
        test_util::check_contract(Box::new(CuckooDemux::new()));
    }

    #[test]
    fn alt_bucket_is_a_distinct_involution() {
        for shift in 1..16 {
            let mask = (1usize << shift) - 1;
            for tag in 0..=u8::MAX {
                for b in [0usize, 1, mask / 2, mask] {
                    let a = alt(b, tag, mask);
                    assert_ne!(a, b, "mask {mask:#x} tag {tag}");
                    assert_eq!(alt(a, tag, mask), b);
                    assert!(a <= mask);
                }
            }
        }
    }

    #[test]
    fn grows_past_initial_capacity_and_keeps_every_key() {
        let mut demux = CuckooDemux::new();
        let mut arena = PcbArena::new();
        let n = 10_000u32;
        let ids = test_util::populate(&mut demux, &mut arena, n);
        assert!(
            demux.bucket_count() > INITIAL_BUCKETS,
            "10k inserts must force growth"
        );
        assert!(demux.kick_stats().grows > 0);
        for (i, &id) in ids.iter().enumerate() {
            let r = demux.lookup(&test_util::key(i as u32), PacketKind::Data);
            assert_eq!(r.pcb, Some(id), "key {i} lost across growth");
            assert!(r.examined >= 1);
            assert!(
                r.examined <= 2 * WAYS as u32,
                "probe cost must stay bucket-bounded, got {}",
                r.examined
            );
        }
    }

    #[test]
    fn kicks_happen_at_high_occupancy_and_reach_telemetry() {
        let recorder = Recorder::new();
        let mut demux = CuckooDemux::new().with_recorder(recorder.clone());
        let mut arena = PcbArena::new();
        test_util::populate(&mut demux, &mut arena, 50_000);
        let stats = demux.kick_stats();
        assert!(stats.kicks > 0, "50k inserts with no kicks is implausible");
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter(CounterId::CuckooKicks),
            stats.kicks,
            "telemetry must mirror the internal kick count"
        );
    }

    #[test]
    fn churn_against_btreemap_oracle() {
        check_cases("cuckoo_churn_oracle", 8, |rng: &mut TestRng| {
            let mut demux = CuckooDemux::new();
            let mut arena = PcbArena::new();
            let mut oracle: BTreeMap<u32, PcbId> = BTreeMap::new();
            for _ in 0..4_000 {
                let n = rng.u32_in(0, 600);
                let k = test_util::key(n);
                match rng.below(3) {
                    0 => {
                        let id = arena.insert(Pcb::new(k));
                        demux.insert(k, id);
                        oracle.insert(n, id);
                    }
                    1 => {
                        assert_eq!(demux.remove(&k), oracle.remove(&n));
                    }
                    _ => {
                        let r = demux.lookup(&k, PacketKind::Data);
                        assert_eq!(r.pcb, oracle.get(&n).copied());
                    }
                }
                assert_eq!(demux.len(), oracle.len());
            }
        });
    }

    #[test]
    fn concurrent_variant_matches_sequential_semantics() {
        let demux = ConcurrentCuckooDemux::new();
        let mut arena = PcbArena::new();
        let mut ids = Vec::new();
        for i in 0..5_000u32 {
            let k = test_util::key(i);
            let id = arena.insert(Pcb::new(k));
            demux.insert(k, id);
            ids.push(id);
        }
        assert_eq!(demux.len(), 5_000);
        assert!(demux.generation() > 0, "5k inserts must grow the table");
        for (i, &id) in ids.iter().enumerate() {
            let r = demux.lookup(&test_util::key(i as u32), PacketKind::Data);
            assert_eq!(r.pcb, Some(id));
            assert!(r.examined >= 1 && r.examined <= 2 * WAYS as u32);
        }
        assert_eq!(
            demux.lookup(&test_util::key(99_999), PacketKind::Data).pcb,
            None
        );
        assert_eq!(demux.remove(&test_util::key(7)), Some(ids[7]));
        assert_eq!(demux.remove(&test_util::key(7)), None);
        assert_eq!(demux.len(), 4_999);
        let snap = demux.stats_snapshot();
        assert_eq!(snap.lookups, 5_001);
    }

    #[test]
    fn superseded_generations_are_reclaimed_and_wiped() {
        let demux = ConcurrentCuckooDemux::new();
        let mut arena = PcbArena::new();
        for i in 0..2_000u32 {
            let k = test_util::key(i);
            let id = arena.insert(Pcb::new(k));
            demux.insert(k, id);
        }
        assert!(demux.generation() >= 2);
        // Quiescent: a few more writer ops cycle the epochs and drain.
        for i in 0..8u32 {
            demux.remove(&test_util::key(i));
        }
        let rec = demux.reclamation_stats();
        assert_eq!(rec.retired, demux.generation() as u64);
        assert!(rec.reclaimed > 0, "grace-elapsed generations must be wiped");
        // Wiped generation 0 reads as empty (poison is unoccupied).
        let g0 = demux.generations[0].get().unwrap();
        assert!(g0
            .buckets
            .iter()
            .all(|b| b.slots.iter().all(|s| s.w0.load(SeqCst) & OCC == 0)));
    }

    #[test]
    fn concurrent_readers_never_lose_stable_keys_across_growth() {
        // Pinned keys are inserted once and never removed; churn keys are
        // inserted/removed continuously, forcing kicks and growth. Any
        // false miss (displacement race, use-after-wipe) fails a reader.
        use std::sync::atomic::AtomicBool;
        let demux = ConcurrentCuckooDemux::new();
        let mut arena = PcbArena::new();
        let stable: Vec<(u32, PcbId)> = (0..512u32)
            .map(|i| {
                let k = test_util::key(i);
                let id = arena.insert(Pcb::new(k));
                demux.insert(k, id);
                (i, id)
            })
            .collect();
        let churn_ids: Vec<PcbId> = (0..4_096u32)
            .map(|i| arena.insert(Pcb::new(test_util::key(10_000 + i))))
            .collect();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for reader in 0..3 {
                let demux = &demux;
                let stable = &stable;
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = TestRng::from_seed(0xC0C0 + reader);
                    let mut hits = 0u64;
                    while !stop.load(SeqCst) {
                        let &(n, id) = rng.choose(stable);
                        let r = demux.lookup(&test_util::key(n), PacketKind::Data);
                        assert_eq!(r.pcb, Some(id), "stable key {n} lost");
                        hits += 1;
                    }
                    assert!(hits > 0);
                });
            }
            let mut rng = TestRng::from_seed(0xD00D);
            for round in 0..20 {
                for (i, &id) in churn_ids.iter().enumerate() {
                    demux.insert(test_util::key(10_000 + i as u32), id);
                }
                for i in 0..churn_ids.len() {
                    if rng.chance(0.75) {
                        demux.remove(&test_util::key(10_000 + i as u32));
                    }
                }
                for i in 0..churn_ids.len() {
                    demux.remove(&test_util::key(10_000 + i as u32));
                }
                assert_eq!(demux.len(), stable.len(), "round {round}");
            }
            stop.store(true, SeqCst);
        });
        assert!(demux.generation() > 0);
        assert!(demux.kick_stats().kicks > 0);
    }

    #[test]
    fn batch_prefetch_path_matches_sequential_exactly() {
        let mut seq = CuckooDemux::new();
        let mut bat = CuckooDemux::new();
        let mut arena = PcbArena::new();
        for i in 0..300u32 {
            let k = test_util::key(i);
            let id = arena.insert(Pcb::new(k));
            seq.insert(k, id);
            bat.insert(k, id);
        }
        let keys: Vec<(ConnectionKey, PacketKind)> = (0..1_000u32)
            .map(|i| (test_util::key((i * 13 + 1) % 380), PacketKind::Data))
            .collect();
        let mut out = Vec::new();
        for chunk in keys.chunks(32) {
            bat.lookup_batch(chunk, &mut out);
            for (j, (k, kind)) in chunk.iter().enumerate() {
                assert_eq!(out[j], seq.lookup(k, *kind));
            }
        }
        assert_eq!(seq.stats(), bat.stats());
    }
}
