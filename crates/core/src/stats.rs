//! Lookup statistics: the paper's figure of merit, accumulated.

use core::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Running totals for a demultiplexer's lookups.
///
/// `mean_examined()` is directly comparable to the paper's analytic
/// predictions (e.g. ≈1001 PCBs for BSD at 2,000 users, ≈53 for Sequent
/// with 19 chains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// Total lookups performed.
    pub lookups: u64,
    /// Lookups satisfied from a one-entry cache.
    pub cache_hits: u64,
    /// Lookups that found a PCB (by cache or scan).
    pub found: u64,
    /// Lookups that found no PCB.
    pub not_found: u64,
    /// Total PCBs examined across all lookups.
    pub pcbs_examined: u64,
    /// Largest single-lookup examination count seen.
    pub worst_case: u32,
}

impl LookupStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one lookup outcome.
    pub fn record(&mut self, examined: u32, found: bool, cache_hit: bool) {
        self.lookups += 1;
        self.pcbs_examined += u64::from(examined);
        if cache_hit {
            self.cache_hits += 1;
        }
        if found {
            self.found += 1;
        } else {
            self.not_found += 1;
        }
        self.worst_case = self.worst_case.max(examined);
    }

    /// Mean PCBs examined per lookup — the paper's `C(N)`.
    pub fn mean_examined(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.pcbs_examined as f64 / self.lookups as f64
        }
    }

    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups as f64
        }
    }

    /// Merge another set of statistics into this one (used by the sharded
    /// concurrent demux to combine per-shard counters).
    pub fn merge(&mut self, other: &LookupStats) {
        self.lookups += other.lookups;
        self.cache_hits += other.cache_hits;
        self.found += other.found;
        self.not_found += other.not_found;
        self.pcbs_examined += other.pcbs_examined;
        self.worst_case = self.worst_case.max(other.worst_case);
    }
}

/// Lock-free accumulator for [`LookupStats`], shared by the concurrent
/// demultiplexers.
///
/// Recording is a handful of `Relaxed` fetch-adds (plus one `fetch_max`
/// for the worst case), so threads tally lookups *after* releasing the
/// data lock — or with no lock at all on the epoch read path — instead of
/// serializing on a shared `LookupStats` under the structure's lock.
/// Totals are exact: every counter is a single atomic RMW, so concurrent
/// recorders never lose updates. A [`AtomicLookupStats::snapshot`] taken
/// while recorders are active may observe counters from different
/// instants (e.g. `lookups` incremented but `found` not yet), which is
/// the usual price of lock-free statistics; quiescent snapshots are
/// exact.
#[derive(Debug, Default)]
pub struct AtomicLookupStats {
    lookups: AtomicU64,
    cache_hits: AtomicU64,
    found: AtomicU64,
    not_found: AtomicU64,
    pcbs_examined: AtomicU64,
    worst_case: AtomicU32,
}

impl AtomicLookupStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one lookup outcome (the atomic analogue of
    /// [`LookupStats::record`]).
    pub fn record(&self, examined: u32, found: bool, cache_hit: bool) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.pcbs_examined
            .fetch_add(u64::from(examined), Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        if found {
            self.found.fetch_add(1, Ordering::Relaxed);
        } else {
            self.not_found.fetch_add(1, Ordering::Relaxed);
        }
        self.worst_case.fetch_max(examined, Ordering::Relaxed);
    }

    /// Merge a batch's locally-accumulated tallies in one pass — six
    /// atomic RMWs for the whole batch instead of six per lookup.
    pub fn merge_tallies(&self, tallies: &LookupStats) {
        self.lookups.fetch_add(tallies.lookups, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(tallies.cache_hits, Ordering::Relaxed);
        self.found.fetch_add(tallies.found, Ordering::Relaxed);
        self.not_found
            .fetch_add(tallies.not_found, Ordering::Relaxed);
        self.pcbs_examined
            .fetch_add(tallies.pcbs_examined, Ordering::Relaxed);
        self.worst_case
            .fetch_max(tallies.worst_case, Ordering::Relaxed);
    }

    /// Current totals as a plain [`LookupStats`] value.
    pub fn snapshot(&self) -> LookupStats {
        LookupStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            found: self.found.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            pcbs_examined: self.pcbs_examined.load(Ordering::Relaxed),
            worst_case: self.worst_case.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Display for LookupStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lookups={} mean_examined={:.2} hit_rate={:.2}% worst={}",
            self.lookups,
            self.mean_examined(),
            self.hit_rate() * 100.0,
            self.worst_case
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats() {
        let s = LookupStats::new();
        assert_eq!(s.lookups, 0);
        assert_eq!(s.mean_examined(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn record_accumulates() {
        let mut s = LookupStats::new();
        s.record(1, true, true);
        s.record(100, true, false);
        s.record(50, false, false);
        assert_eq!(s.lookups, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.found, 2);
        assert_eq!(s.not_found, 1);
        assert_eq!(s.pcbs_examined, 151);
        assert_eq!(s.worst_case, 100);
        assert!((s.mean_examined() - 151.0 / 3.0).abs() < 1e-12);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = LookupStats::new();
        a.record(10, true, false);
        let mut b = LookupStats::new();
        b.record(20, false, false);
        b.record(1, true, true);
        a.merge(&b);
        assert_eq!(a.lookups, 3);
        assert_eq!(a.pcbs_examined, 31);
        assert_eq!(a.worst_case, 20);
        assert_eq!(a.found, 2);
    }

    #[test]
    fn atomic_record_matches_plain_record() {
        let atomic = AtomicLookupStats::new();
        let mut plain = LookupStats::new();
        for (examined, found, cache_hit) in
            [(1, true, true), (100, true, false), (50, false, false)]
        {
            atomic.record(examined, found, cache_hit);
            plain.record(examined, found, cache_hit);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn merge_tallies_matches_merge() {
        let atomic = AtomicLookupStats::new();
        atomic.record(10, true, false);
        let mut tallies = LookupStats::new();
        tallies.record(20, false, false);
        tallies.record(1, true, true);
        atomic.merge_tallies(&tallies);
        let mut plain = LookupStats::new();
        plain.record(10, true, false);
        plain.merge(&tallies);
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_totals_are_exact_across_threads() {
        let atomic = AtomicLookupStats::new();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let atomic = &atomic;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        atomic.record(1 + (i % 7), i % 3 != 0, i % 5 == 0);
                    }
                    let _ = t;
                });
            }
        });
        let snap = atomic.snapshot();
        assert_eq!(snap.lookups, 8 * 1000);
        assert_eq!(snap.found + snap.not_found, 8 * 1000);
        assert_eq!(snap.worst_case, 7);
    }

    #[test]
    fn display_is_informative() {
        let mut s = LookupStats::new();
        s.record(4, true, false);
        let text = s.to_string();
        assert!(text.contains("lookups=1"), "{text}");
        assert!(text.contains("mean_examined=4.00"), "{text}");
    }
}
