//! §3.2 — Crowcroft's move-to-front list.
//!
//! A single linear list with the "move to front" heuristic: whenever a PCB
//! is found, it is unlinked and re-inserted at the head. There is no
//! separate cache — the head of the list *is* the cache. Under TPC/A
//! traffic the transaction-entry packet pays slightly more than BSD
//! (other users' PCBs have moved in front), but the acknowledgement that
//! arrives a response-time later finds its PCB near the front, for an
//! overall win (paper's Equations 5–6: average search lengths of
//! 549/618/724/904 PCBs at 2,000 users for R = 0.2/0.5/1.0/2.0 s, versus
//! BSD's 1,001).

use crate::list::PcbList;
use crate::stats::LookupStats;
use crate::{Demux, LookupResult, PacketKind};
use tcpdemux_pcb::{ConnectionKey, PcbId};

/// The move-to-front PCB lookup structure.
#[derive(Debug, Default)]
pub struct MtfDemux {
    list: PcbList,
    stats: LookupStats,
}

impl MtfDemux {
    /// An empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// The key currently at the front of the list, if any.
    pub fn front(&self) -> Option<ConnectionKey> {
        self.list.front().map(|(k, _)| k)
    }
}

impl Demux for MtfDemux {
    fn insert(&mut self, key: ConnectionKey, id: PcbId) {
        if self.list.replace(&key, id).is_none() {
            self.list.push_front(key, id);
        }
    }

    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId> {
        self.list.remove(key)
    }

    fn lookup(&mut self, key: &ConnectionKey, _kind: PacketKind) -> LookupResult {
        let (found, examined) = self.list.find_move_to_front(key);
        match found {
            Some(id) => {
                // "Cache hit" for MTF means the PCB was already at the head.
                let cache_hit = examined == 1;
                self.stats.record(examined, true, cache_hit);
                LookupResult {
                    pcb: Some(id),
                    examined,
                    cache_hit,
                }
            }
            None => {
                self.stats.record(examined, false, false);
                LookupResult::miss(examined)
            }
        }
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn name(&self) -> String {
        "mtf".to_string()
    }

    fn stats(&self) -> &LookupStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LookupStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{key, populate};
    use tcpdemux_pcb::PcbArena;

    #[test]
    fn found_pcb_moves_to_front() {
        let mut arena = PcbArena::new();
        let mut demux = MtfDemux::new();
        let ids = populate(&mut demux, &mut arena, 10);

        // key(0) is at the tail (inserted first): 10 examined.
        let r = demux.lookup(&key(0), PacketKind::Data);
        assert_eq!(r.pcb, Some(ids[0]));
        assert_eq!(r.examined, 10);
        assert_eq!(demux.front(), Some(key(0)));

        // Now it is at the head: 1 examined.
        let r = demux.lookup(&key(0), PacketKind::Data);
        assert_eq!(r.examined, 1);
        assert!(r.cache_hit);
    }

    #[test]
    fn intervening_lookups_push_key_back() {
        let mut arena = PcbArena::new();
        let mut demux = MtfDemux::new();
        populate(&mut demux, &mut arena, 10);

        demux.lookup(&key(0), PacketKind::Data); // key(0) to front
        demux.lookup(&key(1), PacketKind::Data); // key(1) to front
        demux.lookup(&key(2), PacketKind::Data); // key(2) to front

        // key(0) is now third.
        let r = demux.lookup(&key(0), PacketKind::Data);
        assert_eq!(r.examined, 3);
    }

    #[test]
    fn miss_scans_whole_list_without_reordering() {
        let mut arena = PcbArena::new();
        let mut demux = MtfDemux::new();
        populate(&mut demux, &mut arena, 5);
        let before: Vec<_> = (0..5)
            .map(|i| demux.lookup(&key(i), PacketKind::Data).examined)
            .collect();
        let _ = before;
        let r = demux.lookup(&key(1000), PacketKind::Data);
        assert_eq!(r.pcb, None);
        assert_eq!(r.examined, 5);
        // Order still has key(4) at the front (the last successful lookup).
        assert_eq!(demux.front(), Some(key(4)));
    }

    #[test]
    fn deterministic_polling_is_worst_case() {
        // The paper's point-of-sale observation: if a server polls its N
        // clients round-robin, every lookup scans the entire list, because
        // the needed PCB has always just been pushed to the very tail by
        // the N−1 other lookups.
        let n = 50u32;
        let mut arena = PcbArena::new();
        let mut demux = MtfDemux::new();
        populate(&mut demux, &mut arena, n);

        // Warm up one full cycle to reach the steady-state ordering.
        for i in 0..n {
            demux.lookup(&key(i), PacketKind::Data);
        }
        demux.reset_stats();
        for _round in 0..10 {
            for i in 0..n {
                let r = demux.lookup(&key(i), PacketKind::Data);
                assert_eq!(r.examined, n, "round-robin must always scan all");
            }
        }
        assert!((demux.stats().mean_examined() - f64::from(n)).abs() < 1e-9);
    }

    #[test]
    fn packet_train_is_best_case() {
        let mut arena = PcbArena::new();
        let mut demux = MtfDemux::new();
        populate(&mut demux, &mut arena, 100);
        demux.lookup(&key(42), PacketKind::Data);
        demux.reset_stats();
        for _ in 0..64 {
            let r = demux.lookup(&key(42), PacketKind::Data);
            assert_eq!(r.examined, 1);
        }
        assert_eq!(demux.stats().hit_rate(), 1.0);
    }

    #[test]
    fn remove_from_any_position() {
        let mut arena = PcbArena::new();
        let mut demux = MtfDemux::new();
        let ids = populate(&mut demux, &mut arena, 3);
        demux.lookup(&key(0), PacketKind::Data); // order: 0, 2, 1
        assert_eq!(demux.remove(&key(2)), Some(ids[2]));
        assert_eq!(demux.len(), 2);
        let r = demux.lookup(&key(1), PacketKind::Data);
        assert_eq!(r.examined, 2);
    }
}
