//! A portable software-prefetch shim.
//!
//! The paper's figure of merit — PCBs examined — is a proxy for memory
//! traffic, and a batched lookup knows every chain head it is about to
//! walk the moment the batch has been grouped. Issuing prefetches for all
//! of those heads *before* walking any of them turns a sequence of
//! dependent cache misses into overlapping ones (memory-level
//! parallelism); the walks themselves prefetch one node ahead for the
//! same reason.
//!
//! On x86_64 this lowers to a single `prefetcht0` instruction. On every
//! other architecture it is a documented no-op: there is no stable
//! portable prefetch intrinsic, and a hint that does nothing is always
//! correct. The `unsafe` block below is the only one in the workspace —
//! see DESIGN.md §9 for why it is sound (`prefetcht0` is an advisory
//! hint that cannot fault, and the argument is a live reference anyway).

/// Hint the CPU to pull the cache line holding `target` into L1.
///
/// Purely advisory: correctness never depends on it, and on
/// architectures without a stable prefetch intrinsic it compiles to
/// nothing.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub fn prefetch_read<T>(target: &T) {
    use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    // SAFETY: `prefetcht0` is an architectural hint — it cannot fault,
    // does not read or write the referenced memory as far as the
    // abstract machine is concerned, and `target` is a live reference
    // besides. This is the sole `unsafe` block in the workspace; the
    // crate root enforces `deny(unsafe_code)` everywhere else.
    #[allow(unsafe_code)]
    unsafe {
        _mm_prefetch::<{ _MM_HINT_T0 }>((target as *const T).cast::<i8>());
    }
}

/// No-op fallback for architectures without a stable prefetch intrinsic.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub fn prefetch_read<T>(_target: &T) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        // Nothing observable may change: the value is untouched and the
        // call cannot fault, whatever the target architecture.
        let value = [7u64; 16];
        prefetch_read(&value);
        prefetch_read(&value[15]);
        assert_eq!(value, [7u64; 16]);
    }
}
