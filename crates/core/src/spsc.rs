//! A bounded single-producer/single-consumer ring, in-tree.
//!
//! The sharded stack runtime feeds each shard through one of these: the
//! ingress side steers a frame and pushes it; the shard's worker pops a
//! batch and hands it to `Stack::receive_batch`. The same hermetic
//! discipline as [`crate::epoch`] applies — no crossbeam, no `unsafe`:
//! each slot is a `Mutex<Option<T>>` (uncontended by construction, since
//! exactly one side touches a given slot between the two index updates)
//! and the head/tail indices are monotonic atomics, so `len` is simply
//! `tail - head` and full/empty are never ambiguous.
//!
//! Single-producer and single-consumer are enforced at compile time: the
//! [`SpscProducer`] and [`SpscConsumer`] halves are `Send` but their
//! methods take `&mut self`, so each half has exactly one user at a time.
//!
//! Overload policy is *drop-tail with accounting*: a push against a full
//! ring fails, hands the value back, and bumps the `rejected` counter —
//! the runtime surfaces that number, because dropped ingress frames are a
//! measured quantity, not a silent loss.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing everything that has happened to a ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Values accepted by [`SpscProducer::push`].
    pub pushed: u64,
    /// Values returned by [`SpscConsumer::pop`] / `pop_batch`.
    pub popped: u64,
    /// Push attempts refused because the ring was full.
    pub rejected: u64,
    /// Maximum occupancy ever observed at push time.
    pub high_water: usize,
    /// The ring's fixed capacity.
    pub capacity: usize,
}

struct RingShared<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Total values ever popped. `head <= tail` always.
    head: AtomicUsize,
    /// Total values ever pushed.
    tail: AtomicUsize,
    rejected: AtomicU64,
    high_water: AtomicUsize,
}

impl<T> RingShared<T> {
    fn len(&self) -> usize {
        // tail is loaded second: seeing a *stale* tail can only
        // under-report occupancy, which is harmless for stats readers.
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }
}

/// Create a bounded ring of `capacity` slots and split it into its two
/// halves. `capacity` must be nonzero.
pub fn spsc_ring<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    assert!(capacity > 0, "ring capacity must be nonzero");
    let shared = Arc::new(RingShared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        rejected: AtomicU64::new(0),
        high_water: AtomicUsize::new(0),
    });
    (
        SpscProducer {
            shared: Arc::clone(&shared),
        },
        SpscConsumer { shared },
    )
}

/// The producing half of an SPSC ring; exactly one exists per ring.
pub struct SpscProducer<T> {
    shared: Arc<RingShared<T>>,
}

/// The consuming half of an SPSC ring; exactly one exists per ring.
pub struct SpscConsumer<T> {
    shared: Arc<RingShared<T>>,
}

impl<T> SpscProducer<T> {
    /// Append `value`, or hand it back if the ring is full (the rejection
    /// is counted either way).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        let occupied = tail - head;
        if occupied >= s.slots.len() {
            s.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(value);
        }
        // This slot is ours alone: the consumer will not touch index
        // `tail % cap` until it observes the tail advance below.
        *s.slots[tail % s.slots.len()]
            .lock()
            .expect("spsc slot lock") = Some(value);
        s.tail.store(tail + 1, Ordering::Release);
        s.high_water.fetch_max(occupied + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Current occupancy (approximate from the other side's view).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Lifetime counters for this ring.
    pub fn stats(&self) -> RingStats {
        stats_of(&self.shared)
    }
}

impl<T> SpscConsumer<T> {
    /// Remove and return the oldest value, if any.
    pub fn pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = s.slots[head % s.slots.len()]
            .lock()
            .expect("spsc slot lock")
            .take();
        debug_assert!(value.is_some(), "occupied slot must hold a value");
        s.head.store(head + 1, Ordering::Release);
        value
    }

    /// Pop up to `max` values into `out` (appended); returns how many.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Current occupancy (approximate from the other side's view).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Lifetime counters for this ring.
    pub fn stats(&self) -> RingStats {
        stats_of(&self.shared)
    }
}

fn stats_of<T>(s: &RingShared<T>) -> RingStats {
    RingStats {
        pushed: s.tail.load(Ordering::Acquire) as u64,
        popped: s.head.load(Ordering::Acquire) as u64,
        rejected: s.rejected.load(Ordering::Relaxed),
        high_water: s.high_water.load(Ordering::Relaxed),
        capacity: s.slots.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = spsc_ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        let stats = tx.stats();
        assert_eq!(stats.pushed, 4);
        assert_eq!(stats.popped, 4);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.high_water, 4);
        assert_eq!(stats.capacity, 4);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (mut tx, mut rx) = spsc_ring::<usize>(3);
        for round in 0..10 {
            for i in 0..3 {
                tx.push(round * 3 + i).unwrap();
            }
            let mut out = Vec::new();
            assert_eq!(rx.pop_batch(&mut out, 8), 3);
            assert_eq!(out, vec![round * 3, round * 3 + 1, round * 3 + 2]);
        }
        assert_eq!(tx.stats().pushed, 30);
    }

    #[test]
    fn pop_batch_respects_max() {
        let (mut tx, mut rx) = spsc_ring::<u8>(8);
        for i in 0..6 {
            tx.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = spsc_ring::<u8>(0);
    }

    #[test]
    fn threaded_handoff_preserves_order() {
        let (mut tx, mut rx) = spsc_ring::<u64>(16);
        const N: u64 = 20_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expect = 0u64;
            while expect < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expect);
                    expect += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }
}
