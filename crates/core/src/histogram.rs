//! A power-of-two histogram of per-lookup costs.
//!
//! The mean hides the paper's §3.4 pitfall — "the hit ratio is only part
//! of the story; ... the miss penalty dominates" — a structure can have
//! a wonderful average with a terrible tail. This histogram records each
//! lookup's examined count in log₂ buckets so experiments can report
//! p50/p90/p99/max alongside the mean.

use core::fmt;

/// Number of log₂ buckets: bucket `i` holds values in `[2^(i−1), 2^i)`,
/// bucket 0 holds the value 0, bucket 1 holds the value 1. 32 buckets
/// cover the full `u32` range.
const BUCKETS: usize = 33;

/// Histogram of `u32` samples in log₂ buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u32,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket(value: u32) -> usize {
        match value {
            0 => 0,
            v => 1 + (31 - v.leading_zeros()) as usize,
        }
    }

    /// The lower bound of a bucket's value range.
    fn bucket_floor(bucket: usize) -> u32 {
        match bucket {
            0 => 0,
            b => 1u32 << (b - 1),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u32) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.sum += u64::from(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]`, resolved to the lower bound of
    /// its bucket (so p50/p99 are conservative, never inflated). Returns
    /// 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The top bucket's floor can exceed the true max.
                return Self::bucket_floor(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} p50={} p90={} p99={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_testprop::check;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u32::MAX), 32);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = Histogram::new();
        for v in [1u32, 1, 1, 1000] {
            h.record(v);
        }
        assert!((h.mean() - 250.75).abs() < 1e-12);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_capture_the_tail() {
        // 99 cheap lookups, 1 catastrophic one: the mean looks fine, the
        // p99/max expose the miss penalty.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(2000);
        assert_eq!(h.quantile(0.50), 1);
        assert_eq!(h.quantile(0.90), 1);
        assert!(h.quantile(0.995) >= 1024);
        assert_eq!(h.max(), 2000);
        assert!(h.mean() < 25.0);
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u32 {
            h.record(v);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let val = h.quantile(q);
            assert!(val >= prev, "q={q}");
            prev = val;
        }
        // Quantiles resolve to bucket floors (conservative): p100 of
        // 0..=999 is the floor of 999's bucket, 512.
        assert_eq!(h.quantile(1.0), 512);
        assert_eq!(h.max(), 999);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u32, 5, 9] {
            a.record(v);
        }
        for v in [100u32, 200] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.max(), 200);
        assert!((merged.mean() - 63.0).abs() < 1e-12);
    }

    #[test]
    fn display_summary() {
        let mut h = Histogram::new();
        h.record(7);
        let s = h.to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("max=7"), "{s}");
    }

    /// The quantile at any q is never above the max and never below
    /// the min's bucket floor.
    #[test]
    fn prop_quantile_bounded() {
        check("histogram_prop_quantile_bounded", |rng| {
            let values = rng.vec_of(1, 200, |r| r.u32_below(100_000));
            let q = rng.f64();
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let got = h.quantile(q);
            assert!(got <= h.max());
        });
    }

    /// Mean is exact regardless of bucketing.
    #[test]
    fn prop_mean_exact() {
        check("histogram_prop_mean_exact", |rng| {
            let values = rng.vec_of(1, 200, |r| r.u32_below(100_000));
            let mut h = Histogram::new();
            let mut sum = 0u64;
            for &v in &values {
                h.record(v);
                sum += u64::from(v);
            }
            let expect = sum as f64 / values.len() as f64;
            assert!((h.mean() - expect).abs() < 1e-9);
        });
    }
}
