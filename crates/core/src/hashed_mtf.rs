//! §3.5 — Move-to-front within hash chains: the combination the paper
//! weighs and rejects.
//!
//! "One could imagine combining move-to-front with hash chains. However,
//! better results can be obtained simply by increasing the number of hash
//! chains" — MTF buys at most the best-case factor of two within a chain,
//! while going from 19 to 100 chains buys a factor of five. This
//! implementation exists so the ablation benchmark can measure that claim.

use crate::batch;
use crate::list::PcbList;
use crate::stats::LookupStats;
use crate::{Demux, LookupResult, PacketKind};
use tcpdemux_hash::KeyHasher;
use tcpdemux_pcb::{ConnectionKey, PcbId};

/// Hash chains where each chain is maintained with move-to-front.
#[derive(Debug)]
pub struct HashedMtfDemux<H> {
    hasher: H,
    chains: Vec<PcbList>,
    len: usize,
    stats: LookupStats,
    order: Vec<(u32, u32)>,
}

impl<H: KeyHasher> HashedMtfDemux<H> {
    /// Create a structure with `chains` hash chains (must be nonzero and
    /// at most `u32::MAX` — chain indices are packed into 32 bits on the
    /// batch path).
    pub fn new(hasher: H, chains: usize) -> Self {
        assert!(chains > 0, "chain count must be nonzero");
        assert!(
            chains <= u32::MAX as usize,
            "chain count must fit in u32 (batch grouping packs bucket indices)"
        );
        Self {
            hasher,
            chains: (0..chains).map(|_| PcbList::new()).collect(),
            len: 0,
            stats: LookupStats::new(),
            order: Vec::new(),
        }
    }

    /// Number of hash chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    fn bucket(&self, key: &ConnectionKey) -> usize {
        self.hasher.bucket(key, self.chains.len())
    }
}

impl<H: KeyHasher> Demux for HashedMtfDemux<H> {
    fn insert(&mut self, key: ConnectionKey, id: PcbId) {
        let b = self.bucket(&key);
        if self.chains[b].replace(&key, id).is_none() {
            self.chains[b].push_front(key, id);
            self.len += 1;
        }
    }

    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId> {
        let b = self.bucket(key);
        let removed = self.chains[b].remove(key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn lookup(&mut self, key: &ConnectionKey, _kind: PacketKind) -> LookupResult {
        let b = self.bucket(key);
        let (found, examined) = self.chains[b].find_move_to_front(key);
        match found {
            Some(id) => {
                let cache_hit = examined == 1;
                self.stats.record(examined, true, cache_hit);
                LookupResult {
                    pcb: Some(id),
                    examined,
                    cache_hit,
                }
            }
            None => {
                self.stats.record(examined, false, false);
                LookupResult::miss(examined)
            }
        }
    }

    fn lookup_batch(&mut self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        // Move-to-front reorders the chain on every hit, so positions are
        // not stable and there is no single-walk shortcut; the batch win
        // here is locality (each chain's nodes stay hot while its whole
        // group resolves). Grouping preserves in-chain batch order, so the
        // reorder sequence — and every examined count — is identical to
        // the sequential loop.
        out.clear();
        out.resize(keys.len(), LookupResult::miss(0));
        let chains = self.chains.len();
        let mut order = std::mem::take(&mut self.order);
        batch::group_by_bucket(&mut order, keys, |k| self.hasher.bucket(k, chains));
        // Hint every distinct chain head this batch touches into cache
        // before the first walk, so the per-chain groups below start
        // their scans without a dependent miss each.
        let mut prev = None;
        for &(b, _) in &order {
            if prev != Some(b) {
                prev = Some(b);
                self.chains[b as usize].prefetch_head();
            }
        }
        for &(b, idx) in &order {
            let (idx, b) = (idx as usize, b as usize);
            let (found, examined) = self.chains[b].find_move_to_front(&keys[idx].0);
            out[idx] = match found {
                Some(id) => {
                    let cache_hit = examined == 1;
                    self.stats.record(examined, true, cache_hit);
                    LookupResult {
                        pcb: Some(id),
                        examined,
                        cache_hit,
                    }
                }
                None => {
                    self.stats.record(examined, false, false);
                    LookupResult::miss(examined)
                }
            };
        }
        self.order = order;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> String {
        format!("hashed-mtf({})", self.chains.len())
    }

    fn stats(&self) -> &LookupStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LookupStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{key, populate};
    use crate::SequentDemux;
    use tcpdemux_hash::Multiplicative;
    use tcpdemux_pcb::PcbArena;

    #[test]
    fn repeat_lookup_is_one_probe() {
        let mut arena = PcbArena::new();
        let mut demux = HashedMtfDemux::new(Multiplicative, 19);
        populate(&mut demux, &mut arena, 200);
        demux.lookup(&key(7), PacketKind::Data);
        let r = demux.lookup(&key(7), PacketKind::Data);
        assert_eq!(r.examined, 1);
        assert!(r.cache_hit);
    }

    #[test]
    fn bounded_by_chain_length() {
        let mut arena = PcbArena::new();
        let mut demux = HashedMtfDemux::new(Multiplicative, 19);
        populate(&mut demux, &mut arena, 1900);
        for i in 0..1900 {
            let r = demux.lookup(&key(i), PacketKind::Data);
            assert!(r.pcb.is_some());
            assert!(r.examined <= 300, "examined {}", r.examined);
        }
    }

    #[test]
    fn raising_chains_beats_adding_mtf() {
        // The paper's §3.5 comparison, measured on train-free round-robin
        // traffic: sequent(100) must beat hashed-mtf(19), and hashed-mtf's
        // advantage over sequent at equal H must be < 2x.
        let n = 1900u32;
        let run = |demux: &mut dyn Demux| {
            let mut arena = PcbArena::new();
            populate(demux, &mut arena, n);
            demux.reset_stats();
            for round in 0..5u32 {
                for i in 0..n {
                    demux.lookup(&key((i * 13 + round) % n), PacketKind::Data);
                }
            }
            demux.stats().mean_examined()
        };
        let mut mtf19 = HashedMtfDemux::new(Multiplicative, 19);
        let mut seq19 = SequentDemux::new(Multiplicative, 19);
        let mut seq100 = SequentDemux::new(Multiplicative, 100);
        let mtf19_cost = run(&mut mtf19);
        let seq19_cost = run(&mut seq19);
        let seq100_cost = run(&mut seq100);

        assert!(
            seq100_cost < mtf19_cost,
            "sequent(100)={seq100_cost} must beat hashed-mtf(19)={mtf19_cost}"
        );
        // MTF can help or hurt on this traffic, but never by 2x either way.
        let ratio = seq19_cost / mtf19_cost;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn round_robin_within_chain_is_worst_case() {
        // All keys forced into one chain: same pathology as plain MTF.
        let mut arena = PcbArena::new();
        let mut demux = HashedMtfDemux::new(Multiplicative, 1);
        populate(&mut demux, &mut arena, 20);
        for i in 0..20 {
            demux.lookup(&key(i), PacketKind::Data);
        }
        demux.reset_stats();
        for i in 0..20 {
            let r = demux.lookup(&key(i), PacketKind::Data);
            assert_eq!(r.examined, 20);
        }
    }
}
