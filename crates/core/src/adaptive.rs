//! Self-tuning chain count: the paper's §3.5 knob, automated.
//!
//! "The system administrator may increase the value of H in order to get
//! even better performance, at the expense of a small increase in the
//! memory used for the hash chain headers." In 1992 that was a kernel
//! tunable; a modern stack resizes itself. [`AdaptiveDemux`] wraps the
//! Sequent structure and doubles the chain count whenever the load
//! factor `N/H` exceeds a target, rehashing all connections (O(N),
//! amortized O(1) per insert, exactly like a growing hash table).
//!
//! The target load factor bounds the *expected miss penalty*:
//! `(N/H + 1)/2 ≤ (load + 1)/2` forever, regardless of how many
//! connections arrive.

use crate::sequent::SequentDemux;
use crate::stats::LookupStats;
use crate::{Demux, LookupResult, PacketKind};
use tcpdemux_hash::KeyHasher;
use tcpdemux_pcb::{ConnectionKey, PcbId};

/// A Sequent structure that doubles its chain count when the average
/// chain length would exceed `max_load`.
#[derive(Debug)]
pub struct AdaptiveDemux<H> {
    inner: SequentDemux<H>,
    hasher_template: H,
    max_load: usize,
    resizes: u32,
    stats: LookupStats,
}

impl<H: KeyHasher + Clone> AdaptiveDemux<H> {
    /// Create with an initial chain count and a maximum tolerated load
    /// factor (average PCBs per chain). Both must be nonzero.
    pub fn new(hasher: H, initial_chains: usize, max_load: usize) -> Self {
        assert!(max_load > 0, "load factor must be nonzero");
        Self {
            inner: SequentDemux::new(hasher.clone(), initial_chains),
            hasher_template: hasher,
            max_load,
            resizes: 0,
            stats: LookupStats::new(),
        }
    }

    /// Current chain count.
    pub fn chain_count(&self) -> usize {
        self.inner.chain_count()
    }

    /// How many times the table has grown.
    pub fn resizes(&self) -> u32 {
        self.resizes
    }

    /// The configured maximum load factor.
    pub fn max_load(&self) -> usize {
        self.max_load
    }

    fn maybe_grow(&mut self) {
        if self.inner.len() <= self.inner.chain_count() * self.max_load {
            return;
        }
        let mut grown =
            SequentDemux::new(self.hasher_template.clone(), self.inner.chain_count() * 2);
        for (key, id) in self.inner.iter_entries() {
            grown.insert(key, id);
        }
        self.inner = grown;
        self.resizes += 1;
    }
}

impl<H: KeyHasher + Clone> Demux for AdaptiveDemux<H> {
    fn insert(&mut self, key: ConnectionKey, id: PcbId) {
        self.inner.insert(key, id);
        self.maybe_grow();
    }

    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId> {
        self.inner.remove(key)
    }

    fn lookup(&mut self, key: &ConnectionKey, kind: PacketKind) -> LookupResult {
        let result = self.inner.lookup(key, kind);
        self.stats
            .record(result.examined, result.pcb.is_some(), result.cache_hit);
        result
    }

    fn lookup_batch(&mut self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        self.inner.lookup_batch(keys, out);
        for r in out.iter() {
            self.stats.record(r.examined, r.pcb.is_some(), r.cache_hit);
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn name(&self) -> String {
        format!("adaptive({}@{})", self.inner.chain_count(), self.max_load)
    }

    fn stats(&self) -> &LookupStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LookupStats::new();
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{key, populate};
    use tcpdemux_hash::Multiplicative;
    use tcpdemux_pcb::PcbArena;

    #[test]
    fn grows_to_hold_load_factor() {
        let mut arena = PcbArena::new();
        let mut demux = AdaptiveDemux::new(Multiplicative, 19, 8);
        populate(&mut demux, &mut arena, 2000);
        // Final chain count must satisfy N/H <= 8.
        assert!(demux.len() <= demux.chain_count() * demux.max_load());
        // 19 -> 38 -> 76 -> 152 -> 304: four doublings for 2000/8 = 250.
        assert_eq!(demux.chain_count(), 304);
        assert_eq!(demux.resizes(), 4);
    }

    #[test]
    fn lookups_survive_rehashing() {
        let mut arena = PcbArena::new();
        let mut demux = AdaptiveDemux::new(Multiplicative, 1, 4);
        let ids = populate(&mut demux, &mut arena, 500);
        for (i, &id) in ids.iter().enumerate() {
            let r = demux.lookup(&key(i as u32), PacketKind::Data);
            assert_eq!(r.pcb, Some(id), "lost key {i} across resizes");
        }
        assert!(demux.resizes() >= 6, "{}", demux.resizes());
    }

    #[test]
    fn cost_stays_bounded_as_population_grows() {
        // The whole point: mean examined stays O(load), not O(N).
        let mut arena = PcbArena::new();
        let mut demux = AdaptiveDemux::new(Multiplicative, 19, 8);
        for n in [500u32, 2000, 8000] {
            populate(&mut demux, &mut arena, n); // contract replaces dups
            demux.reset_stats();
            for i in 0..n {
                demux.lookup(&key((i * 13) % n), PacketKind::Data);
            }
            let mean = demux.stats().mean_examined();
            assert!(
                mean <= (8.0 + 1.0) / 2.0 + 2.0,
                "n={n}: mean {mean} exceeds load bound"
            );
        }
    }

    #[test]
    fn never_shrinks_on_remove() {
        let mut arena = PcbArena::new();
        let mut demux = AdaptiveDemux::new(Multiplicative, 19, 8);
        populate(&mut demux, &mut arena, 2000);
        let chains = demux.chain_count();
        for i in 0..1500u32 {
            demux.remove(&key(i));
        }
        assert_eq!(demux.chain_count(), chains, "shrinking is not implemented");
        assert_eq!(demux.len(), 500);
    }

    #[test]
    fn satisfies_demux_contract() {
        crate::test_util::check_contract(Box::new(AdaptiveDemux::new(Multiplicative, 4, 4)));
    }

    #[test]
    fn name_reflects_current_size() {
        let demux = AdaptiveDemux::new(Multiplicative, 19, 8);
        assert_eq!(demux.name(), "adaptive(19@8)");
    }
}
