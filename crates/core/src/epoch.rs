//! In-tree epoch-based reclamation: the runtime beneath the lock-free
//! read path of [`crate::concurrent::EpochDemux`].
//!
//! McKenney's Sequent work on read-mostly data structures (the lineage
//! that became RCU) separates *removal* from *reclamation*: a writer may
//! unlink a node from a shared structure at any time, but the node's
//! storage may be reused only once every reader that could still hold a
//! reference has provably moved on. This module provides that proof
//! obligation as a small, dependency-free runtime — no `crossbeam-epoch`,
//! no `unsafe` (the workspace forbids it): protected objects are *index
//! tokens* into caller-owned arenas, so "reclamation" here means handing
//! a token back to the caller's free list, never freeing raw memory.
//!
//! # The protocol
//!
//! - Each participating thread owns one of [`MAX_THREADS`] **slots**. A
//!   thread enters a read-side critical section by [`EpochRuntime::pin`],
//!   which announces the current global epoch in its slot and returns a
//!   [`Guard`]; dropping the guard clears the announcement. Pins nest.
//! - The **global epoch** only advances ([`EpochRuntime::try_advance`])
//!   when every pinned slot has announced the *current* epoch. A thread
//!   pinned at epoch `e` therefore blocks the advance `e+1 → e+2`.
//! - A writer that has unlinked a node calls [`EpochRuntime::retire`]
//!   with its token; the runtime records the global epoch at retirement.
//! - [`EpochRuntime::drain`] hands back tokens whose retirement epoch `r`
//!   satisfies `global >= r + 2` — the two-epoch **grace period**.
//!
//! # Why the guard pins reclamation (safety argument)
//!
//! Epoch loads/stores, the pin *announce*, and the retire-side
//! operations are `SeqCst`, so a single total order `<` over them
//! exists. (The *unpin* is only `Release`: the scanner reading the
//! unpinned slot synchronizes-with it, so every critical-section read
//! happens-before any reclamation the unpin enables — and a scanner
//! that instead reads the stale pinned value merely delays the advance,
//! the safe direction.) Consider a node unlinked by a writer and a
//! reader that can still reach it. The reader's pin *announce* of
//! epoch `p` either precedes or follows the unlink in that order:
//!
//! 1. **Announce < unlink.** `retire` loads the global epoch *after* the
//!    unlink, so the recorded epoch `r >= p` is impossible to undercut:
//!    the epoch is monotonic and the reader's announce kept it at `p` or
//!    the reader observed `p` before announcing. Freeing needs
//!    `global >= r + 2 >= p + 2`, but advancing from `p + 1` to `p + 2`
//!    requires every pinned slot to announce `p + 1` — the reader is
//!    still pinned at `p`, so the advance (and thus the hand-back) waits
//!    for the reader's guard to drop.
//! 2. **Unlink < announce.** The reader pinned *after* the unlink. Its
//!    subsequent `SeqCst` loads of the structure's head pointers read
//!    values no older than the unlinking store, so the snapshot it walks
//!    no longer reaches the node at all (copy-on-write publication in
//!    `EpochDemux` guarantees interior pointers never lead back to it).
//!
//! Either way, no token is handed back while a reader that could hold it
//! is pinned. The runtime never blocks: `try_advance` simply fails while
//! readers straddle epochs, and garbage waits on the deferred list (its
//! depth is capped in practice by draining a bounded batch on every
//! writer operation; telemetry exposes the high-water mark).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};

/// Maximum number of threads that may simultaneously participate in one
/// runtime. Slots are recycled when threads exit, so long-lived programs
/// can run any number of threads over time; exceeding the *simultaneous*
/// limit panics with a clear message.
pub const MAX_THREADS: usize = 64;

/// Slot layout: the low [`COUNT_BITS`] bits hold the pin depth (0 =
/// unpinned), the high bits the announced epoch. Only the owning thread
/// writes its slot, so plain `SeqCst` loads and stores suffice.
const COUNT_BITS: u32 = 16;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The runtime never panics while holding its internal locks (plain
    // arithmetic and `VecDeque` ops); map poisoning away like the rest
    // of the crate's concurrent code.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug, Clone, Copy)]
struct Retired {
    epoch: u64,
    token: u64,
}

#[derive(Debug)]
struct Inner {
    /// Distinguishes runtimes in thread-local slot registrations.
    id: u64,
    epoch: AtomicU64,
    /// Bitmap of claimed slots (bit `i` ⇒ `slots[i]` owned by a thread).
    claimed: AtomicU64,
    slots: [AtomicU64; MAX_THREADS],
    /// Deferred tokens in non-decreasing retirement-epoch order (the
    /// epoch is sampled under this lock, which makes it monotone).
    garbage: Mutex<VecDeque<Retired>>,
    retired: AtomicU64,
    reclaimed: AtomicU64,
    advances: AtomicU64,
    max_deferred: AtomicU64,
}

static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(0);

struct Registration {
    inner: Weak<Inner>,
    runtime_id: u64,
    slot: usize,
}

/// Per-thread slot registrations; the `Drop` impl releases every claimed
/// slot when the thread exits so slots recycle across thread lifetimes.
#[derive(Default)]
struct Registry {
    regs: Vec<Registration>,
}

impl Drop for Registry {
    fn drop(&mut self) {
        for reg in &self.regs {
            if let Some(inner) = reg.inner.upgrade() {
                inner.slots[reg.slot].store(0, Ordering::SeqCst);
                inner
                    .claimed
                    .fetch_and(!(1u64 << reg.slot), Ordering::SeqCst);
            }
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
    /// One-entry cache of the most recent `(runtime id, slot)` pair, so
    /// the hot pin path skips the registry's `RefCell` + scan. Runtime
    /// ids are never reused and a thread's registration lives until the
    /// thread exits, so a cache hit can never name a stale slot.
    static LAST_SLOT: Cell<(u64, usize)> = const { Cell::new((u64::MAX, 0)) };
}

/// An epoch-based reclamation domain.
///
/// Cloning is cheap and shares the domain (an `Arc` internally): the
/// owning structure keeps one handle, and tests or telemetry may keep
/// another to observe [`ReclamationStats`].
#[derive(Debug, Clone)]
pub struct EpochRuntime {
    inner: Arc<Inner>,
}

impl Default for EpochRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// A pinned read-side critical section; dropping it unpins.
///
/// While any guard from [`EpochRuntime::pin`] is alive on a thread, no
/// token retired *after* the pin can be handed back by `drain` — the
/// safety property the module docs argue. Guards nest: the slot stays
/// pinned at the outermost guard's epoch until every guard drops (drop
/// order does not matter).
#[derive(Debug)]
pub struct Guard<'a> {
    inner: &'a Inner,
    slot: usize,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let s = &self.inner.slots[self.slot];
        // Only the owning thread writes its slot, so the load can be
        // relaxed; the store is `Release` so a scanner that observes the
        // unpin synchronizes-with it (every read this guard protected
        // happens-before any reclamation the unpin enables). No fence is
        // needed on this path — see the module safety argument.
        let cur = s.load(Ordering::Relaxed);
        debug_assert!(cur & COUNT_MASK >= 1, "guard dropped on unpinned slot");
        if cur & COUNT_MASK > 1 {
            s.store(cur - 1, Ordering::Release);
        } else {
            s.store(0, Ordering::Release);
        }
    }
}

/// A point-in-time view of one runtime's reclamation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclamationStats {
    /// Current global epoch.
    pub epoch: u64,
    /// Total tokens ever retired.
    pub retired: u64,
    /// Total tokens handed back to the caller.
    pub reclaimed: u64,
    /// Tokens currently waiting on the deferred list
    /// (`retired - reclaimed`).
    pub deferred: u64,
    /// High-water mark of the deferred list depth.
    pub max_deferred: u64,
    /// Successful global-epoch advances.
    pub advances: u64,
}

impl EpochRuntime {
    /// Create a fresh, independent reclamation domain.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
                epoch: AtomicU64::new(0),
                claimed: AtomicU64::new(0),
                slots: std::array::from_fn(|_| AtomicU64::new(0)),
                garbage: Mutex::new(VecDeque::new()),
                retired: AtomicU64::new(0),
                reclaimed: AtomicU64::new(0),
                advances: AtomicU64::new(0),
                max_deferred: AtomicU64::new(0),
            }),
        }
    }

    /// The slot this thread owns in this runtime, claiming one on first
    /// use. Panics if more than [`MAX_THREADS`] threads are registered
    /// simultaneously.
    fn thread_slot(&self) -> usize {
        let id = self.inner.id;
        LAST_SLOT.with(|cache| {
            let (cached_id, cached_slot) = cache.get();
            if cached_id == id {
                return cached_slot;
            }
            let slot = self.thread_slot_slow();
            cache.set((id, slot));
            slot
        })
    }

    /// Registry path of [`Self::thread_slot`]: find or claim this
    /// thread's slot registration.
    fn thread_slot_slow(&self) -> usize {
        REGISTRY.with(|registry| {
            let mut registry = registry.borrow_mut();
            if let Some(reg) = registry.regs.iter().find(|r| r.runtime_id == self.inner.id) {
                return reg.slot;
            }
            loop {
                let bits = self.inner.claimed.load(Ordering::SeqCst);
                let slot = (!bits).trailing_zeros() as usize;
                assert!(
                    slot < MAX_THREADS,
                    "epoch runtime: more than {MAX_THREADS} threads pinned simultaneously \
                     (slots recycle when threads exit)"
                );
                if self
                    .inner
                    .claimed
                    .compare_exchange(bits, bits | (1 << slot), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    registry.regs.push(Registration {
                        inner: Arc::downgrade(&self.inner),
                        runtime_id: self.inner.id,
                        slot,
                    });
                    return slot;
                }
            }
        })
    }

    /// Enter a read-side critical section.
    ///
    /// Announces the current global epoch in this thread's slot (re-
    /// checking until the announcement and the epoch agree, so a stale
    /// announcement can never linger) and returns the [`Guard`] whose
    /// drop ends the section. Nested pins are cheap: they bump a depth
    /// count and keep the outermost announcement.
    pub fn pin(&self) -> Guard<'_> {
        let slot = self.thread_slot();
        let s = &self.inner.slots[slot];
        // Only the owning thread writes its slot: the nesting check and
        // the depth bump need no ordering (the announced epoch bits are
        // unchanged, so the scanner's decision is unaffected).
        let cur = s.load(Ordering::Relaxed);
        if cur & COUNT_MASK != 0 {
            assert!(
                cur & COUNT_MASK < COUNT_MASK,
                "epoch runtime: pin depth overflow"
            );
            s.store(cur + 1, Ordering::Relaxed);
            return Guard {
                inner: &self.inner,
                slot,
            };
        }
        let mut epoch = self.inner.epoch.load(Ordering::SeqCst);
        loop {
            s.store((epoch << COUNT_BITS) | 1, Ordering::SeqCst);
            // The epoch may have advanced between the load and the
            // announcement; re-announce until they agree so `try_advance`
            // never sees us pinned at an epoch we did not observe.
            let now = self.inner.epoch.load(Ordering::SeqCst);
            if now == epoch {
                break;
            }
            epoch = now;
        }
        Guard {
            inner: &self.inner,
            slot,
        }
    }

    /// Attempt to advance the global epoch by one.
    ///
    /// Succeeds only if every pinned slot has announced the current
    /// epoch; returns whether the epoch moved. Never blocks.
    pub fn try_advance(&self) -> bool {
        let epoch = self.inner.epoch.load(Ordering::SeqCst);
        for s in &self.inner.slots {
            let state = s.load(Ordering::SeqCst);
            if state & COUNT_MASK != 0 && (state >> COUNT_BITS) != epoch {
                return false;
            }
        }
        if self
            .inner
            .epoch
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.inner.advances.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Defer a token until two epochs have passed.
    ///
    /// Call *after* the object the token names has been unlinked from
    /// every shared path. The caller may still be pinned (writers in
    /// `EpochDemux` are); that only delays the token's own grace period,
    /// never the correctness.
    pub fn retire(&self, token: u64) {
        let depth = {
            let mut garbage = lock(&self.inner.garbage);
            // Sampling the epoch under the lock keeps the deque ordered
            // by retirement epoch, so `drain` can stop at the first entry
            // still in its grace period.
            let epoch = self.inner.epoch.load(Ordering::SeqCst);
            garbage.push_back(Retired { epoch, token });
            garbage.len() as u64
        };
        self.inner.retired.fetch_add(1, Ordering::Relaxed);
        self.inner.max_deferred.fetch_max(depth, Ordering::Relaxed);
    }

    /// Hand back up to `budget` tokens whose grace period has elapsed,
    /// oldest first, invoking `free` on each. Returns how many were
    /// handed back.
    ///
    /// `free` runs with the internal garbage lock held: it must not call
    /// [`EpochRuntime::retire`] on this runtime (pushing to a caller-side
    /// free list, as `EpochDemux` does, is the intended shape).
    pub fn drain(&self, budget: usize, mut free: impl FnMut(u64)) -> usize {
        if budget == 0 {
            return 0;
        }
        let epoch = self.inner.epoch.load(Ordering::SeqCst);
        let mut freed = 0;
        {
            let mut garbage = lock(&self.inner.garbage);
            while freed < budget {
                match garbage.front() {
                    Some(r) if r.epoch + 2 <= epoch => {
                        let token = garbage.pop_front().expect("front checked").token;
                        free(token);
                        freed += 1;
                    }
                    _ => break,
                }
            }
        }
        if freed > 0 {
            self.inner
                .reclaimed
                .fetch_add(freed as u64, Ordering::Relaxed);
        }
        freed
    }

    /// Advance and drain until the deferred list is empty or no further
    /// progress is possible (a pinned reader blocks the epoch). Returns
    /// the number of tokens handed back. Tests use this to prove
    /// "eventually reclaimed"; steady-state code uses the bounded
    /// [`EpochRuntime::drain`].
    pub fn flush(&self, mut free: impl FnMut(u64)) -> usize {
        let mut total = 0;
        loop {
            self.try_advance();
            let freed = self.drain(usize::MAX, &mut free);
            total += freed;
            if lock(&self.inner.garbage).is_empty() {
                return total;
            }
            if freed == 0 && !self.try_advance() {
                return total;
            }
        }
    }

    /// Number of tokens currently deferred.
    pub fn deferred(&self) -> usize {
        lock(&self.inner.garbage).len()
    }

    /// Current reclamation accounting.
    pub fn stats(&self) -> ReclamationStats {
        let retired = self.inner.retired.load(Ordering::Relaxed);
        let reclaimed = self.inner.reclaimed.load(Ordering::Relaxed);
        ReclamationStats {
            epoch: self.inner.epoch.load(Ordering::SeqCst),
            retired,
            reclaimed,
            deferred: retired - reclaimed,
            max_deferred: self.inner.max_deferred.load(Ordering::Relaxed),
            advances: self.inner.advances.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn unpinned_tokens_flow_through_after_two_advances() {
        let rt = EpochRuntime::new();
        rt.retire(7);
        rt.retire(8);
        let mut out = Vec::new();
        assert_eq!(rt.drain(usize::MAX, |t| out.push(t)), 0, "no grace yet");
        assert!(rt.try_advance());
        assert_eq!(rt.drain(usize::MAX, |t| out.push(t)), 0, "one epoch in");
        assert!(rt.try_advance());
        assert_eq!(rt.drain(usize::MAX, |t| out.push(t)), 2);
        assert_eq!(out, vec![7, 8], "oldest first");
        let stats = rt.stats();
        assert_eq!(stats.retired, 2);
        assert_eq!(stats.reclaimed, 2);
        assert_eq!(stats.deferred, 0);
        assert_eq!(stats.max_deferred, 2);
        assert!(stats.advances >= 2);
    }

    #[test]
    fn a_pinned_guard_blocks_reclamation_until_dropped() {
        let rt = EpochRuntime::new();
        let guard = rt.pin();
        rt.retire(42);
        // One advance can still happen (we are pinned at the current
        // epoch), but the second — the one that would free our token —
        // cannot while the guard lives.
        assert_eq!(rt.flush(|_| {}), 0);
        assert_eq!(rt.deferred(), 1);
        drop(guard);
        assert_eq!(rt.flush(|_| {}), 1);
        assert_eq!(rt.deferred(), 0);
    }

    #[test]
    fn nested_pins_keep_the_slot_pinned_until_all_drop() {
        let rt = EpochRuntime::new();
        let outer = rt.pin();
        let inner = rt.pin();
        rt.retire(1);
        drop(outer); // dropping out of order must not unpin
        assert_eq!(rt.flush(|_| {}), 0, "inner guard still pins");
        drop(inner);
        assert_eq!(rt.flush(|_| {}), 1);
    }

    #[test]
    fn runtimes_are_independent_domains() {
        let a = EpochRuntime::new();
        let b = EpochRuntime::new();
        let _guard_a = a.pin();
        b.retire(9);
        // A guard on `a` must not stall reclamation on `b`.
        assert_eq!(b.flush(|_| {}), 1);
    }

    #[test]
    fn slots_recycle_when_threads_exit() {
        // Far more sequential threads than MAX_THREADS: each registers,
        // pins, and exits; the registry Drop must release its slot.
        let rt = EpochRuntime::new();
        for i in 0..(MAX_THREADS * 2) {
            let rt = rt.clone();
            std::thread::spawn(move || {
                let _g = rt.pin();
                rt.retire(i as u64);
            })
            .join()
            .expect("thread");
        }
        assert_eq!(rt.stats().retired, (MAX_THREADS * 2) as u64);
        // Everyone has exited, so the whole backlog drains.
        assert_eq!(rt.flush(|_| {}), MAX_THREADS * 2);
    }

    #[test]
    fn concurrent_readers_and_retirers_reach_quiescence() {
        let rt = EpochRuntime::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rt = rt.clone();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _g = rt.pin();
                        std::hint::spin_loop();
                    }
                });
            }
            let writer = rt.clone();
            let stop = &stop;
            s.spawn(move || {
                for t in 0..5_000u64 {
                    writer.retire(t);
                    writer.try_advance();
                    writer.drain(32, |_| {});
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        let total = rt.stats().retired;
        assert_eq!(total, 5_000);
        rt.flush(|_| {});
        let stats = rt.stats();
        assert_eq!(stats.reclaimed, total, "all retired tokens reclaimed");
        assert_eq!(stats.deferred, 0);
        assert!(stats.advances >= 2);
    }
}
