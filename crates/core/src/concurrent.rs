//! Concurrent demultiplexing: locked chains through lock-free reads.
//!
//! The Sequent algorithm was built for a *parallel* TCP implementation
//! (\[Dov90\]: "A high capacity TCP/IP in parallel STREAMS"): hash chains do
//! double duty as the unit of concurrency, because two packets that hash to
//! different chains can be demultiplexed by different processors without
//! contention. [`ShardedDemux`] reproduces that design with one mutex per
//! chain; [`GlobalLockDemux`] wraps any single-threaded [`Demux`] in one
//! big lock as the baseline the parallel design is measured against; and
//! [`EpochDemux`] completes the lineage — the same chains with **no** read
//! lock at all, readers protected by the [`crate::epoch`] reclamation
//! runtime (the RCU shape McKenney later built at Sequent).
//!
//! All variants tally statistics through [`AtomicLookupStats`] *outside*
//! their data locks, so the accounting itself is never a contention point
//! the scaling benchmarks would mismeasure.

use crate::batch;
use crate::stats::{AtomicLookupStats, LookupStats};
use crate::{Demux, LookupResult, PacketKind, SequentDemux};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use tcpdemux_hash::{KeyHasher, Multiplicative};
use tcpdemux_pcb::{ConnectionKey, PcbId};

// `std::sync` locks (unlike the `parking_lot` ones they replaced) carry
// lock poisoning. A panic while holding a shard lock can only leave the
// shard in a state some *other* test's assertions then observe — the
// data itself is never torn, because every critical section restores
// the structure's invariants before any operation that can panic
// (plain field stores and `Vec` ops don't). So poisoning is mapped away
// rather than propagated, matching the old parking_lot semantics.

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

pub use crate::epoch_demux::EpochDemux;

/// A thread-safe demultiplexer: the concurrent analogue of [`Demux`].
///
/// Methods take `&self`; implementations do their own locking.
pub trait ConcurrentDemux: Sync + Send {
    /// Add a connection.
    fn insert(&self, key: ConnectionKey, id: PcbId);
    /// Remove a connection.
    fn remove(&self, key: &ConnectionKey) -> Option<PcbId>;
    /// Find the PCB for an arriving packet.
    fn lookup(&self, key: &ConnectionKey, kind: PacketKind) -> LookupResult;
    /// Resolve a whole batch of arriving packets in one call.
    ///
    /// Clears `out` and appends one [`LookupResult`] per key, in key
    /// order. Implementations may amortize locking across the batch (one
    /// lock acquisition per shard touched instead of one per packet) but
    /// must return the same results and accumulate the same statistics as
    /// the sequential loop.
    fn lookup_batch(&self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        out.clear();
        out.reserve(keys.len());
        for (key, kind) in keys {
            out.push(self.lookup(key, *kind));
        }
    }
    /// Number of connections installed.
    fn len(&self) -> usize;
    /// Whether no connections are installed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Algorithm name.
    fn name(&self) -> String;
    /// Snapshot of accumulated statistics (merged across shards).
    fn stats_snapshot(&self) -> LookupStats;
}

struct Shard {
    list: crate::list::PcbList,
    cache: Option<(ConnectionKey, PcbId)>,
}

impl Shard {
    fn new() -> Self {
        Self {
            list: crate::list::PcbList::new(),
            cache: None,
        }
    }
}

/// The Sequent structure with one lock per hash chain.
///
/// Packets for different connections usually hash to different chains and
/// proceed in parallel; the per-chain one-entry cache lives under the same
/// lock as its chain, so cache coherence is free. Statistics live in a
/// shared [`AtomicLookupStats`] and are recorded *after* the shard lock is
/// released, so tallying never extends a critical section.
pub struct ShardedDemux<H> {
    hasher: H,
    shards: Vec<Mutex<Shard>>,
    stats: AtomicLookupStats,
}

impl<H: KeyHasher> ShardedDemux<H> {
    /// Create with `chains` shards (must be nonzero).
    pub fn new(hasher: H, chains: usize) -> Self {
        assert!(chains > 0, "chain count must be nonzero");
        assert!(
            chains <= u32::MAX as usize,
            "chain count must fit in u32 (batch grouping packs bucket indices)"
        );
        Self {
            hasher,
            shards: (0..chains).map(|_| Mutex::new(Shard::new())).collect(),
            stats: AtomicLookupStats::new(),
        }
    }

    /// Number of shards (hash chains).
    pub fn chain_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &ConnectionKey) -> &Mutex<Shard> {
        &self.shards[self.hasher.bucket(key, self.shards.len())]
    }
}

impl<H: KeyHasher + Sync + Send> ConcurrentDemux for ShardedDemux<H> {
    fn insert(&self, key: ConnectionKey, id: PcbId) {
        let mut shard = lock(self.shard(&key));
        if shard.list.replace(&key, id).is_none() {
            shard.list.push_front(key, id);
        } else if let Some((ck, cid)) = &mut shard.cache {
            if *ck == key {
                *cid = id;
            }
        }
    }

    fn remove(&self, key: &ConnectionKey) -> Option<PcbId> {
        let mut shard = lock(self.shard(key));
        if shard.cache.map(|(ck, _)| ck == *key).unwrap_or(false) {
            shard.cache = None;
        }
        shard.list.remove(key)
    }

    fn lookup(&self, key: &ConnectionKey, _kind: PacketKind) -> LookupResult {
        let result = {
            let mut shard = lock(self.shard(key));
            let cached = shard.cache.and_then(|(ck, id)| (ck == *key).then_some(id));
            if let Some(id) = cached {
                LookupResult {
                    pcb: Some(id),
                    examined: 1,
                    cache_hit: true,
                }
            } else {
                let cache_probes = u32::from(shard.cache.is_some());
                let (found, scanned) = shard.list.find(key);
                let examined = cache_probes + scanned;
                if let Some(id) = found {
                    shard.cache = Some((*key, id));
                }
                LookupResult {
                    pcb: found,
                    examined,
                    cache_hit: false,
                }
            }
        };
        // The guard is gone; tallying is pure relaxed atomics.
        self.stats
            .record(result.examined, result.pcb.is_some(), result.cache_hit);
        result
    }

    fn lookup_batch(&self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        out.clear();
        out.resize(keys.len(), LookupResult::miss(0));
        let mut order = Vec::new();
        let mut scanned = Vec::new();
        let mut tallies = LookupStats::new();
        batch::group_by_bucket(&mut order, keys, |k| {
            self.hasher.bucket(k, self.shards.len())
        });
        let mut i = 0;
        while i < order.len() {
            let b = order[i].0 as usize;
            let mut j = i;
            while j < order.len() && order[j].0 as usize == b {
                j += 1;
            }
            // One lock acquisition per shard touched, held for the whole
            // group — the concurrent analogue of the single chain walk.
            // Tallies accumulate locally and merge after the last unlock.
            let mut guard = lock(&self.shards[b]);
            let shard = &mut *guard;
            batch::chain_group_lookup(
                &shard.list,
                &mut shard.cache,
                true,
                &mut scanned,
                order[i..j].iter().map(|&(_, idx)| idx as usize),
                keys,
                out,
                &mut tallies,
            );
            i = j;
        }
        self.stats.merge_tallies(&tallies);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).list.len()).sum()
    }

    fn name(&self) -> String {
        format!("sharded-sequent({})", self.shards.len())
    }

    fn stats_snapshot(&self) -> LookupStats {
        self.stats.snapshot()
    }
}

/// Hash chains behind per-chain *reader–writer* locks, with **no**
/// per-chain cache.
///
/// An instructive trade-off the paper's design implies but does not
/// spell out: the one-entry cache makes every successful lookup a
/// *write* (the cache must be updated), so a cached chain needs an
/// exclusive lock even for pure lookups. Dropping the cache lets
/// lookups take shared locks and proceed in parallel *within* a chain,
/// at the cost of the cache's hit-rate savings — profitable exactly when
/// traffic is train-free (the OLTP regime) and reader concurrency is
/// high. Statistics live in an [`AtomicLookupStats`] recorded after the
/// shared lock is released, so the read path never upgrades its lock.
pub struct RwShardedDemux<H> {
    hasher: H,
    shards: Vec<RwLock<crate::list::PcbList>>,
    stats: AtomicLookupStats,
}

impl<H: KeyHasher> RwShardedDemux<H> {
    /// Create with `chains` shards (must be nonzero).
    pub fn new(hasher: H, chains: usize) -> Self {
        assert!(chains > 0, "chain count must be nonzero");
        assert!(
            chains <= u32::MAX as usize,
            "chain count must fit in u32 (batch grouping packs bucket indices)"
        );
        Self {
            hasher,
            shards: (0..chains)
                .map(|_| RwLock::new(crate::list::PcbList::new()))
                .collect(),
            stats: AtomicLookupStats::new(),
        }
    }

    /// Number of shards (hash chains).
    pub fn chain_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &ConnectionKey) -> &RwLock<crate::list::PcbList> {
        &self.shards[self.hasher.bucket(key, self.shards.len())]
    }
}

impl<H: KeyHasher + Sync + Send> ConcurrentDemux for RwShardedDemux<H> {
    fn insert(&self, key: ConnectionKey, id: PcbId) {
        let mut list = write(self.shard(&key));
        if list.replace(&key, id).is_none() {
            list.push_front(key, id);
        }
    }

    fn remove(&self, key: &ConnectionKey) -> Option<PcbId> {
        write(self.shard(key)).remove(key)
    }

    fn lookup(&self, key: &ConnectionKey, _kind: PacketKind) -> LookupResult {
        let (found, examined) = read(self.shard(key)).find(key);
        // The temporary read guard is already gone here.
        self.stats.record(examined, found.is_some(), false);
        LookupResult {
            pcb: found,
            examined,
            cache_hit: false,
        }
    }

    fn lookup_batch(&self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        out.clear();
        out.resize(keys.len(), LookupResult::miss(0));
        let mut order = Vec::new();
        let mut scanned = Vec::new();
        let mut tallies = LookupStats::new();
        batch::group_by_bucket(&mut order, keys, |k| {
            self.hasher.bucket(k, self.shards.len())
        });
        let mut i = 0;
        while i < order.len() {
            let b = order[i].0 as usize;
            let mut j = i;
            while j < order.len() && order[j].0 as usize == b {
                j += 1;
            }
            // No cache by design, so `chain_group_lookup` degenerates to a
            // pure positional walk under one shared lock per shard group.
            let mut no_cache = None;
            batch::chain_group_lookup(
                &read(&self.shards[b]),
                &mut no_cache,
                false,
                &mut scanned,
                order[i..j].iter().map(|&(_, idx)| idx as usize),
                keys,
                out,
                &mut tallies,
            );
            i = j;
        }
        self.stats.merge_tallies(&tallies);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| read(s).len()).sum()
    }

    fn name(&self) -> String {
        format!("rw-sharded({})", self.shards.len())
    }

    fn stats_snapshot(&self) -> LookupStats {
        self.stats.snapshot()
    }
}

/// Any single-threaded [`Demux`] behind one global lock — the
/// pre-parallel-STREAMS baseline.
///
/// Statistics are tallied into an [`AtomicLookupStats`] from the returned
/// [`LookupResult`]s after the big lock drops (the inner structure still
/// keeps its own private totals, which this wrapper ignores), so reading
/// [`GlobalLockDemux::stats_snapshot`] never contends with the data path.
pub struct GlobalLockDemux<D> {
    inner: Mutex<D>,
    stats: AtomicLookupStats,
}

impl<D: Demux> GlobalLockDemux<D> {
    /// Wrap a demultiplexer in a global lock.
    pub fn new(inner: D) -> Self {
        Self {
            inner: Mutex::new(inner),
            stats: AtomicLookupStats::new(),
        }
    }
}

impl<D: Demux + Send> ConcurrentDemux for GlobalLockDemux<D> {
    fn insert(&self, key: ConnectionKey, id: PcbId) {
        lock(&self.inner).insert(key, id);
    }

    fn remove(&self, key: &ConnectionKey) -> Option<PcbId> {
        lock(&self.inner).remove(key)
    }

    fn lookup(&self, key: &ConnectionKey, kind: PacketKind) -> LookupResult {
        let result = lock(&self.inner).lookup(key, kind);
        self.stats
            .record(result.examined, result.pcb.is_some(), result.cache_hit);
        result
    }

    fn lookup_batch(&self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        // One lock acquisition for the whole batch, delegating to the
        // inner structure's own (possibly specialized) batch path; the
        // tallies replay from the results after the lock drops.
        lock(&self.inner).lookup_batch(keys, out);
        let mut tallies = LookupStats::new();
        for r in out.iter() {
            tallies.record(r.examined, r.pcb.is_some(), r.cache_hit);
        }
        self.stats.merge_tallies(&tallies);
    }

    fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    fn name(&self) -> String {
        format!("global-lock({})", lock(&self.inner).name())
    }

    fn stats_snapshot(&self) -> LookupStats {
        self.stats.snapshot()
    }
}

/// One instance of every thread-safe variant, for experiments that drive
/// them generically (the A3/A3b benches and their ablations): the
/// lock-per-chain design, the cache-free reader–writer variant, the
/// global-lock baseline, and the lock-free-read [`EpochDemux`], all at the
/// same chain count with [`Multiplicative`] hashing — plus the
/// epoch-guarded [`crate::ConcurrentCuckooDemux`], which ignores `chains`
/// (its bucket count is occupancy-driven), and
/// [`crate::ConcurrentFrontDemux`]-wrapped variants of the sharded and
/// cuckoo tiers (the miss-rejecting fingerprint front filter).
pub fn concurrent_suite(chains: usize) -> Vec<Box<dyn ConcurrentDemux>> {
    vec![
        Box::new(ShardedDemux::new(Multiplicative, chains)),
        Box::new(RwShardedDemux::new(Multiplicative, chains)),
        Box::new(GlobalLockDemux::new(SequentDemux::new(
            Multiplicative,
            chains,
        ))),
        Box::new(EpochDemux::new(Multiplicative, chains)),
        Box::new(crate::ConcurrentCuckooDemux::new()),
        Box::new(crate::ConcurrentFrontDemux::new(ShardedDemux::new(
            Multiplicative,
            chains,
        ))),
        Box::new(crate::ConcurrentFrontDemux::new(
            crate::ConcurrentCuckooDemux::new(),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::key;
    use crate::SequentDemux;
    use tcpdemux_hash::Multiplicative;
    use tcpdemux_pcb::{Pcb, PcbArena};

    fn populate_concurrent(
        demux: &dyn ConcurrentDemux,
        arena: &mut PcbArena,
        n: u32,
    ) -> Vec<PcbId> {
        (0..n)
            .map(|i| {
                let k = key(i);
                let id = arena.insert(Pcb::new(k));
                demux.insert(k, id);
                id
            })
            .collect()
    }

    #[test]
    fn sharded_basic_contract() {
        let mut arena = PcbArena::new();
        let demux = ShardedDemux::new(Multiplicative, 19);
        let ids = populate_concurrent(&demux, &mut arena, 100);
        assert_eq!(demux.len(), 100);
        for (i, &id) in ids.iter().enumerate() {
            let r = demux.lookup(&key(i as u32), PacketKind::Data);
            assert_eq!(r.pcb, Some(id));
        }
        assert_eq!(demux.remove(&key(5)), Some(ids[5]));
        assert_eq!(demux.remove(&key(5)), None);
        assert_eq!(demux.lookup(&key(5), PacketKind::Data).pcb, None);
        assert!(demux.stats_snapshot().lookups >= 101);
        assert_eq!(demux.name(), "sharded-sequent(19)");
        assert_eq!(demux.chain_count(), 19);
    }

    #[test]
    fn global_lock_matches_inner() {
        let mut arena = PcbArena::new();
        let demux = GlobalLockDemux::new(SequentDemux::new(Multiplicative, 19));
        let ids = populate_concurrent(&demux, &mut arena, 50);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(demux.lookup(&key(i as u32), PacketKind::Data).pcb, Some(id));
        }
        assert!(demux.name().starts_with("global-lock(sequent"));
        assert_eq!(demux.stats_snapshot().found, 50);
        assert!(!demux.is_empty());
    }

    #[test]
    fn parallel_lookups_are_linearizable() {
        // 8 threads hammer lookups on a fixed population; every result
        // must be the correct PCB, and totals must add up exactly.
        let mut arena = PcbArena::new();
        let demux = ShardedDemux::new(Multiplicative, 19);
        let ids = populate_concurrent(&demux, &mut arena, 500);

        std::thread::scope(|s| {
            for t in 0..8u32 {
                let demux = &demux;
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..200u32 {
                        let i = (t * 61 + round * 7) % 500;
                        let r = demux.lookup(&key(i), PacketKind::Data);
                        assert_eq!(r.pcb, Some(ids[i as usize]));
                        assert!(r.examined >= 1);
                    }
                });
            }
        });
        let stats = demux.stats_snapshot();
        assert_eq!(stats.lookups, 8 * 200);
        assert_eq!(stats.found, 8 * 200);
        assert_eq!(stats.not_found, 0);
    }

    #[test]
    fn concurrent_insert_remove_churn() {
        // Threads own disjoint key ranges and churn them; the structure
        // must end exactly at the expected population.
        let demux = ShardedDemux::new(Multiplicative, 19);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let demux = &demux;
                s.spawn(move || {
                    let mut arena = PcbArena::new();
                    let base = 10_000 + t * 1000;
                    for i in 0..100 {
                        let k = key(base + i);
                        let id = arena.insert(Pcb::new(k));
                        demux.insert(k, id);
                    }
                    for i in 0..50 {
                        assert!(demux.remove(&key(base + i * 2)).is_some());
                    }
                });
            }
        });
        assert_eq!(demux.len(), 4 * 50);
    }

    #[test]
    fn sharded_stats_equal_sum_of_per_thread_work() {
        // The cross-thread accounting contract: after T threads each do
        // a known amount of insert/remove/lookup work on disjoint key
        // ranges, `stats_snapshot()` totals must equal the sum of the
        // per-thread tallies exactly — no lost updates, no double
        // counts, under real contention on the shard locks.
        const THREADS: u32 = 8;
        const KEYS_PER_THREAD: u32 = 200;
        const LOOKUPS_PER_THREAD: u64 = 1_000;

        let demux = ShardedDemux::new(Multiplicative, 7); // few shards → real contention
        let per_thread: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let demux = &demux;
                    s.spawn(move || {
                        let mut arena = PcbArena::new();
                        let base = t * KEYS_PER_THREAD;
                        let ids: Vec<PcbId> = (0..KEYS_PER_THREAD)
                            .map(|i| {
                                let k = key(base + i);
                                let id = arena.insert(Pcb::new(k));
                                demux.insert(k, id);
                                id
                            })
                            .collect();
                        let (mut found, mut missed) = (0u64, 0u64);
                        for round in 0..LOOKUPS_PER_THREAD {
                            // Mostly hits on our own range, plus misses on a
                            // range no thread ever installs.
                            if round % 5 == 4 {
                                let k = key(1_000_000 + base + (round as u32 % KEYS_PER_THREAD));
                                assert!(demux.lookup(&k, PacketKind::Data).pcb.is_none());
                                missed += 1;
                            } else {
                                let i = (round as u32 * 13) % KEYS_PER_THREAD;
                                let r = demux.lookup(&key(base + i), PacketKind::Data);
                                assert_eq!(r.pcb, Some(ids[i as usize]));
                                found += 1;
                            }
                        }
                        // Remove half our keys while other threads still look up.
                        for i in 0..KEYS_PER_THREAD / 2 {
                            assert_eq!(
                                demux.remove(&key(base + i * 2)),
                                Some(ids[(i * 2) as usize])
                            );
                        }
                        (found, missed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let total_found: u64 = per_thread.iter().map(|&(f, _)| f).sum();
        let total_missed: u64 = per_thread.iter().map(|&(_, m)| m).sum();
        let stats = demux.stats_snapshot();
        assert_eq!(stats.lookups, total_found + total_missed);
        assert_eq!(stats.found, total_found);
        assert_eq!(stats.not_found, total_missed);
        assert_eq!(
            demux.len(),
            (THREADS * KEYS_PER_THREAD / 2) as usize,
            "each thread removed exactly half its keys"
        );
        // Examined counts are at least one PCB per lookup that found
        // anything, and the worst case can't exceed the longest chain.
        assert!(stats.pcbs_examined >= stats.found);
        assert!(stats.worst_case >= 1);
    }

    #[test]
    #[should_panic(expected = "chain count must be nonzero")]
    fn zero_shards_panics() {
        let _ = ShardedDemux::new(Multiplicative, 0);
    }

    #[test]
    fn rw_sharded_basic_contract() {
        let mut arena = PcbArena::new();
        let demux = RwShardedDemux::new(Multiplicative, 19);
        let ids = populate_concurrent(&demux, &mut arena, 100);
        assert_eq!(demux.len(), 100);
        assert_eq!(demux.chain_count(), 19);
        for (i, &id) in ids.iter().enumerate() {
            let r = demux.lookup(&key(i as u32), PacketKind::Data);
            assert_eq!(r.pcb, Some(id));
            assert!(!r.cache_hit, "no cache by design");
        }
        assert_eq!(demux.remove(&key(3)), Some(ids[3]));
        assert_eq!(demux.lookup(&key(3), PacketKind::Ack).pcb, None);
        let stats = demux.stats_snapshot();
        assert_eq!(stats.lookups, 101);
        assert_eq!(stats.found, 100);
        assert_eq!(stats.not_found, 1);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(demux.name(), "rw-sharded(19)");
    }

    #[test]
    fn rw_sharded_parallel_readers_on_one_chain() {
        // Readers on the SAME chain proceed concurrently; this test only
        // checks correctness under that contention pattern (the benches
        // measure the speedup).
        let mut arena = PcbArena::new();
        let demux = RwShardedDemux::new(Multiplicative, 1);
        let ids = populate_concurrent(&demux, &mut arena, 64);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let demux = &demux;
                let ids = &ids;
                s.spawn(move || {
                    for i in 0..500u32 {
                        let k = (t * 17 + i) % 64;
                        assert_eq!(
                            demux.lookup(&key(k), PacketKind::Data).pcb,
                            Some(ids[k as usize])
                        );
                    }
                });
            }
        });
        let stats = demux.stats_snapshot();
        assert_eq!(stats.lookups, 8 * 500);
        assert_eq!(stats.not_found, 0);
    }

    #[test]
    fn suite_drives_all_variants_generically() {
        let mut arena = PcbArena::new();
        let suite = concurrent_suite(19);
        assert_eq!(suite.len(), 7);
        let names: Vec<String> = suite.iter().map(|d| d.name()).collect();
        assert!(names.iter().any(|n| n.starts_with("sharded-sequent")));
        assert!(names.iter().any(|n| n.starts_with("rw-sharded")));
        assert!(names.iter().any(|n| n.starts_with("global-lock")));
        assert!(names.iter().any(|n| n.starts_with("epoch(")));
        assert!(names.iter().any(|n| n == "cuckoo-conc"));
        assert!(names.iter().any(|n| n.starts_with("front+sharded-sequent")));
        assert!(names.iter().any(|n| n == "front+cuckoo-conc"));
        for demux in &suite {
            let ids = populate_concurrent(demux.as_ref(), &mut arena, 50);
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(demux.lookup(&key(i as u32), PacketKind::Data).pcb, Some(id));
            }
            assert_eq!(demux.stats_snapshot().found, 50);
        }
    }

    #[test]
    fn concurrent_batch_matches_sequential() {
        // Each variant against a twin: batched lookups must return the
        // same results and accumulate the same statistics as the loop.
        let mut arena = PcbArena::new();
        let batched = concurrent_suite(7);
        let sequential = concurrent_suite(7);
        for (bat, seq) in batched.iter().zip(&sequential) {
            let ids = populate_concurrent(bat.as_ref(), &mut arena, 60);
            for (i, &id) in ids.iter().enumerate() {
                seq.insert(key(i as u32), id);
            }
            let keys: Vec<(ConnectionKey, PacketKind)> = (0..300u32)
                .map(|i| (key((i * 17 + 3) % 75), PacketKind::Data))
                .collect();
            let mut out = Vec::new();
            for chunk in keys.chunks(13) {
                bat.lookup_batch(chunk, &mut out);
                for (j, (k, kind)) in chunk.iter().enumerate() {
                    let r = seq.lookup(k, *kind);
                    assert_eq!(out[j], r, "variant {}", bat.name());
                }
            }
            assert_eq!(
                bat.stats_snapshot(),
                seq.stats_snapshot(),
                "variant {}",
                bat.name()
            );
        }
    }

    #[test]
    fn rw_sharded_concurrent_writers_and_readers() {
        let demux = RwShardedDemux::new(Multiplicative, 19);
        std::thread::scope(|s| {
            let writer = &demux;
            s.spawn(move || {
                let mut arena = PcbArena::new();
                for i in 0..500u32 {
                    let k = key(50_000 + i);
                    let id = arena.insert(Pcb::new(k));
                    writer.insert(k, id);
                    if i % 2 == 0 {
                        writer.remove(&k);
                    }
                }
            });
            let reader = &demux;
            s.spawn(move || {
                for i in 0..2000u32 {
                    let _ = reader.lookup(&key(50_000 + (i % 500)), PacketKind::Data);
                }
            });
        });
        assert_eq!(demux.len(), 250);
    }
}
