//! The PCB demultiplexing algorithms of McKenney & Dove (SIGCOMM 1992).
//!
//! When a TCP segment arrives, the stack must find the protocol control
//! block (PCB) for its connection. This crate implements every lookup
//! scheme the paper analyzes, behind one instrumented trait:
//!
//! | Type | Paper §, name | Structure |
//! |------|---------------|-----------|
//! | [`BsdDemux`] | §3.1, "BSD" | one linear list + one-entry cache |
//! | [`MtfDemux`] | §3.2, "move to front" (Crowcroft) | one linear list, found PCB pulled to head |
//! | [`SendRecvDemux`] | §3.3, last-sent/last-received (Partridge & Pink) | one linear list + send cache + receive cache |
//! | [`SequentDemux`] | §3.4, "Sequent" | `H` hash chains, each with a one-entry cache |
//! | [`HashedMtfDemux`] | §3.5, the combination the paper weighs | `H` hash chains with move-to-front |
//! | [`DirectDemux`] | §3.5, connection-ID strawman (TP4/X.25/XTP) | direct index, 1 probe by construction |
//! | [`CuckooDemux`] | beyond the paper: Cuckoo++-style flow table | 4-way one-cache-line tagged buckets, ≤ 2 lines per lookup at any N |
//! | [`ConcurrentCuckooDemux`] | — concurrent twin | seqlocked buckets read under an [`epoch`] pin, writers serialized |
//! | [`concurrent::ShardedDemux`] | \[Dov90\] parallel-TCP setting | hash chains with per-chain locks |
//! | [`concurrent::EpochDemux`] | RCU lineage (McKenney, Sequent) | hash chains, lock-free lookups over [`epoch`]-reclaimed nodes |
//!
//! The figure of merit throughout the paper — and therefore the unit this
//! crate counts — is the **number of PCBs examined** per lookup. A cache
//! probe that compares a key against a cached PCB examines one PCB; a scan
//! that compares against `k` chain entries examines `k` PCBs. Every
//! [`Demux::lookup`] reports its exact count, and running totals accumulate
//! in [`LookupStats`].
//!
//! # Batched lookups
//!
//! [`Demux::lookup_batch`] resolves a burst of arriving keys in one call.
//! The hashed structures override it to group the batch by chain so each
//! chain is walked at most once per batch — same results, same `examined`
//! counts, same [`LookupStats`] as the sequential loop (a property test
//! pins this), but with far better cache locality and amortized dispatch.
//!
//! # Suites
//!
//! Experiments that compare every algorithm build a [`standard_suite`] (or
//! [`extended_suite`]) of [`SuiteEntry`] values, which pair each boxed
//! algorithm with its display name captured at construction time.
//!
//! # Example
//!
//! ```
//! use tcpdemux_core::{Demux, PacketKind, SequentDemux};
//! use tcpdemux_hash::XorFold;
//! use tcpdemux_pcb::{ConnectionKey, Pcb, PcbArena};
//! use std::net::Ipv4Addr;
//!
//! let mut arena = PcbArena::new();
//! let mut demux = SequentDemux::new(XorFold, 19); // the paper's default H
//!
//! let key = ConnectionKey::new(
//!     Ipv4Addr::new(10, 0, 0, 1), 1521,
//!     Ipv4Addr::new(10, 0, 7, 7), 40123,
//! );
//! let id = arena.insert(Pcb::new(key));
//! demux.insert(key, id);
//!
//! let result = demux.lookup(&key, PacketKind::Data);
//! assert_eq!(result.pcb, Some(id));
//! assert_eq!(result.examined, 1); // per-chain cache hit
//! ```

#![deny(missing_docs)]
// `deny` rather than `forbid`: the [`prefetch`] module carries the
// workspace's single audited `unsafe` block (a faultless `prefetcht0`
// hint) under a targeted `#[allow]`; everything else stays unsafe-free.
#![deny(unsafe_code)]

mod adaptive;
mod batch;
mod bsd;
pub mod concurrent;
pub mod cuckoo;
mod direct;
pub mod epoch;
mod epoch_demux;
pub mod front;
mod hashed_mtf;
mod list;
mod mtf;
pub mod prefetch;
mod sequent;
pub mod spsc;
mod srcache;
mod stats;
mod suite;

pub use adaptive::AdaptiveDemux;
pub use bsd::BsdDemux;
pub use cuckoo::{ConcurrentCuckooDemux, CuckooDemux, CuckooStats};
pub use direct::DirectDemux;
pub use front::{ConcurrentFrontDemux, FrontDemux, FrontFilter, FrontFilterStats, FrontStats};
pub use hashed_mtf::HashedMtfDemux;
pub use list::PcbList;
pub use mtf::MtfDemux;
pub use sequent::SequentDemux;
pub use spsc::{spsc_ring, RingStats, SpscConsumer, SpscProducer};
pub use srcache::SendRecvDemux;
pub use stats::{AtomicLookupStats, LookupStats};
pub use suite::{extended_suite, standard_suite, SuiteEntry};
// The per-lookup cost histogram was born in this crate and moved to the
// telemetry subsystem; re-exported so cost-distribution code keeps one
// canonical type.
pub use tcpdemux_telemetry::Histogram;

use tcpdemux_pcb::{ConnectionKey, PcbId};

/// What kind of packet a lookup is for.
///
/// Most algorithms ignore this; the Partridge–Pink send/receive cache
/// examines its receive-side cache first for data packets and its send-side
/// cache first for acknowledgements (paper §3.3, footnote 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data-bearing segment (transaction entry, response, bulk data).
    Data,
    /// A pure acknowledgement.
    Ack,
}

/// The outcome of one demultiplexing lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The PCB found, or `None` if no connection matches.
    pub pcb: Option<PcbId>,
    /// Number of PCBs examined (cache probes plus chain entries scanned).
    pub examined: u32,
    /// Whether the result came from a one-entry cache.
    pub cache_hit: bool,
}

impl LookupResult {
    fn miss(examined: u32) -> Self {
        Self {
            pcb: None,
            examined,
            cache_hit: false,
        }
    }
}

/// A PCB demultiplexer: maps arriving segments' connection keys to PCBs.
///
/// Implementations are single-threaded; see [`concurrent`] for the
/// lock-per-chain variant. Keys are unique: inserting a key that is already
/// present replaces its PCB handle (matching BSD `in_pcbconnect` semantics,
/// where a fully-specified PCB exists at most once).
///
/// The `Send` bound exists for the sharded runtime: each shard owns its
/// demux exclusively (single-threaded use), but shard ownership moves to
/// a worker thread, so the structure itself must be transferable.
pub trait Demux: Send {
    /// Add a connection. Called when a PCB becomes fully specified.
    fn insert(&mut self, key: ConnectionKey, id: PcbId);

    /// Remove a connection, returning its handle if it was present.
    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId>;

    /// Find the PCB for an arriving packet, counting PCBs examined.
    fn lookup(&mut self, key: &ConnectionKey, kind: PacketKind) -> LookupResult;

    /// Resolve a whole batch of arriving packets in one call.
    ///
    /// Clears `out` and appends exactly one [`LookupResult`] per key, in
    /// key order. The default implementation is the sequential per-packet
    /// loop; hashed structures override it to group the batch by chain so
    /// each chain is walked at most once. Every override must preserve the
    /// sequential semantics exactly — identical results, per-lookup
    /// `examined` counts, and accumulated [`LookupStats`] as calling
    /// [`Demux::lookup`] on each key in order.
    fn lookup_batch(&mut self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        out.clear();
        out.reserve(keys.len());
        for (key, kind) in keys {
            out.push(self.lookup(key, *kind));
        }
    }

    /// Notify the structure that a packet was *sent* on a connection.
    /// Only the send/receive cache uses this; default is a no-op.
    fn note_send(&mut self, _key: &ConnectionKey) {}

    /// Number of connections currently installed.
    fn len(&self) -> usize;

    /// Whether no connections are installed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Algorithm name for reports (e.g. `"bsd"`, `"sequent(19)"`).
    fn name(&self) -> String;

    /// Accumulated lookup statistics.
    fn stats(&self) -> &LookupStats;

    /// Reset accumulated statistics (connections stay installed).
    fn reset_stats(&mut self);
}

// Deref-forwarding impl so a boxed tier is itself a tier. This is what
// lets [`front::FrontDemux`] (or any future wrapper) compose over the
// `Box<dyn Demux>` a [`StackConfig`] demux factory produces.
//
// [`StackConfig`]: ../tcpdemux_stack/struct.StackConfig.html
impl<D: Demux + ?Sized> Demux for Box<D> {
    fn insert(&mut self, key: ConnectionKey, id: PcbId) {
        (**self).insert(key, id);
    }

    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId> {
        (**self).remove(key)
    }

    fn lookup(&mut self, key: &ConnectionKey, kind: PacketKind) -> LookupResult {
        (**self).lookup(key, kind)
    }

    fn lookup_batch(&mut self, keys: &[(ConnectionKey, PacketKind)], out: &mut Vec<LookupResult>) {
        (**self).lookup_batch(keys, out);
    }

    fn note_send(&mut self, key: &ConnectionKey) {
        (**self).note_send(key);
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn stats(&self) -> &LookupStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared helpers for the per-algorithm test modules.
    use super::*;
    use std::net::Ipv4Addr;
    use tcpdemux_pcb::{Pcb, PcbArena};

    /// Deterministic distinct key for test index `n`.
    pub fn key(n: u32) -> ConnectionKey {
        ConnectionKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1521,
            Ipv4Addr::from(0x0a01_0000 + n),
            (40_000 + (n % 20_000)) as u16,
        )
    }

    /// Install `n` connections into a demux and return their ids.
    pub fn populate(demux: &mut dyn Demux, arena: &mut PcbArena, n: u32) -> Vec<PcbId> {
        (0..n)
            .map(|i| {
                let k = key(i);
                let id = arena.insert(Pcb::new(k));
                demux.insert(k, id);
                id
            })
            .collect()
    }

    /// Exercise the common contract every demux must satisfy.
    pub fn check_contract(mut demux: Box<dyn Demux>) {
        let mut arena = PcbArena::new();
        let ids = populate(demux.as_mut(), &mut arena, 50);
        assert_eq!(demux.len(), 50);
        assert!(!demux.is_empty());

        // Every installed key is found, with a sane examined count.
        for (i, &id) in ids.iter().enumerate() {
            let r = demux.lookup(&key(i as u32), PacketKind::Data);
            assert_eq!(r.pcb, Some(id), "{} lost key {}", demux.name(), i);
            assert!(r.examined >= 1);
            assert!(r.examined <= 53, "{} examined {}", demux.name(), r.examined);
        }

        // A missing key is not found; the cost is bounded by the whole
        // structure (and may be zero if it hashes to an empty chain).
        let r = demux.lookup(&key(999), PacketKind::Data);
        assert_eq!(r.pcb, None);
        assert!(r.examined <= 53);

        // Ack lookups behave like data lookups w.r.t. correctness.
        let r = demux.lookup(&key(7), PacketKind::Ack);
        assert_eq!(r.pcb, Some(ids[7]));

        // Remove works and is idempotent.
        assert_eq!(demux.remove(&key(7)), Some(ids[7]));
        assert_eq!(demux.remove(&key(7)), None);
        assert_eq!(demux.len(), 49);
        assert_eq!(demux.lookup(&key(7), PacketKind::Data).pcb, None);

        // Reinsertion with a new id replaces cleanly.
        let new_id = arena.insert(Pcb::new(key(7)));
        demux.insert(key(7), new_id);
        assert_eq!(demux.lookup(&key(7), PacketKind::Data).pcb, Some(new_id));

        // Duplicate insert replaces the handle rather than duplicating.
        let newer_id = arena.insert(Pcb::new(key(7)));
        demux.insert(key(7), newer_id);
        assert_eq!(demux.len(), 50);
        assert_eq!(demux.lookup(&key(7), PacketKind::Data).pcb, Some(newer_id));

        // Stats accumulated.
        assert!(demux.stats().lookups > 0);
        let lookups_before = demux.stats().lookups;
        demux.reset_stats();
        assert_eq!(demux.stats().lookups, 0);
        assert!(lookups_before > 0);

        // note_send never corrupts state.
        demux.note_send(&key(3));
        assert_eq!(demux.lookup(&key(3), PacketKind::Data).pcb, Some(ids[3]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcpdemux_hash::XorFold;

    #[test]
    fn all_algorithms_satisfy_the_contract() {
        let demuxes: Vec<Box<dyn Demux>> = vec![
            Box::new(BsdDemux::new()),
            Box::new(MtfDemux::new()),
            Box::new(SendRecvDemux::new()),
            Box::new(SequentDemux::new(XorFold, 19)),
            Box::new(SequentDemux::new(XorFold, 1)),
            Box::new(HashedMtfDemux::new(XorFold, 19)),
            Box::new(DirectDemux::new()),
            Box::new(CuckooDemux::new()),
            Box::new(FrontDemux::new(SequentDemux::new(XorFold, 19))),
            Box::new(FrontDemux::new(CuckooDemux::new())),
        ];
        for demux in demuxes {
            test_util::check_contract(demux);
        }
    }

    #[test]
    fn batch_lookup_matches_sequential() {
        // A twin of every algorithm (including the specialized overrides)
        // fed the same stream: batched results, per-lookup costs, and
        // final statistics must be identical to the one-at-a-time loop.
        // The root-level property test generalizes this over random
        // streams and batch boundaries.
        use tcpdemux_hash::Multiplicative;
        use tcpdemux_pcb::{Pcb, PcbArena};

        let make: Vec<fn() -> Box<dyn Demux>> = vec![
            || Box::new(BsdDemux::new()),
            || Box::new(MtfDemux::new()),
            || Box::new(SendRecvDemux::new()),
            || Box::new(SequentDemux::new(XorFold, 7)),
            || Box::new(SequentDemux::new(XorFold, 7).without_cache()),
            || Box::new(SequentDemux::new(Multiplicative, 19)),
            || Box::new(HashedMtfDemux::new(XorFold, 7)),
            || Box::new(DirectDemux::new()),
            || Box::new(AdaptiveDemux::new(Multiplicative, 4, 4)),
            || Box::new(CuckooDemux::new()),
            || Box::new(FrontDemux::new(SequentDemux::new(Multiplicative, 19))),
            || Box::new(FrontDemux::new(CuckooDemux::new())),
        ];
        for f in make {
            let mut seq = f();
            let mut bat = f();
            let mut arena = PcbArena::new();
            for i in 0..60u32 {
                let k = test_util::key(i);
                let id = arena.insert(Pcb::new(k));
                seq.insert(k, id);
                bat.insert(k, id);
            }
            // Mix of hits, repeats (cache/train behaviour), and misses.
            let keys: Vec<(ConnectionKey, PacketKind)> = (0..300u32)
                .map(|i| {
                    let n = (i * 17 + 3) % 75; // 60 live + 15 misses
                    let kind = if i % 3 == 0 {
                        PacketKind::Ack
                    } else {
                        PacketKind::Data
                    };
                    (test_util::key(n), kind)
                })
                .collect();
            let mut out = Vec::new();
            for chunk in keys.chunks(13) {
                bat.lookup_batch(chunk, &mut out);
                assert_eq!(out.len(), chunk.len());
                for (j, (k, kind)) in chunk.iter().enumerate() {
                    let r = seq.lookup(k, *kind);
                    assert_eq!(out[j], r, "algorithm {}", seq.name());
                }
            }
            assert_eq!(seq.stats(), bat.stats(), "algorithm {}", seq.name());
        }
    }
}
