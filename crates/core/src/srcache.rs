//! §3.3 — Partridge & Pink's last-sent/last-received cache.
//!
//! The BSD list is augmented with *two* one-entry caches: one holding the
//! PCB of the last packet received, one holding the PCB of the last packet
//! sent. The receive path probes the receive-side cache first for data
//! packets and the send-side cache first for acknowledgements (footnote 5
//! of the paper): a request/response protocol sends the response just
//! before the transport-level acknowledgement for it arrives, so the
//! send-side cache is the likely hit for ACKs.
//!
//! On a full miss the cost is both cache probes plus the list scan —
//! the paper's `(N+5)/2` average miss penalty.

use crate::list::PcbList;
use crate::stats::LookupStats;
use crate::{Demux, LookupResult, PacketKind};
use tcpdemux_pcb::{ConnectionKey, PcbId};

/// The last-sent/last-received PCB lookup structure.
#[derive(Debug, Default)]
pub struct SendRecvDemux {
    list: PcbList,
    recv_cache: Option<(ConnectionKey, PcbId)>,
    send_cache: Option<(ConnectionKey, PcbId)>,
    stats: LookupStats,
}

impl SendRecvDemux {
    /// An empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// The receive-side cache entry (exposed for cache-behaviour tests).
    pub fn recv_cached(&self) -> Option<(ConnectionKey, PcbId)> {
        self.recv_cache
    }

    /// The send-side cache entry.
    pub fn send_cached(&self) -> Option<(ConnectionKey, PcbId)> {
        self.send_cache
    }

    /// Probe one cache slot; returns the hit, counting one examined PCB if
    /// the slot is occupied.
    fn probe(
        slot: &Option<(ConnectionKey, PcbId)>,
        key: &ConnectionKey,
        examined: &mut u32,
    ) -> Option<PcbId> {
        let (ck, id) = (*slot)?;
        *examined += 1;
        (ck == *key).then_some(id)
    }
}

impl Demux for SendRecvDemux {
    fn insert(&mut self, key: ConnectionKey, id: PcbId) {
        if self.list.replace(&key, id).is_none() {
            self.list.push_front(key, id);
        } else {
            for (ck, cid) in [&mut self.recv_cache, &mut self.send_cache]
                .into_iter()
                .flatten()
            {
                if *ck == key {
                    *cid = id;
                }
            }
        }
    }

    fn remove(&mut self, key: &ConnectionKey) -> Option<PcbId> {
        for cache in [&mut self.recv_cache, &mut self.send_cache] {
            if cache.map(|(ck, _)| ck == *key).unwrap_or(false) {
                *cache = None;
            }
        }
        self.list.remove(key)
    }

    fn lookup(&mut self, key: &ConnectionKey, kind: PacketKind) -> LookupResult {
        let mut examined = 0u32;

        // Probe order depends on the packet kind (paper footnote 5).
        let (first, second) = match kind {
            PacketKind::Data => (&self.recv_cache, &self.send_cache),
            PacketKind::Ack => (&self.send_cache, &self.recv_cache),
        };
        if let Some(id) = Self::probe(first, key, &mut examined) {
            self.recv_cache = Some((*key, id));
            self.stats.record(examined, true, true);
            return LookupResult {
                pcb: Some(id),
                examined,
                cache_hit: true,
            };
        }
        if let Some(id) = Self::probe(second, key, &mut examined) {
            self.recv_cache = Some((*key, id));
            self.stats.record(examined, true, true);
            return LookupResult {
                pcb: Some(id),
                examined,
                cache_hit: true,
            };
        }

        let (found, scanned) = self.list.find(key);
        examined += scanned;
        match found {
            Some(id) => {
                self.recv_cache = Some((*key, id));
                self.stats.record(examined, true, false);
                LookupResult {
                    pcb: Some(id),
                    examined,
                    cache_hit: false,
                }
            }
            None => {
                self.stats.record(examined, false, false);
                LookupResult::miss(examined)
            }
        }
    }

    fn note_send(&mut self, key: &ConnectionKey) {
        // The send path knows its PCB already (it initiated the send); it
        // records it in the send-side cache. The id is looked up from the
        // list without cost accounting — the send path holds the PCB.
        let (found, _) = self.list.find(key);
        if let Some(id) = found {
            self.send_cache = Some((*key, id));
        }
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn name(&self) -> String {
        "send-recv".to_string()
    }

    fn stats(&self) -> &LookupStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = LookupStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{key, populate};
    use tcpdemux_pcb::PcbArena;

    #[test]
    fn recv_cache_hits_on_repeat() {
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        let ids = populate(&mut demux, &mut arena, 10);
        let r = demux.lookup(&key(3), PacketKind::Data);
        assert_eq!(r.pcb, Some(ids[3]));
        let r = demux.lookup(&key(3), PacketKind::Data);
        assert_eq!(r.examined, 1);
        assert!(r.cache_hit);
    }

    #[test]
    fn send_cache_hits_ack_after_send() {
        // The request/response pattern: receive a query on key A (recv
        // cache <- A), send the response on key A (send cache <- A), an
        // unrelated data packet on key B arrives (recv cache <- B), then
        // A's transport-level ACK arrives — it must hit the *send* cache
        // with exactly one probe.
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        let ids = populate(&mut demux, &mut arena, 10);

        demux.lookup(&key(0), PacketKind::Data);
        demux.note_send(&key(0));
        demux.lookup(&key(5), PacketKind::Data); // evicts recv cache
        assert_eq!(demux.recv_cached().unwrap().0, key(5));
        assert_eq!(demux.send_cached().unwrap().0, key(0));

        let r = demux.lookup(&key(0), PacketKind::Ack);
        assert_eq!(r.pcb, Some(ids[0]));
        assert_eq!(r.examined, 1, "ACK must probe the send cache first");
        assert!(r.cache_hit);
    }

    #[test]
    fn data_probes_recv_cache_first() {
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        populate(&mut demux, &mut arena, 10);
        demux.lookup(&key(0), PacketKind::Data); // recv <- 0
        demux.note_send(&key(1)); // send <- 1

        // Data for key(1): probes recv (miss, 1) then send (hit, 1) = 2.
        let r = demux.lookup(&key(1), PacketKind::Data);
        assert_eq!(r.examined, 2);
        assert!(r.cache_hit);
    }

    #[test]
    fn full_miss_costs_both_caches_plus_scan() {
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        populate(&mut demux, &mut arena, 10);
        demux.lookup(&key(9), PacketKind::Data); // recv cache <- 9 (head, 1)
        demux.note_send(&key(8)); // send cache <- 8

        // key(0) is at the tail: 2 cache probes + 10 scanned.
        let r = demux.lookup(&key(0), PacketKind::Data);
        assert_eq!(r.examined, 12);
        assert!(!r.cache_hit);
    }

    #[test]
    fn miss_with_no_caches_filled_costs_scan_only() {
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        populate(&mut demux, &mut arena, 10);
        // No lookups yet: both caches empty, probing them is free.
        let r = demux.lookup(&key(0), PacketKind::Data);
        assert_eq!(r.examined, 10);
    }

    #[test]
    fn remove_clears_both_caches() {
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        populate(&mut demux, &mut arena, 5);
        demux.lookup(&key(2), PacketKind::Data);
        demux.note_send(&key(2));
        demux.remove(&key(2));
        assert!(demux.recv_cached().is_none());
        assert!(demux.send_cached().is_none());
        assert_eq!(demux.lookup(&key(2), PacketKind::Data).pcb, None);
    }

    #[test]
    fn flush_scenario_from_the_paper() {
        // Figure 9: Stephen's PCB is flushed from both caches by Craig's
        // intervening transaction (data in, response out), forcing
        // Stephen's next transaction into a full miss.
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        let ids = populate(&mut demux, &mut arena, 2);
        let stephen = key(0);
        let craig = key(1);

        // Stephen transacts: recv and send caches hold Stephen.
        demux.lookup(&stephen, PacketKind::Data);
        demux.note_send(&stephen);
        demux.lookup(&stephen, PacketKind::Ack); // his ACK: 1 probe
        assert_eq!(demux.stats().cache_hits, 1);

        // Craig transacts: query in, response out, ACK in.
        demux.lookup(&craig, PacketKind::Data);
        demux.note_send(&craig);
        demux.lookup(&craig, PacketKind::Ack);

        // Both caches now hold Craig; Stephen's next query is a full miss.
        let r = demux.lookup(&stephen, PacketKind::Data);
        assert_eq!(r.pcb, Some(ids[0]));
        assert!(!r.cache_hit);
        assert!(r.examined >= 3, "examined {}", r.examined);
    }

    #[test]
    fn note_send_for_unknown_key_is_harmless() {
        let mut arena = PcbArena::new();
        let mut demux = SendRecvDemux::new();
        populate(&mut demux, &mut arena, 3);
        demux.note_send(&key(1000));
        assert!(demux.send_cached().is_none());
    }
}
